//! `aiac` — facade crate of the `aiac-rs` workspace.
//!
//! This crate re-exports the public API of every member crate so downstream
//! users (and the examples and integration tests in this repository) can
//! depend on a single crate:
//!
//! * [`linalg`] — sparse/dense linear algebra, GMRES, block-Jacobi;
//! * [`netsim`] — the deterministic discrete-event grid simulator;
//! * [`envs`] — models of the PM2, MPICH/Madeleine and OmniORB programming
//!   environments plus the synchronous MPI baseline;
//! * [`core`] — the AIAC runtime (asynchronous iterations, convergence
//!   detection, threaded and simulated back-ends);
//! * [`solvers`] — the two benchmark problems of the paper (banded sparse
//!   linear systems and the 2-species advection–diffusion chemical problem);
//! * [`service`] — the multi-tenant solver service (tenant queues, DRR
//!   fairness, admission control, result caching) over the shared pool;
//! * [`obs`] — the observability plane: per-worker event rings, the unified
//!   metrics registry, and the deterministic Chrome trace-event exporter.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

#![forbid(unsafe_code)]

pub use aiac_core as core;
pub use aiac_envs as envs;
pub use aiac_linalg as linalg;
pub use aiac_netsim as netsim;
pub use aiac_obs as obs;
pub use aiac_service as service;
pub use aiac_solvers as solvers;

/// Commonly used items, importable with `use aiac::prelude::*`.
pub mod prelude {
    pub use aiac_core::config::{ConfigError, ExecutionMode, RunConfig};
    pub use aiac_core::kernel::IterativeKernel;
    pub use aiac_core::report::{RunError, RunReport};
    pub use aiac_core::runtime::{SequentialRuntime, SimulatedRuntime, ThreadedRuntime};
    pub use aiac_envs::env::EnvKind;
    pub use aiac_linalg::{BandedSpec, CsrMatrix, Partition};
    pub use aiac_netsim::topology::GridTopology;
    pub use aiac_obs::{MetricsRegistry, TraceConfig, TraceSnapshot, Tracer};
    pub use aiac_service::{JobSpec, ServiceConfig, SolverService};
    pub use aiac_solvers::sparse_linear::SparseLinearProblem;
}
