//! Bounded model checking of the real `aiac-core` coalescing mailboxes.
//!
//! These tests only exist under `RUSTFLAGS="--cfg aiac_check"`: that flag
//! switches `aiac-core`'s `runtime::sync` facade to the instrumented
//! atomics, so every slot swap and counter update below is a scheduling
//! point the explorer enumerates. Run them with
//!
//! ```text
//! RUSTFLAGS="--cfg aiac_check" cargo test -p aiac-check
//! ```
//!
//! Properties verified exhaustively (within the preemption bound):
//! * envelopes are neither leaked nor double-freed across publish/take/drop
//!   races — checked by `Arc` refcounts returning to exactly 1 after the
//!   mailboxes drop (a double-free would abort; a missed reclamation
//!   strands a refcount);
//! * `take_for` never observes a torn or stale-pointer payload — the
//!   checker's visibility rule flags any non-Release publish / non-Acquire
//!   take of a cross-thread pointer, and each payload is additionally
//!   self-validating (constant-fill, checked element-wise);
//! * newest-wins monotonicity: an in-order publisher's consumer sees
//!   strictly increasing iteration numbers and always ends on the newest;
//! * occupancy (and its peak) never exceeds the edge count — O(edges)
//!   memory, the paper's bounded-staleness story.
#![cfg(aiac_check)]

use aiac_check::{thread, Builder};
use aiac_core::depgraph::DependencyGraph;
use aiac_core::kernel::{BlockUpdate, DependencyView, IterativeKernel, Payload};
use aiac_core::runtime::CoalescingMailboxes;
use std::sync::Arc;

/// Minimal fan-out kernel: blocks `1..m` each depend on block 0, giving a
/// dependency graph with `m - 1` edges, all sourced at block 0. Only the
/// graph shape matters to the mailboxes; the update function is never run.
struct FanOut {
    m: usize,
}

impl IterativeKernel for FanOut {
    fn num_blocks(&self) -> usize {
        self.m
    }
    fn block_len(&self, _b: usize) -> usize {
        2
    }
    fn initial_block(&self, _b: usize) -> Vec<f64> {
        vec![0.0; 2]
    }
    fn dependencies(&self, b: usize) -> Vec<usize> {
        if b == 0 {
            Vec::new()
        } else {
            vec![0]
        }
    }
    fn update_block(&self, _b: usize, local: &[f64], _o: &DependencyView) -> BlockUpdate {
        BlockUpdate {
            values: local.to_vec(),
            residual: 0.0,
        }
    }
}

fn boxes(m: usize) -> CoalescingMailboxes {
    CoalescingMailboxes::new(&DependencyGraph::from_kernel(&FanOut { m }))
}

/// Constant-fill payload: every element equals the iteration number, so a
/// torn read (elements from two different iterates) is self-evident.
fn fill(iteration: u64) -> Payload {
    vec![iteration as f64; 2].into()
}

fn assert_untorn(iteration: u64, values: &Payload) {
    assert!(
        values.iter().all(|&v| v == iteration as f64),
        "torn payload at iteration {iteration}: {values:?}"
    );
}

/// Publish/take race on a single edge: a writer publishes iterations 1..=4
/// while the consumer drains concurrently. Exhaustively verifies
/// newest-wins monotonicity, untorn payloads, the occupancy bound, and
/// leak/double-free freedom.
#[test]
fn publish_take_race_is_exhaustively_clean() {
    let payloads: Arc<Vec<Payload>> = Arc::new((1..=4).map(fill).collect());
    let pays = Arc::clone(&payloads);
    let report = Builder {
        max_preemptions: 5,
        ..Builder::default()
    }
    .check(move || {
        let mb = Arc::new(boxes(2));
        let mb_w = Arc::clone(&mb);
        let pays = Arc::clone(&pays);
        let writer = thread::spawn(move || {
            for (i, p) in pays.iter().enumerate() {
                mb_w.publish_from(0, i as u64 + 1, p, |_| {});
            }
        });

        let mut last_seen = 0u64;
        for _ in 0..4 {
            mb.take_for(1, |src, iteration, values| {
                assert_eq!(src, 0);
                assert!(
                    iteration > last_seen,
                    "newest-wins monotonicity violated: {iteration} after {last_seen}"
                );
                assert_untorn(iteration, &values);
                last_seen = iteration;
            });
        }
        writer.join();

        // Quiescent: the newest iterate must be deliverable exactly once.
        mb.take_for(1, |_, iteration, values| {
            assert!(iteration > last_seen);
            assert_untorn(iteration, &values);
            last_seen = iteration;
        });
        assert_eq!(last_seen, 4, "the newest iterate must never be lost");

        let stats = mb.stats();
        assert_eq!(stats.publishes, 4);
        assert!(
            stats.occupancy <= stats.capacity,
            "occupancy above O(edges)"
        );
        assert!(
            stats.peak_occupancy <= stats.capacity,
            "peak above O(edges)"
        );
        assert_eq!(stats.occupancy, 0, "final take drained the edge");
        drop(mb);
    });
    // Leak / double-free audit: with the mailboxes gone, each payload must
    // be held by exactly this vector again. A leaked envelope strands a
    // refcount > 1; a double-free would have corrupted the heap (and the
    // per-execution drop of a freed box aborts loudly under the checker's
    // serialized schedules).
    for (i, p) in payloads.iter().enumerate() {
        assert_eq!(
            Arc::strong_count(p),
            1,
            "payload {i} leaked an envelope refcount after teardown"
        );
    }
    assert!(report.complete, "exploration did not finish: {report}");
    assert!(
        report.states > 10_000,
        "harness too small to be meaningful: {report}"
    );
    println!("publish/take harness: {report}");
}

/// Drop race: tear the mailboxes down while one of two edges still holds
/// in-flight envelopes (and while a coalescing publisher raced the partial
/// consumer). Exhaustively verifies teardown reclaims everything exactly
/// once.
#[test]
fn drop_with_inflight_envelopes_never_leaks() {
    let payloads: Arc<Vec<Payload>> = Arc::new((1..=3).map(fill).collect());
    let pays = Arc::clone(&payloads);
    let report = Builder {
        max_preemptions: 5,
        ..Builder::default()
    }
    .check(move || {
        // Three blocks: edges 0→1 and 0→2. The consumer drains only block
        // 1; block 2's slot goes down with the ship.
        let mb = Arc::new(boxes(3));
        let mb_w = Arc::clone(&mb);
        let pays = Arc::clone(&pays);
        let writer = thread::spawn(move || {
            // Three in-order publishes: later ones coalesce on any edge the
            // consumer has not yet drained.
            mb_w.publish_from(0, 1, &pays[0], |_| {});
            mb_w.publish_from(0, 2, &pays[1], |_| {});
            mb_w.publish_from(0, 3, &pays[2], |_| {});
        });

        let mut last_seen = 0u64;
        for _ in 0..3 {
            mb.take_for(1, |_, iteration, values| {
                assert!(iteration > last_seen);
                assert_untorn(iteration, &values);
                last_seen = iteration;
            });
        }
        writer.join();

        let stats = mb.stats();
        assert_eq!(stats.publishes, 6, "three publishes fan out over two edges");
        assert!(stats.occupancy <= stats.capacity);
        assert!(stats.peak_occupancy <= stats.capacity);
        // Edge 0→2 is never drained: Drop must reclaim it (checked by the
        // refcount audit after the model returns).
        drop(mb);
    });
    for (i, p) in payloads.iter().enumerate() {
        assert_eq!(
            Arc::strong_count(p),
            1,
            "payload {i} leaked through teardown"
        );
    }
    assert!(report.complete, "exploration did not finish: {report}");
    assert!(
        report.states > 10_000,
        "harness too small to be meaningful: {report}"
    );
    println!("drop-race harness: {report}");
}

/// Out-of-order publish (iteration 9, then 4) racing a concurrent consumer:
/// the put-back path's second swap races the take. The newest iterate (9)
/// must be delivered exactly once, the stale one (4) at most once, nothing
/// tears, and nothing leaks.
#[test]
fn out_of_order_putback_race_never_loses_the_newest() {
    let p9 = fill(9);
    let p4 = fill(4);
    let (c9, c4) = (p9.clone(), p4.clone());
    let report = Builder {
        max_preemptions: 3,
        ..Builder::default()
    }
    .check(move || {
        let mb = Arc::new(boxes(2));
        let mb_w = Arc::clone(&mb);
        let (p9, p4) = (c9.clone(), c4.clone());
        let writer = thread::spawn(move || {
            mb_w.publish_from(0, 9, &p9, |_| {});
            // Contract violation on purpose: an older iterate arrives late.
            // The put-back path must keep 9 without leaking either box.
            mb_w.publish_from(0, 4, &p4, |_| {});
        });

        let mut seen = Vec::new();
        for _ in 0..3 {
            mb.take_for(1, |_, iteration, values| {
                assert_untorn(iteration, &values);
                seen.push(iteration);
            });
        }
        writer.join();
        mb.take_for(1, |_, iteration, values| {
            assert_untorn(iteration, &values);
            seen.push(iteration);
        });

        // 9 survives every interleaving of the put-back dance; 4 may or may
        // not slip through, but never twice and never after re-delivery.
        assert_eq!(
            seen.iter().filter(|&&i| i == 9).count(),
            1,
            "iterate 9 lost or duplicated: {seen:?}"
        );
        assert!(
            seen.iter().filter(|&&i| i == 4).count() <= 1,
            "stale iterate duplicated: {seen:?}"
        );
        assert!(
            seen.iter().all(|&i| i == 4 || i == 9),
            "unexpected iterate: {seen:?}"
        );

        let stats = mb.stats();
        assert!(stats.occupancy <= stats.capacity);
        assert!(stats.peak_occupancy <= stats.capacity);
        drop(mb);
    });
    assert_eq!(Arc::strong_count(&p9), 1, "payload 9 leaked");
    assert_eq!(Arc::strong_count(&p4), 1, "payload 4 leaked");
    assert!(report.complete, "exploration did not finish: {report}");
    println!("out-of-order put-back harness: {report}");
}
