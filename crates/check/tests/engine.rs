//! Engine self-tests: litmus patterns exercising the explorer itself.
//! These use only `aiac-check`'s own types, so they run under any cfg (no
//! `--cfg aiac_check` needed — that flag only switches what *aiac-core*
//! compiles its atomics to).

use aiac_check::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
use aiac_check::{model, thread, Builder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Two increments from two threads always sum, under every interleaving.
#[test]
fn counter_increments_never_lost() {
    let report = model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    // ord: litmus — RMW increments are atomic at any ordering
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        // ord: litmus — final read at quiescence
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(
        report.complete,
        "exploration must finish within bounds: {report}"
    );
    assert!(
        report.executions > 1,
        "two threads must yield multiple schedules: {report}"
    );
}

/// Store buffering: under the checker's sequentially-consistent front,
/// (r1, r2) = (0, 0) is impossible, and the three SC outcomes are all
/// actually visited — i.e. the explorer genuinely enumerates interleavings.
#[test]
fn store_buffering_enumerates_all_sc_outcomes() {
    let outcomes = Arc::new(Mutex::new(std::collections::HashSet::new()));
    let outcomes2 = Arc::clone(&outcomes);
    let report = model(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = thread::spawn(move || {
            // ord: litmus — store buffering writer
            x1.store(1, Ordering::SeqCst);
            // ord: litmus — store buffering read-back
            y1.load(Ordering::SeqCst)
        });
        let t2 = thread::spawn(move || {
            // ord: litmus — store buffering writer
            y2.store(1, Ordering::SeqCst);
            // ord: litmus — store buffering read-back
            x2.load(Ordering::SeqCst)
        });
        let r1 = t1.join();
        let r2 = t2.join();
        assert_ne!(
            (r1, r2),
            (0, 0),
            "SC front must forbid the store-buffering anomaly"
        );
        outcomes2.lock().unwrap().insert((r1, r2));
    });
    assert!(report.complete);
    let seen = outcomes.lock().unwrap();
    for want in [(0, 1), (1, 0), (1, 1)] {
        assert!(
            seen.contains(&want),
            "outcome {want:?} never explored; saw {seen:?}"
        );
    }
}

/// Publishing a pointer without Release ordering is flagged by the
/// visibility rule even though the SC front alone would never catch it.
#[test]
fn relaxed_pointer_publish_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let slot: Arc<AtomicPtr<u8>> = Arc::new(AtomicPtr::new(std::ptr::null_mut()));
            let slot2 = Arc::clone(&slot);
            let t = thread::spawn(move || {
                let p = Box::into_raw(Box::new(7u8));
                // ord: litmus — deliberately-broken relaxed publish
                slot2.store(p, Ordering::Relaxed);
            });
            // ord: litmus — acquire take side of the broken handoff
            let p = slot.swap(std::ptr::null_mut(), Ordering::Acquire);
            t.join();
            // Reclaim without deref so the test itself never touches
            // possibly-unpublished bytes (drop the box via a safe path is
            // impossible without from_raw; leak instead — each execution
            // leaks one byte, bounded by the executions count).
            let _ = p;
        });
    }));
    let err = result.expect_err("relaxed pointer publish must be reported");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("visibility violation") && msg.contains("without Release"),
        "unexpected failure message: {msg}"
    );
}

/// The same handoff with Release/Acquire (or a release fence before a
/// relaxed store) passes cleanly.
#[test]
fn released_pointer_publish_is_clean() {
    let report = model(|| {
        let slot: Arc<AtomicPtr<u8>> = Arc::new(AtomicPtr::new(std::ptr::null_mut()));
        let slot2 = Arc::clone(&slot);
        let t = thread::spawn(move || {
            let p = Box::into_raw(Box::new(7u8));
            // ord: litmus — correct release publish
            slot2.store(p, Ordering::Release);
        });
        // ord: litmus — acquire take
        let p = slot.swap(std::ptr::null_mut(), Ordering::Acquire);
        t.join();
        let _ = p;
    });
    assert!(report.complete);

    let report = model(|| {
        let slot: Arc<AtomicPtr<u8>> = Arc::new(AtomicPtr::new(std::ptr::null_mut()));
        let slot2 = Arc::clone(&slot);
        let t = thread::spawn(move || {
            let p = Box::into_raw(Box::new(7u8));
            // ord: litmus — fence-then-relaxed-store release idiom
            fence(Ordering::Release);
            // ord: litmus — relaxed store covered by the preceding fence
            slot2.store(p, Ordering::Relaxed);
        });
        // ord: litmus — acquire take
        let p = slot.swap(std::ptr::null_mut(), Ordering::Acquire);
        t.join();
        let _ = p;
    });
    assert!(report.complete);
}

/// An assertion that only fails under one interleaving is found, and the
/// report names the schedule.
#[test]
fn interleaving_sensitive_assertion_is_found() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                // ord: litmus — racing store
                x2.store(1, Ordering::SeqCst);
            });
            // ord: litmus — racing read the harness wrongly assumes is first
            let seen = x.load(Ordering::SeqCst);
            t.join();
            assert_eq!(seen, 0, "reader ran after writer in this schedule");
        });
    }));
    let err = result.expect_err("the racy schedule must be discovered");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("model checking failed"),
        "missing diagnostics: {msg}"
    );
    assert!(msg.contains("schedule"), "missing schedule dump: {msg}");
}

/// An unbounded spin loop trips the per-execution op budget instead of
/// hanging the checker.
#[test]
fn livelock_trips_op_budget() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder {
            max_ops: 200,
            ..Builder::default()
        }
        .check(|| {
            let x = AtomicUsize::new(0);
            // ord: litmus — deliberate unbounded spin
            while x.load(Ordering::SeqCst) == 0 {
                std::hint::spin_loop();
            }
        });
    }));
    let err = result.expect_err("spin loop must trip max_ops");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("max_ops"), "unexpected message: {msg}");
}

/// State-hash pruning collapses symmetric schedules: with three identical
/// incrementers the pruned count is non-zero, yet exploration stays
/// complete and the invariant holds in every execution.
#[test]
fn pruning_collapses_symmetric_schedules() {
    let report = Builder {
        max_threads: 4,
        ..Builder::default()
    }
    .check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    // ord: litmus — RMW increment
                    n.fetch_add(1, Ordering::SeqCst);
                    // ord: litmus — re-read after increment
                    n.load(Ordering::SeqCst)
                })
            })
            .collect();
        let mut max_seen = 0;
        for h in handles {
            max_seen = max_seen.max(h.join());
        }
        assert_eq!(
            max_seen, 3,
            "the last increment must observe the full count"
        );
    });
    assert!(report.complete);
    assert!(
        report.pruned > 0,
        "symmetric interleavings should be pruned: {report}"
    );
    assert!(report.distinct_states > 0);
}

/// Preemption bounding: at zero preemptions only run-to-completion
/// schedules remain, so the execution count collapses but exploration
/// still covers every thread order.
#[test]
fn zero_preemption_bound_explores_thread_orders() {
    let unbounded = Builder {
        max_preemptions: 3,
        ..Builder::default()
    }
    .check(two_adders);
    let bounded = Builder {
        max_preemptions: 0,
        ..Builder::default()
    }
    .check(two_adders);
    assert!(bounded.complete && unbounded.complete);
    assert!(
        bounded.executions < unbounded.executions,
        "preemption bounding must shrink the schedule space: {bounded} vs {unbounded}"
    );
}

fn two_adders() {
    let n = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let n = Arc::clone(&n);
            thread::spawn(move || {
                for _ in 0..2 {
                    // ord: litmus — RMW increment
                    n.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    // ord: litmus — final read at quiescence
    assert_eq!(n.load(Ordering::SeqCst), 4);
}
