//! Facade-neutrality regression: the `runtime::sync` atomics must behave
//! *identically* to `std::sync::atomic` whenever no model-checking context
//! is installed — even in a binary compiled with `--cfg aiac_check`.
//!
//! The sharpest end-to-end probe the repo has for "the scheduler did
//! exactly what the policy says" is the structural-zero steal-counter
//! contract: under [`StealPolicy::SharedFifo`] every ready block flows
//! through the shared injector and the work-stealing machinery is never
//! touched, so `steals`, `failed_steal_attempts`, `local_pushes`, and
//! `queue_wait_events` must all be exactly zero — not merely small. Running
//! that contract here, in the `aiac_check` configuration with the
//! instrumented facade linked in, proves the fall-through path (no
//! thread-local explorer context → raw `std` atomics) does not perturb the
//! real executor: same convergence, same structurally-zero counters.
#![cfg(aiac_check)]

use aiac_core::config::{RunConfig, StealPolicy};
use aiac_core::kernel::{BlockUpdate, DependencyView, IterativeKernel};
use aiac_core::runtime::ThreadedRuntime;

/// A ring of blocks, each contracting toward the mean of its two neighbours
/// plus a constant — a textbook contraction (factor 1/2 < 1), defined here
/// against the public kernel API only.
struct RingMean {
    blocks: usize,
}

impl RingMean {
    /// Fixed point of `x = x/2 + 1`.
    const FIXED_POINT: f64 = 2.0;
}

impl IterativeKernel for RingMean {
    fn num_blocks(&self) -> usize {
        self.blocks
    }
    fn block_len(&self, _b: usize) -> usize {
        1
    }
    fn initial_block(&self, _b: usize) -> Vec<f64> {
        vec![0.0]
    }
    fn dependencies(&self, b: usize) -> Vec<usize> {
        let n = self.blocks;
        vec![(b + n - 1) % n, (b + 1) % n]
    }
    fn update_block(&self, b: usize, local: &[f64], others: &DependencyView) -> BlockUpdate {
        let n = self.blocks;
        let left = others.get((b + n - 1) % n).map_or(0.0, |v| v[0]);
        let right = others.get((b + 1) % n).map_or(0.0, |v| v[0]);
        let next = (left + right) / 4.0 + 1.0;
        BlockUpdate {
            residual: (next - local[0]).abs(),
            values: vec![next],
        }
    }
}

#[test]
fn shared_fifo_counters_stay_structurally_zero_under_the_facade() {
    let kernel = RingMean { blocks: 8 };
    let config = RunConfig::asynchronous(1e-10)
        .with_streak(4)
        .with_num_workers(3)
        .with_steal_policy(StealPolicy::SharedFifo);
    let report = ThreadedRuntime::new().run(&kernel, &config);
    assert!(
        report.converged,
        "facade fall-through must not break convergence"
    );
    for v in &report.solution {
        assert!(
            (v - RingMean::FIXED_POINT).abs() < 1e-6,
            "value {v} vs fixed point {}",
            RingMean::FIXED_POINT
        );
    }
    assert_eq!(report.steals, 0, "SharedFifo must never steal");
    assert_eq!(
        report.failed_steal_attempts, 0,
        "SharedFifo must never probe a deque"
    );
    assert_eq!(report.local_pushes, 0, "SharedFifo must never push locally");
    assert_eq!(
        report.queue_wait_events, 0,
        "SharedFifo parks via the injector only"
    );
}
