//! Bounded model checking of the real `aiac-core` work-stealing deque.
//!
//! Only built under `RUSTFLAGS="--cfg aiac_check"` — the flag routes the
//! deque's all-`SeqCst` atomics through the instrumented facade so every
//! `top`/`bottom`/slot access is a scheduling point.
//!
//! Properties verified exhaustively (within the preemption bound):
//! * no element is ever lost or duplicated across owner pushes/pops racing
//!   concurrent thieves — the union of everything popped, stolen, and
//!   drained is exactly the multiset pushed;
//! * the last-element race (owner's `pop` CAS vs a thief's `steal` CAS)
//!   resolves to exactly one winner in every interleaving;
//! * the fairness-valve pattern from the threaded executor — the owner
//!   taking from its *own* deque's FIFO end (an owner-side `steal`, the
//!   every-17th-lap valve in `stealing_worker`) — preserves exactly-once
//!   delivery while a foreign thief contends for the same elements;
//! * a deque observed empty from both ends stays empty (no resurrection).
#![cfg(aiac_check)]

use aiac_check::{thread, Builder};
use aiac_core::runtime::{Steal, StealDeque};
use std::sync::Arc;

/// Collects every element the union of takers observed and asserts it is
/// exactly `0..expected` — nothing lost, nothing duplicated.
fn assert_exactly_once(mut all: Vec<usize>, expected: usize) {
    all.sort_unstable();
    let want: Vec<usize> = (0..expected).collect();
    assert_eq!(all, want, "an element was lost or duplicated");
}

/// Owner pushes and pops (LIFO) while a thief runs a bounded burst of
/// steals (FIFO): across every interleaving the four elements are delivered
/// exactly once, covering the last-element CAS race from both ends many
/// times over. This is the `steal`/`pop` harness the correctness toolchain
/// pins at >10k explored states.
#[test]
fn owner_pop_vs_concurrent_steal_is_exactly_once() {
    let report = Builder {
        max_preemptions: 4,
        ..Builder::default()
    }
    .check(|| {
        let dq = Arc::new(StealDeque::new(4));
        // Seed the FIFO end so the thief has work from its first attempt.
        dq.push(0).unwrap();
        dq.push(1).unwrap();
        let thief = {
            let dq = Arc::clone(&dq);
            thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..4 {
                    if let Steal::Success(v) = dq.steal() {
                        got.push(v);
                    }
                }
                got
            })
        };
        let mut kept = Vec::new();
        for item in 2..4 {
            dq.push(item).unwrap();
            if let Some(v) = dq.pop() {
                kept.push(v);
            }
        }
        let stolen = thief.join();
        // Quiescent drain: whatever neither side won during the race is
        // still sitting in the deque, exactly once.
        while let Some(v) = dq.pop() {
            kept.push(v);
        }
        assert!(dq.is_empty(), "drained deque reports residual length");
        assert_eq!(
            dq.steal(),
            Steal::Empty,
            "an element resurrected after the drain"
        );
        assert_exactly_once(kept.into_iter().chain(stolen).collect(), 4);
    });
    assert!(report.complete, "exploration did not finish: {report}");
    assert!(
        report.states > 10_000,
        "harness too small to be meaningful: {report}"
    );
    println!("steal/pop harness: {report}");
}

/// The threaded executor's fairness valve: every `FAIRNESS_INTERVAL`-th lap
/// the owner takes from its own deque's FIFO end via an owner-side `steal`
/// (legal Chase–Lev usage) instead of popping LIFO. Model the valve lap
/// racing a foreign thief: owner-steal, thief-steal, and owner-pop must
/// still hand out every element exactly once.
#[test]
fn fairness_valve_owner_side_steal_is_exactly_once() {
    let report = Builder {
        max_preemptions: 4,
        ..Builder::default()
    }
    .check(|| {
        let dq = Arc::new(StealDeque::new(4));
        for item in 0..3 {
            dq.push(item).unwrap();
        }
        let thief = {
            let dq = Arc::clone(&dq);
            thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..3 {
                    if let Steal::Success(v) = dq.steal() {
                        got.push(v);
                    }
                }
                got
            })
        };
        let mut kept = Vec::new();
        // Valve lap: the owner drains its own FIFO end, exactly like
        // `stealing_worker` does on every 17th acquisition lap.
        if let Steal::Success(v) = dq.steal() {
            kept.push(v);
        }
        // Ordinary laps: LIFO pops until the deque is observed empty.
        while let Some(v) = dq.pop() {
            kept.push(v);
        }
        let stolen = thief.join();
        while let Some(v) = dq.pop() {
            kept.push(v);
        }
        assert!(dq.is_empty());
        assert_eq!(dq.steal(), Steal::Empty);
        assert_exactly_once(kept.into_iter().chain(stolen).collect(), 3);
    });
    assert!(report.complete, "exploration did not finish: {report}");
    assert!(
        report.states > 10_000,
        "harness too small to be meaningful: {report}"
    );
    println!("fairness-valve harness: {report}");
}

/// Three threads — the owner and two competing thieves — fight over two
/// elements. Every element goes to exactly one taker in every interleaving,
/// and the losing thief always observes `Retry` or `Empty`, never a
/// duplicated value.
#[test]
fn two_thieves_and_the_owner_never_duplicate() {
    let report = Builder {
        max_preemptions: 3,
        ..Builder::default()
    }
    .check(|| {
        let dq = Arc::new(StealDeque::new(2));
        dq.push(0).unwrap();
        dq.push(1).unwrap();
        let spawn_thief = |dq: Arc<StealDeque>| {
            thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..2 {
                    if let Steal::Success(v) = dq.steal() {
                        got.push(v);
                    }
                }
                got
            })
        };
        let t1 = spawn_thief(Arc::clone(&dq));
        let t2 = spawn_thief(Arc::clone(&dq));
        let mut kept = Vec::new();
        if let Some(v) = dq.pop() {
            kept.push(v);
        }
        let (got1, got2) = (t1.join(), t2.join());
        while let Some(v) = dq.pop() {
            kept.push(v);
        }
        assert!(dq.is_empty());
        assert_eq!(dq.steal(), Steal::Empty);
        assert_exactly_once(kept.into_iter().chain(got1).chain(got2).collect(), 2);
    });
    assert!(report.complete, "exploration did not finish: {report}");
    println!("two-thief harness: {report}");
}
