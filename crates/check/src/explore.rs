//! The DFS interleaving explorer: controlled threads, schedule replay,
//! bounded preemptions, and state-hash pruning.
//!
//! Exploration is *stateless* in the loom sense: an execution runs the test
//! closure on real OS threads from start to finish, the driver recording a
//! choice point wherever more than one thread was runnable. Backtracking
//! re-runs the closure from scratch, replaying the recorded prefix and
//! diverging at the deepest choice point with an unexplored alternative.
//! Only one controlled thread is ever runnable at a time, so every execution
//! is a deterministic function of its schedule.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex};

/// A failed execution: (thread id, panic payload, op-log diagnostics,
/// recorded schedule).
type Failure = (usize, Box<dyn std::any::Any + Send>, String, Vec<usize>);

// ---------------------------------------------------------------------------
// Public configuration & report
// ---------------------------------------------------------------------------

/// Exploration bounds. All bounds are *checked*: exceeding `max_executions`
/// or `max_ops` panics rather than silently truncating the search, so a
/// green harness really did explore every schedule within the preemption
/// bound.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum context switches per execution at points where the previous
    /// thread was still runnable (CHESS-style preemption bounding). Forced
    /// switches (previous thread blocked or finished) are free.
    pub max_preemptions: usize,
    /// Hard cap on scheduling points in a single execution; tripping it
    /// means the code under test spins without bound and is reported as a
    /// livelock rather than hanging the checker.
    pub max_ops: u64,
    /// Hard cap on the number of executions explored.
    pub max_executions: u64,
    /// Maximum number of controlled threads alive at once.
    pub max_threads: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_preemptions: 2,
            max_ops: 20_000,
            max_executions: 400_000,
            max_threads: 4,
        }
    }
}

/// Statistics from a completed exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Executions (complete schedules) run.
    pub executions: u64,
    /// Scheduling points visited, summed over all executions.
    pub states: u64,
    /// Distinct abstract states observed at branch points (state-hash set).
    pub distinct_states: u64,
    /// Branches skipped because their `(state, choice)` pair was already
    /// explored at an equal-or-lower preemption spend.
    pub pruned: u64,
    /// Branches skipped by the preemption bound.
    pub preemption_bounded: u64,
    /// True when the DFS stack emptied, i.e. every schedule within the
    /// bounds was explored (as opposed to stopping on `max_executions`).
    pub complete: bool,
}

impl fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} executions, {} states ({} distinct), {} pruned, {} preemption-bounded, complete={}",
            self.executions,
            self.states,
            self.distinct_states,
            self.pruned,
            self.preemption_bounded,
            self.complete
        )
    }
}

// ---------------------------------------------------------------------------
// Per-thread context (how instrumented atomics find the active execution)
// ---------------------------------------------------------------------------

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Exec>,
    pub(crate) id: usize,
}

pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Panic payload used to unwind controlled threads when the execution is
/// aborted (another thread failed, or the driver is shutting down). The
/// thread wrapper swallows it; it never escapes to the user.
pub(crate) struct ExecutionAborted;

// ---------------------------------------------------------------------------
// Operations, cells, threads
// ---------------------------------------------------------------------------

/// Operation kinds, for the log and the per-thread history chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    Begin,
    Load,
    Store,
    Swap,
    Cas,
    CasOk,
    CasFail,
    FetchAdd,
    FetchSub,
    FetchMax,
    Fence,
    Yield,
    Join,
    Finish,
}

/// Encode an `Ordering` for hashing/logging (the engine never needs to
/// decode it back).
pub(crate) fn ord_code(o: StdOrdering) -> u64 {
    match o {
        StdOrdering::Relaxed => 1,
        StdOrdering::Release => 2,
        StdOrdering::Acquire => 3,
        StdOrdering::AcqRel => 4,
        StdOrdering::SeqCst => 5,
        _ => 6,
    }
}

pub(crate) fn is_release(o: StdOrdering) -> bool {
    matches!(
        o,
        StdOrdering::Release | StdOrdering::AcqRel | StdOrdering::SeqCst
    )
}

pub(crate) fn is_acquire(o: StdOrdering) -> bool {
    matches!(
        o,
        StdOrdering::Acquire | StdOrdering::AcqRel | StdOrdering::SeqCst
    )
}

/// What a pending (parked) thread is about to do — drives enabled-ness and
/// the operation log.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Pending {
    /// About to start running its closure.
    Begin,
    /// About to perform an instrumented atomic op or fence.
    Op(OpKind),
    /// Waiting for a child thread to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Spawned but not yet parked at its first scheduling point.
    Launching,
    /// Parked at a scheduling point, waiting to be picked.
    Parked,
    /// Picked by the driver; executing its pending operation + user code up
    /// to the next scheduling point.
    Running,
    /// Closure returned (or unwound); will never run again.
    Finished,
}

struct ThreadRec {
    status: Status,
    pending: Option<Pending>,
    /// Fold of `(cell, kind, ordering, observed bits)` for every operation
    /// this thread has executed. Two threads at the same chain value have
    /// observed identical histories and — because controlled code is
    /// deterministic between scheduling points — hold identical locals.
    chain: u64,
    /// Sticky flag set by a Release/AcqRel/SeqCst fence: the next relaxed
    /// pointer store still publishes correctly (fence + relaxed store is a
    /// valid release sequence head).
    release_fence: bool,
}

impl ThreadRec {
    fn new() -> Self {
        ThreadRec {
            status: Status::Launching,
            pending: None,
            chain: 0x9e37_79b9_7f4a_7c15,
            release_fence: false,
        }
    }
}

/// Shadow state for one instrumented atomic cell.
struct CellShadow {
    /// Last written value, as raw bits (pointer address for `AtomicPtr`).
    value: u64,
    /// For pointer cells: who wrote the current non-null value and whether
    /// the write had release semantics (directly or via a sticky fence).
    ptr_tag: Option<(usize, bool)>,
    is_ptr: bool,
    /// Set by `get_mut` (exclusive access mutates the value invisibly);
    /// opaque cells are excluded from the state hash.
    opaque: bool,
}

/// One entry in the per-execution operation log (diagnostics only).
#[derive(Clone, Copy)]
struct OpEvent {
    thread: usize,
    cell: usize,
    kind: OpKind,
    ord: u64,
    read: Option<u64>,
    wrote: Option<u64>,
}

impl fmt::Debug for OpEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{} {:?} c{} ord={}",
            self.thread, self.kind, self.cell, self.ord
        )?;
        if let Some(r) = self.read {
            write!(f, " read={r:#x}")?;
        }
        if let Some(w) = self.wrote {
            write!(f, " wrote={w:#x}")?;
        }
        Ok(())
    }
}

/// Bits observed / written by one atomic operation, for shadow updates.
pub(crate) struct OpBits {
    pub(crate) read: Option<u64>,
    pub(crate) written: Option<u64>,
}

// ---------------------------------------------------------------------------
// Execution state shared between the driver and controlled threads
// ---------------------------------------------------------------------------

/// Globally unique execution ids, so a `CellHandle` embedded in a
/// long-lived atomic re-registers itself on each execution (and two models
/// running concurrently in different test threads never collide).
static EXEC_EPOCH: AtomicU64 = AtomicU64::new(1);

const LOG_CAP: usize = 4096;

pub(crate) struct Inner {
    epoch: u64,
    /// Which thread the driver has released to run (consumed by that
    /// thread's wake-up).
    active: Option<usize>,
    threads: Vec<ThreadRec>,
    cells: Vec<CellShadow>,
    /// First failure in this execution: (thread id, panic payload).
    failure: Option<(usize, Box<dyn std::any::Any + Send>)>,
    /// When set, parked threads unwind with `ExecutionAborted` instead of
    /// running.
    abort: bool,
    ops: u64,
    op_log: Vec<OpEvent>,
    schedule: Vec<usize>,
    max_threads: usize,
    /// OS handles for threads spawned *inside* the execution (via
    /// `thread::spawn`); the driver joins them after the execution ends.
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Exec {
    inner: Mutex<Inner>,
    /// Signalled by threads when they park or finish.
    to_driver: Condvar,
    /// Signalled by the driver when it releases a thread (and broadcast on
    /// abort).
    to_threads: Condvar,
}

impl Exec {
    fn new(max_threads: usize) -> Self {
        Exec {
            inner: Mutex::new(Inner {
                epoch: EXEC_EPOCH.fetch_add(1, StdOrdering::Relaxed),
                active: None,
                threads: Vec::new(),
                cells: Vec::new(),
                failure: None,
                abort: false,
                ops: 0,
                op_log: Vec::new(),
                schedule: Vec::new(),
                max_threads,
                os_handles: Vec::new(),
            }),
            to_driver: Condvar::new(),
            to_threads: Condvar::new(),
        }
    }

    /// Thread side: park at a scheduling point, wait until the driver picks
    /// this thread, then run `op` under the execution lock and continue.
    /// `op` returning `Err` reports a checker-detected violation (it panics
    /// with the message, which the wrapper routes to the driver).
    pub(crate) fn yield_and_run<R>(
        &self,
        me: usize,
        pending: Pending,
        op: impl FnOnce(&mut Inner, usize) -> Result<R, String>,
    ) -> R {
        let mut inner = self.inner.lock().unwrap();
        inner.threads[me].status = Status::Parked;
        inner.threads[me].pending = Some(pending);
        self.to_driver.notify_one();
        loop {
            if inner.abort {
                drop(inner);
                panic::panic_any(ExecutionAborted);
            }
            if inner.active == Some(me) {
                break;
            }
            inner = self.to_threads.wait(inner).unwrap();
        }
        inner.active = None;
        inner.threads[me].status = Status::Running;
        inner.threads[me].pending = None;
        inner.schedule.push(me);
        inner.ops += 1;
        match op(&mut inner, me) {
            Ok(r) => r,
            Err(msg) => {
                drop(inner);
                panic!("{msg}");
            }
        }
    }

    pub(crate) fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap()
    }

    pub(crate) fn inner_register_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.inner.lock().unwrap().register_handle(handle);
    }

    fn finish_thread(&self, me: usize, failure: Option<Box<dyn std::any::Any + Send>>) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(payload) = failure {
            if inner.failure.is_none() {
                inner.failure = Some((me, payload));
            }
        }
        let chain = inner.threads[me].chain;
        inner.threads[me].chain = mix(chain, OpKind::Finish as u64);
        inner.threads[me].status = Status::Finished;
        inner.threads[me].pending = None;
        self.to_driver.notify_one();
    }
}

impl Inner {
    pub(crate) fn register_cell(&mut self, is_ptr: bool, initial: u64) -> usize {
        let id = self.cells.len();
        self.cells.push(CellShadow {
            value: initial,
            ptr_tag: None,
            is_ptr,
            opaque: false,
        });
        id
    }

    /// Apply one atomic operation's effects to the shadow state: visibility
    /// checking for pointer cells, shadow value update, history-chain fold,
    /// and the op log.
    pub(crate) fn apply_op(
        &mut self,
        me: usize,
        cell: usize,
        kind: OpKind,
        ord_read: Option<StdOrdering>,
        ord_write: Option<StdOrdering>,
        bits: OpBits,
    ) -> Result<(), String> {
        // Visibility rule (pointer cells only): reading a non-null pointer
        // that another thread wrote requires the write to have had release
        // semantics and this read to have acquire semantics; otherwise the
        // pointee's bytes may be stale on a weakly-ordered machine.
        if self.cells[cell].is_ptr {
            if let Some(read) = bits.read {
                if read != 0 {
                    if let Some((writer, released)) = self.cells[cell].ptr_tag {
                        if writer != me {
                            if !released {
                                return Err(format!(
                                    "visibility violation: thread {me} read pointer {read:#x} from cell c{cell} \
                                     published by thread {writer} without Release ordering \
                                     (the pointee may be torn on a weakly-ordered machine)"
                                ));
                            }
                            let acquired = ord_read.map(is_acquire).unwrap_or(false);
                            if !acquired {
                                return Err(format!(
                                    "visibility violation: thread {me} read cross-thread pointer {read:#x} \
                                     from cell c{cell} without Acquire ordering \
                                     (the pointee may be torn on a weakly-ordered machine)"
                                ));
                            }
                        }
                    }
                }
            }
            if let Some(written) = bits.written {
                if written == 0 {
                    self.cells[cell].ptr_tag = None;
                } else {
                    let released = ord_write.map(is_release).unwrap_or(false)
                        || self.threads[me].release_fence;
                    self.cells[cell].ptr_tag = Some((me, released));
                }
            }
        }
        if let Some(written) = bits.written {
            self.cells[cell].value = written;
        }
        let ord = ord_read.or(ord_write).map(ord_code).unwrap_or(0);
        let chain = self.threads[me].chain;
        let folded = mix(
            mix(mix(chain, cell as u64), (kind as u64) << 8 | ord),
            bits.read.unwrap_or(0).wrapping_add(1),
        );
        self.threads[me].chain = mix(folded, bits.written.unwrap_or(0).wrapping_add(1));
        if self.op_log.len() < LOG_CAP {
            self.op_log.push(OpEvent {
                thread: me,
                cell,
                kind,
                ord,
                read: bits.read,
                wrote: bits.written,
            });
        }
        Ok(())
    }

    pub(crate) fn note_fence(&mut self, me: usize, ord: StdOrdering) {
        if is_release(ord) {
            self.threads[me].release_fence = true;
        }
        let chain = self.threads[me].chain;
        self.threads[me].chain = mix(chain, (OpKind::Fence as u64) << 8 | ord_code(ord));
        if self.op_log.len() < LOG_CAP {
            self.op_log.push(OpEvent {
                thread: me,
                cell: usize::MAX,
                kind: OpKind::Fence,
                ord: ord_code(ord),
                read: None,
                wrote: None,
            });
        }
    }

    /// Fold a pure scheduling event (yield, join) into the thread's
    /// history chain so states before and after it hash differently.
    pub(crate) fn note_marker(&mut self, me: usize, kind: OpKind) {
        let chain = self.threads[me].chain;
        self.threads[me].chain = mix(chain, kind as u64);
    }

    pub(crate) fn mark_opaque(&mut self, cell: usize) {
        self.cells[cell].opaque = true;
        self.cells[cell].ptr_tag = None;
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn register_handle(&mut self, handle: std::thread::JoinHandle<()>) {
        self.os_handles.push(handle);
    }

    fn enabled(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (id, t) in self.threads.iter().enumerate() {
            if t.status != Status::Parked {
                continue;
            }
            let runnable = match t.pending {
                Some(Pending::Join(child)) => self.threads[child].status == Status::Finished,
                Some(_) => true,
                None => false,
            };
            if runnable {
                out.push(id);
            }
        }
        out
    }

    fn quiescent(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.status, Status::Parked | Status::Finished))
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }

    /// Hash the abstract state at a quiescent point. Per-thread chains stand
    /// in for locals (deterministic function of read history), shadow cells
    /// for shared memory, statuses + pending for control state.
    fn state_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for t in &self.threads {
            h = mix(h, t.chain);
            let s = match t.status {
                Status::Launching => 0u64,
                Status::Parked => 1,
                Status::Running => 2,
                Status::Finished => 3,
            };
            let p = match t.pending {
                None => 0u64,
                Some(Pending::Begin) => 1,
                Some(Pending::Op(k)) => 2 + k as u64,
                Some(Pending::Join(c)) => 64 + c as u64,
            };
            h = mix(h, s << 32 | p | u64::from(t.release_fence) << 16);
        }
        for c in &self.cells {
            if c.opaque {
                h = mix(h, u64::MAX);
            } else {
                let tag = match c.ptr_tag {
                    None => 0u64,
                    Some((w, r)) => 1 + ((w as u64) << 1 | u64::from(r)),
                };
                h = mix(mix(h, c.value), tag);
            }
        }
        h
    }

    fn dump_tail(&self) -> String {
        let tail = 40usize;
        let start = self.op_log.len().saturating_sub(tail);
        let mut s = String::new();
        for ev in &self.op_log[start..] {
            s.push_str(&format!("  {ev:?}\n"));
        }
        s
    }
}

fn mix(h: u64, v: u64) -> u64 {
    // splitmix64 finalizer over a running fold.
    let mut z = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Spawning controlled threads
// ---------------------------------------------------------------------------

pub(crate) struct SpawnedThread {
    pub(crate) id: usize,
    pub(crate) os: std::thread::JoinHandle<()>,
}

/// Launch a controlled thread. The wrapper installs the thread-local
/// context, parks at a `Begin` scheduling point before running `f`, and
/// routes panics (including checker violations) to the driver. `store`
/// receives the closure's return value on success.
pub(crate) fn launch<T, F>(
    exec: &Arc<Exec>,
    f: F,
    store: impl FnOnce(T) + Send + 'static,
) -> SpawnedThread
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let id = {
        let mut inner = exec.inner.lock().unwrap();
        assert!(
            inner.threads.len() < inner.max_threads,
            "model spawned more than max_threads ({}) controlled threads",
            inner.max_threads
        );
        inner.threads.push(ThreadRec::new());
        inner.threads.len() - 1
    };
    let exec2 = Arc::clone(exec);
    let os = std::thread::Builder::new()
        .name(format!("aiac-check-t{id}"))
        .spawn(move || {
            set_ctx(Some(Ctx {
                exec: Arc::clone(&exec2),
                id,
            }));
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                exec2.yield_and_run(id, Pending::Begin, |inner, me| {
                    let chain = inner.threads[me].chain;
                    inner.threads[me].chain = mix(chain, OpKind::Begin as u64);
                    Ok(())
                });
                f()
            }));
            set_ctx(None);
            match result {
                Ok(val) => {
                    store(val);
                    exec2.finish_thread(id, None);
                }
                Err(payload) => {
                    if payload.is::<ExecutionAborted>() {
                        exec2.finish_thread(id, None);
                    } else {
                        exec2.finish_thread(id, Some(payload));
                    }
                }
            }
        })
        .expect("spawn controlled thread");
    SpawnedThread { id, os }
}

pub(crate) fn join_pending(child: usize) -> Pending {
    Pending::Join(child)
}

// ---------------------------------------------------------------------------
// The DFS driver
// ---------------------------------------------------------------------------

/// One recorded branch point in the current schedule prefix.
struct ChoicePoint {
    /// Runnable threads at this point, ascending ids (deterministic).
    enabled: Vec<usize>,
    /// Index into `enabled` chosen on the current path.
    chosen: usize,
    /// Bitmask over `enabled` indices already taken (or ruled out) at this
    /// point. The default choice is rarely index 0 — it prefers the
    /// last-run thread — so backtracking must track tried choices
    /// explicitly rather than scanning "indices after `chosen`".
    tried: u64,
    /// Thread that ran the previous operation, if any.
    last_run: Option<usize>,
    /// Preemptions spent before this point on the current path.
    preemptions_before: usize,
    /// Abstract state hash at this point.
    hash: u64,
}

impl Builder {
    /// Explore all interleavings of `f` within the configured bounds.
    /// Panics (with schedule + op-log diagnostics) if any execution fails;
    /// returns exploration statistics otherwise.
    pub fn check<F>(&self, f: F) -> ExploreReport
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut stack: Vec<ChoicePoint> = Vec::new();
        let mut seen: HashSet<(u64, usize, usize)> = HashSet::new();
        let mut distinct: HashSet<u64> = HashSet::new();
        let mut report = ExploreReport {
            executions: 0,
            states: 0,
            distinct_states: 0,
            pruned: 0,
            preemption_bounded: 0,
            complete: false,
        };

        loop {
            report.executions += 1;
            assert!(
                report.executions <= self.max_executions,
                "exploration exceeded max_executions={} — raise the bound or shrink the harness",
                self.max_executions
            );
            self.run_one(&f, &mut stack, &mut seen, &mut distinct, &mut report);
            // Backtrack: advance the deepest choice point with an unexplored,
            // in-budget, un-pruned alternative; pop exhausted ones.
            let mut advanced = false;
            while let Some(cp) = stack.last_mut() {
                let mut found = None;
                for (idx, &t) in cp.enabled.iter().enumerate() {
                    if cp.tried & (1 << idx) != 0 {
                        continue;
                    }
                    cp.tried |= 1 << idx;
                    let cost = preemption_cost(cp.last_run, t, &cp.enabled);
                    if cp.preemptions_before + cost > self.max_preemptions {
                        report.preemption_bounded += 1;
                        continue;
                    }
                    if !seen.insert((cp.hash, cp.preemptions_before + cost, t)) {
                        report.pruned += 1;
                        continue;
                    }
                    found = Some(idx);
                    break;
                }
                if let Some(idx) = found {
                    cp.chosen = idx;
                    advanced = true;
                    break;
                }
                stack.pop();
            }
            if !advanced {
                report.complete = true;
                break;
            }
        }
        report.distinct_states = distinct.len() as u64;
        report
    }

    /// Run a single execution, replaying `stack[..]` choices and extending
    /// the stack at fresh branch points.
    fn run_one<F>(
        &self,
        f: &Arc<F>,
        stack: &mut Vec<ChoicePoint>,
        seen: &mut HashSet<(u64, usize, usize)>,
        distinct: &mut HashSet<u64>,
        report: &mut ExploreReport,
    ) where
        F: Fn() + Send + Sync + 'static,
    {
        let exec = Arc::new(Exec::new(self.max_threads));
        let mut os_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        {
            let froot = Arc::clone(f);
            let root = launch(&exec, move || froot(), |()| {});
            os_handles.push(root.os);
        }

        let mut last_run: Option<usize> = None;
        let mut preemptions = 0usize;
        let mut depth = 0usize; // index over branch points on this path

        let failure: Option<Failure> = loop {
            // Wait for quiescence: every controlled thread parked or done.
            let mut inner = exec.inner.lock().unwrap();
            while !(inner.quiescent() && inner.active.is_none()) {
                inner = exec.to_driver.wait(inner).unwrap();
            }
            // Collect any thread newly spawned inside the execution so we
            // can join its OS thread at the end.
            if let Some((tid, payload)) = inner.failure.take() {
                let diag = inner.dump_tail();
                let sched = inner.schedule.clone();
                inner.abort = true;
                exec.to_threads.notify_all();
                while !inner.all_finished() {
                    inner = exec.to_driver.wait(inner).unwrap();
                }
                break Some((tid, payload, diag, sched));
            }
            if inner.ops > self.max_ops {
                let diag = inner.dump_tail();
                let sched = inner.schedule.clone();
                inner.abort = true;
                exec.to_threads.notify_all();
                while !inner.all_finished() {
                    inner = exec.to_driver.wait(inner).unwrap();
                }
                drop(inner);
                drain_os_threads(&exec, &mut os_handles);
                panic!(
                    "model execution exceeded max_ops={} — likely an unbounded spin/livelock in the code under test\nschedule: {:?}\nop log tail:\n{}",
                    self.max_ops, sched, diag
                );
            }
            if inner.all_finished() {
                break None;
            }
            let enabled = inner.enabled();
            if enabled.is_empty() {
                let diag = inner.dump_tail();
                let sched = inner.schedule.clone();
                let stuck: Vec<usize> = inner
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, _)| i)
                    .collect();
                inner.abort = true;
                exec.to_threads.notify_all();
                while !inner.all_finished() {
                    inner = exec.to_driver.wait(inner).unwrap();
                }
                drop(inner);
                drain_os_threads(&exec, &mut os_handles);
                panic!(
                    "deadlock: threads {stuck:?} blocked with no runnable thread\nschedule: {sched:?}\nop log tail:\n{diag}"
                );
            }

            report.states += 1;
            let chosen = if enabled.len() == 1 {
                enabled[0]
            } else {
                let hash = inner.state_hash();
                distinct.insert(hash);
                if depth < stack.len() {
                    // Replay: the recorded prefix must reproduce exactly.
                    let cp = &stack[depth];
                    assert_eq!(
                        cp.enabled, enabled,
                        "non-deterministic replay: enabled set diverged at depth {depth} — the model closure must be deterministic given a schedule"
                    );
                    depth += 1;
                    cp.enabled[cp.chosen]
                } else {
                    // Fresh branch point: prefer continuing the last thread
                    // (zero preemption cost), else the lowest id, skipping
                    // already-seen (state, choice) pairs when possible.
                    let mut order: Vec<usize> = enabled.clone();
                    if let Some(l) = last_run {
                        if let Some(pos) = order.iter().position(|&t| t == l) {
                            order.remove(pos);
                            order.insert(0, l);
                        }
                    }
                    let mut picked = None;
                    for &t in &order {
                        let cost = preemption_cost(last_run, t, &enabled);
                        if preemptions + cost > self.max_preemptions {
                            continue;
                        }
                        if seen.contains(&(hash, preemptions + cost, t)) {
                            continue;
                        }
                        picked = Some((t, true));
                        break;
                    }
                    let (t, fresh) = picked.unwrap_or_else(|| {
                        // Every in-budget choice already explored from this
                        // state: continue along the cheapest path without
                        // recording a branch (its alternatives are covered).
                        report.pruned += 1;
                        let t = order
                            .iter()
                            .copied()
                            .find(|&t| {
                                preemptions + preemption_cost(last_run, t, &enabled)
                                    <= self.max_preemptions
                            })
                            .unwrap_or(order[0]);
                        (t, false)
                    });
                    if fresh {
                        let chosen_idx = enabled.iter().position(|&x| x == t).unwrap();
                        seen.insert((
                            hash,
                            preemptions + preemption_cost(last_run, t, &enabled),
                            t,
                        ));
                        stack.push(ChoicePoint {
                            enabled: enabled.clone(),
                            chosen: chosen_idx,
                            tried: 1 << chosen_idx,
                            last_run,
                            preemptions_before: preemptions,
                            hash,
                        });
                        depth += 1;
                    }
                    t
                }
            };
            preemptions += preemption_cost(last_run, chosen, &enabled);
            last_run = Some(chosen);
            inner.active = Some(chosen);
            exec.to_threads.notify_all();
            drop(inner);
        };

        drain_os_threads(&exec, &mut os_handles);

        if let Some((tid, payload, diag, sched)) = failure {
            // Truncate the DFS stack to this path's branch points so a
            // subsequent catch_unwind + resume does not corrupt exploration
            // state (normally the panic below terminates the test anyway).
            stack.truncate(depth);
            let msg = payload_message(payload.as_ref());
            panic!(
                "model checking failed (thread {tid}): {msg}\nschedule ({} ops): {:?}\nop log tail:\n{}",
                sched.len(),
                sched,
                diag
            );
        }
    }
}

/// A switch costs one preemption when the previously-running thread was
/// still runnable (i.e. the switch was not forced).
fn preemption_cost(last_run: Option<usize>, chosen: usize, enabled: &[usize]) -> usize {
    match last_run {
        Some(l) if l != chosen && enabled.contains(&l) => 1,
        _ => 0,
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Join every OS thread spawned during the execution. `thread::spawn`
/// registers its handles in `Inner::os_handles`; the root handle is passed
/// in directly.
fn drain_os_threads(exec: &Arc<Exec>, handles: &mut Vec<std::thread::JoinHandle<()>>) {
    let extra = {
        let mut inner = exec.inner.lock().unwrap();
        std::mem::take(&mut inner.os_handles)
    };
    handles.extend(extra);
    for h in handles.drain(..) {
        let _ = h.join();
    }
}
