//! Instrumented drop-in replacements for `std::sync::atomic`.
//!
//! Each type wraps the real `std` atomic (operations really execute, so the
//! code under test computes real values) and, when running inside a model
//! execution, turns every operation into a scheduling point: the thread
//! parks, the driver picks who runs next, and the operation's effects are
//! mirrored into the explorer's shadow state (value bits, pointer release
//! tags, per-thread history chains). Outside a model — including normal
//! test binaries that merely link a `--cfg aiac_check` build of the code
//! under test — every operation falls through to the raw `std` atomic with
//! no scheduling, so semantics are unchanged.

use crate::explore::{self, OpBits, OpKind, Pending};
use std::sync::atomic::Ordering as StdOrdering;

/// Instrumented atomics and fences; mirrors `std::sync::atomic`.
pub mod atomic {
    use super::*;

    pub use std::sync::atomic::Ordering;

    /// Lazily-registered shadow-cell identity: packs `(execution epoch,
    /// cell id)` so a long-lived atomic re-registers itself on each
    /// execution. Only touched while the owning thread holds the explorer
    /// lock (or outside any model), so `Relaxed` is sufficient.
    struct CellHandle {
        packed: std::sync::atomic::AtomicU64,
    }

    impl CellHandle {
        const fn new() -> Self {
            CellHandle {
                packed: std::sync::atomic::AtomicU64::new(0),
            }
        }

        fn resolve(&self, inner: &mut explore::Inner, is_ptr: bool, current_bits: u64) -> usize {
            let epoch = inner.epoch() & 0xffff_ffff;
            let cur = self.packed.load(StdOrdering::Relaxed);
            if cur >> 32 == epoch {
                return (cur & 0xffff_ffff) as usize;
            }
            let id = inner.register_cell(is_ptr, current_bits);
            self.packed
                .store(epoch << 32 | id as u64, StdOrdering::Relaxed);
            id
        }
    }

    /// Run one atomic operation: as a scheduling point inside a model, or
    /// raw outside one.
    fn run_op<R>(
        handle: &CellHandle,
        is_ptr: bool,
        kind: OpKind,
        ord_read: Option<Ordering>,
        ord_write: Option<Ordering>,
        current_bits: impl Fn() -> u64,
        raw_op: impl FnOnce() -> (R, OpBits, OpKind),
    ) -> R {
        match explore::current() {
            None => raw_op().0,
            Some(ctx) => ctx
                .exec
                .yield_and_run(ctx.id, Pending::Op(kind), move |inner, me| {
                    let cell = handle.resolve(inner, is_ptr, current_bits());
                    let (r, bits, actual_kind) = raw_op();
                    // CAS refines read/write orderings after the fact: failure
                    // is a pure load at the failure ordering.
                    let (orr, orw) = if actual_kind == OpKind::CasFail {
                        (ord_write, None)
                    } else {
                        (ord_read, ord_write)
                    };
                    inner
                        .apply_op(me, cell, actual_kind, orr, orw, bits)
                        .map(|()| r)
                }),
        }
    }

    /// Mark a cell opaque (exclusive `get_mut` access mutates it outside
    /// the instrumented path).
    fn run_opaque(handle: &CellHandle, is_ptr: bool, current_bits: u64) {
        if let Some(ctx) = explore::current() {
            let mut inner = ctx.exec.lock_inner();
            let cell = handle.resolve(&mut inner, is_ptr, current_bits);
            inner.mark_opaque(cell);
        }
    }

    macro_rules! int_atomic {
        ($(#[$meta:meta])* $Name:ident, $T:ty) => {
            $(#[$meta])*
            pub struct $Name {
                raw: std::sync::atomic::$Name,
                cell: CellHandle,
            }

            impl $Name {
                /// Create a new atomic with the given initial value.
                pub const fn new(v: $T) -> Self {
                    $Name { raw: std::sync::atomic::$Name::new(v), cell: CellHandle::new() }
                }

                /// Atomic load; a scheduling point under the model.
                pub fn load(&self, ord: Ordering) -> $T {
                    run_op(
                        &self.cell,
                        false,
                        OpKind::Load,
                        Some(ord),
                        None,
                        || self.raw.load(Ordering::SeqCst) as u64,
                        || {
                            let v = self.raw.load(ord);
                            (v, OpBits { read: Some(v as u64), written: None }, OpKind::Load)
                        },
                    )
                }

                /// Atomic store; a scheduling point under the model.
                pub fn store(&self, v: $T, ord: Ordering) {
                    run_op(
                        &self.cell,
                        false,
                        OpKind::Store,
                        None,
                        Some(ord),
                        || self.raw.load(Ordering::SeqCst) as u64,
                        || {
                            self.raw.store(v, ord);
                            ((), OpBits { read: None, written: Some(v as u64) }, OpKind::Store)
                        },
                    )
                }

                /// Atomic swap; a scheduling point under the model.
                pub fn swap(&self, v: $T, ord: Ordering) -> $T {
                    run_op(
                        &self.cell,
                        false,
                        OpKind::Swap,
                        Some(ord),
                        Some(ord),
                        || self.raw.load(Ordering::SeqCst) as u64,
                        || {
                            let old = self.raw.swap(v, ord);
                            (old, OpBits { read: Some(old as u64), written: Some(v as u64) }, OpKind::Swap)
                        },
                    )
                }

                /// Atomic compare-and-exchange; a scheduling point under the
                /// model.
                pub fn compare_exchange(
                    &self,
                    current: $T,
                    new: $T,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$T, $T> {
                    run_op(
                        &self.cell,
                        false,
                        OpKind::Cas,
                        Some(success),
                        Some(failure),
                        || self.raw.load(Ordering::SeqCst) as u64,
                        || match self.raw.compare_exchange(current, new, success, failure) {
                            Ok(old) => (
                                Ok(old),
                                OpBits { read: Some(old as u64), written: Some(new as u64) },
                                OpKind::CasOk,
                            ),
                            Err(old) => (
                                Err(old),
                                OpBits { read: Some(old as u64), written: None },
                                OpKind::CasFail,
                            ),
                        },
                    )
                }

                /// Atomic add, returning the previous value; a scheduling
                /// point under the model.
                pub fn fetch_add(&self, v: $T, ord: Ordering) -> $T {
                    run_op(
                        &self.cell,
                        false,
                        OpKind::FetchAdd,
                        Some(ord),
                        Some(ord),
                        || self.raw.load(Ordering::SeqCst) as u64,
                        || {
                            let old = self.raw.fetch_add(v, ord);
                            (
                                old,
                                OpBits { read: Some(old as u64), written: Some(old.wrapping_add(v) as u64) },
                                OpKind::FetchAdd,
                            )
                        },
                    )
                }

                /// Atomic subtract, returning the previous value; a
                /// scheduling point under the model.
                pub fn fetch_sub(&self, v: $T, ord: Ordering) -> $T {
                    run_op(
                        &self.cell,
                        false,
                        OpKind::FetchSub,
                        Some(ord),
                        Some(ord),
                        || self.raw.load(Ordering::SeqCst) as u64,
                        || {
                            let old = self.raw.fetch_sub(v, ord);
                            (
                                old,
                                OpBits { read: Some(old as u64), written: Some(old.wrapping_sub(v) as u64) },
                                OpKind::FetchSub,
                            )
                        },
                    )
                }

                /// Atomic max, returning the previous value; a scheduling
                /// point under the model.
                pub fn fetch_max(&self, v: $T, ord: Ordering) -> $T {
                    run_op(
                        &self.cell,
                        false,
                        OpKind::FetchMax,
                        Some(ord),
                        Some(ord),
                        || self.raw.load(Ordering::SeqCst) as u64,
                        || {
                            let old = self.raw.fetch_max(v, ord);
                            (
                                old,
                                OpBits { read: Some(old as u64), written: Some(old.max(v) as u64) },
                                OpKind::FetchMax,
                            )
                        },
                    )
                }

                /// Exclusive access to the value. Marks the shadow cell
                /// opaque under the model (subsequent mutation through the
                /// reference is invisible to the explorer's state hash).
                pub fn get_mut(&mut self) -> &mut $T {
                    run_opaque(&self.cell, false, self.raw.load(Ordering::SeqCst) as u64);
                    self.raw.get_mut()
                }

                /// Consume the atomic and return its value.
                pub fn into_inner(self) -> $T {
                    self.raw.into_inner()
                }
            }

            impl std::fmt::Debug for $Name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    std::fmt::Debug::fmt(&self.raw, f)
                }
            }

            impl Default for $Name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }
        };
    }

    int_atomic!(
        /// Instrumented `AtomicUsize`.
        AtomicUsize,
        usize
    );
    int_atomic!(
        /// Instrumented `AtomicIsize`.
        AtomicIsize,
        isize
    );
    int_atomic!(
        /// Instrumented `AtomicU64`.
        AtomicU64,
        u64
    );
    int_atomic!(
        /// Instrumented `AtomicI64`.
        AtomicI64,
        i64
    );

    /// Instrumented `AtomicBool`.
    pub struct AtomicBool {
        raw: std::sync::atomic::AtomicBool,
        cell: CellHandle,
    }

    impl AtomicBool {
        /// Create a new atomic flag with the given initial value.
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                raw: std::sync::atomic::AtomicBool::new(v),
                cell: CellHandle::new(),
            }
        }

        /// Atomic load; a scheduling point under the model.
        pub fn load(&self, ord: Ordering) -> bool {
            run_op(
                &self.cell,
                false,
                OpKind::Load,
                Some(ord),
                None,
                || u64::from(self.raw.load(Ordering::SeqCst)),
                || {
                    let v = self.raw.load(ord);
                    (
                        v,
                        OpBits {
                            read: Some(u64::from(v)),
                            written: None,
                        },
                        OpKind::Load,
                    )
                },
            )
        }

        /// Atomic store; a scheduling point under the model.
        pub fn store(&self, v: bool, ord: Ordering) {
            run_op(
                &self.cell,
                false,
                OpKind::Store,
                None,
                Some(ord),
                || u64::from(self.raw.load(Ordering::SeqCst)),
                || {
                    self.raw.store(v, ord);
                    (
                        (),
                        OpBits {
                            read: None,
                            written: Some(u64::from(v)),
                        },
                        OpKind::Store,
                    )
                },
            )
        }

        /// Atomic swap; a scheduling point under the model.
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            run_op(
                &self.cell,
                false,
                OpKind::Swap,
                Some(ord),
                Some(ord),
                || u64::from(self.raw.load(Ordering::SeqCst)),
                || {
                    let old = self.raw.swap(v, ord);
                    (
                        old,
                        OpBits {
                            read: Some(u64::from(old)),
                            written: Some(u64::from(v)),
                        },
                        OpKind::Swap,
                    )
                },
            )
        }

        /// Atomic compare-and-exchange; a scheduling point under the model.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            run_op(
                &self.cell,
                false,
                OpKind::Cas,
                Some(success),
                Some(failure),
                || u64::from(self.raw.load(Ordering::SeqCst)),
                || match self.raw.compare_exchange(current, new, success, failure) {
                    Ok(old) => (
                        Ok(old),
                        OpBits {
                            read: Some(u64::from(old)),
                            written: Some(u64::from(new)),
                        },
                        OpKind::CasOk,
                    ),
                    Err(old) => (
                        Err(old),
                        OpBits {
                            read: Some(u64::from(old)),
                            written: None,
                        },
                        OpKind::CasFail,
                    ),
                },
            )
        }

        /// Exclusive access to the flag; marks the shadow cell opaque under
        /// the model.
        pub fn get_mut(&mut self) -> &mut bool {
            run_opaque(
                &self.cell,
                false,
                u64::from(self.raw.load(Ordering::SeqCst)),
            );
            self.raw.get_mut()
        }

        /// Consume the atomic and return its value.
        pub fn into_inner(self) -> bool {
            self.raw.into_inner()
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&self.raw, f)
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    /// Instrumented `AtomicPtr<T>`. In addition to scheduling, pointer
    /// cells carry the release tag driving the checker's cross-thread
    /// visibility rule (see the crate docs).
    pub struct AtomicPtr<T> {
        raw: std::sync::atomic::AtomicPtr<T>,
        cell: CellHandle,
    }

    impl<T> AtomicPtr<T> {
        /// Create a new atomic pointer with the given initial value.
        pub const fn new(p: *mut T) -> Self {
            AtomicPtr {
                raw: std::sync::atomic::AtomicPtr::new(p),
                cell: CellHandle::new(),
            }
        }

        /// Atomic load; a scheduling point under the model, checked against
        /// the release-tag visibility rule.
        pub fn load(&self, ord: Ordering) -> *mut T {
            run_op(
                &self.cell,
                true,
                OpKind::Load,
                Some(ord),
                None,
                || self.raw.load(Ordering::SeqCst) as u64,
                || {
                    let p = self.raw.load(ord);
                    (
                        p,
                        OpBits {
                            read: Some(p as u64),
                            written: None,
                        },
                        OpKind::Load,
                    )
                },
            )
        }

        /// Atomic store; a scheduling point under the model, recording the
        /// release tag for the visibility rule.
        pub fn store(&self, p: *mut T, ord: Ordering) {
            run_op(
                &self.cell,
                true,
                OpKind::Store,
                None,
                Some(ord),
                || self.raw.load(Ordering::SeqCst) as u64,
                || {
                    self.raw.store(p, ord);
                    (
                        (),
                        OpBits {
                            read: None,
                            written: Some(p as u64),
                        },
                        OpKind::Store,
                    )
                },
            )
        }

        /// Atomic swap; a scheduling point under the model, checked and
        /// tagged by the visibility rule on both the read and the write.
        pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
            run_op(
                &self.cell,
                true,
                OpKind::Swap,
                Some(ord),
                Some(ord),
                || self.raw.load(Ordering::SeqCst) as u64,
                || {
                    let old = self.raw.swap(p, ord);
                    (
                        old,
                        OpBits {
                            read: Some(old as u64),
                            written: Some(p as u64),
                        },
                        OpKind::Swap,
                    )
                },
            )
        }

        /// Atomic compare-and-exchange; a scheduling point under the model.
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            run_op(
                &self.cell,
                true,
                OpKind::Cas,
                Some(success),
                Some(failure),
                || self.raw.load(Ordering::SeqCst) as u64,
                || match self.raw.compare_exchange(current, new, success, failure) {
                    Ok(old) => (
                        Ok(old),
                        OpBits {
                            read: Some(old as u64),
                            written: Some(new as u64),
                        },
                        OpKind::CasOk,
                    ),
                    Err(old) => (
                        Err(old),
                        OpBits {
                            read: Some(old as u64),
                            written: None,
                        },
                        OpKind::CasFail,
                    ),
                },
            )
        }

        /// Exclusive access to the pointer; marks the shadow cell opaque
        /// under the model.
        pub fn get_mut(&mut self) -> &mut *mut T {
            run_opaque(&self.cell, true, self.raw.load(Ordering::SeqCst) as u64);
            self.raw.get_mut()
        }

        /// Consume the atomic and return its value.
        pub fn into_inner(self) -> *mut T {
            self.raw.into_inner()
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&self.raw, f)
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    /// Memory fence; a scheduling point under the model. A
    /// Release/AcqRel/SeqCst fence sets a sticky per-thread release flag so
    /// a subsequent relaxed pointer store still counts as published
    /// (fence-before-store is a valid release idiom). Acquire-side fences
    /// are conservatively treated as not satisfying the Acquire-read
    /// requirement — the data plane under test uses no acquire fences, and
    /// over-reporting beats under-reporting for a checker.
    pub fn fence(ord: Ordering) {
        match explore::current() {
            None => std::sync::atomic::fence(ord),
            Some(ctx) => {
                ctx.exec
                    .yield_and_run(ctx.id, Pending::Op(OpKind::Fence), move |inner, me| {
                        std::sync::atomic::fence(ord);
                        inner.note_fence(me, ord);
                        Ok(())
                    });
            }
        }
    }
}
