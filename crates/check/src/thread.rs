//! Controlled thread spawn/join for model closures.
//!
//! Inside a [`crate::model`] closure, use [`spawn`]/[`JoinHandle::join`]
//! instead of `std::thread`: the spawned thread becomes a *controlled*
//! thread whose instrumented operations the explorer schedules. Spawning is
//! not itself a scheduling point (the child parks before running any user
//! code); joining is — the joiner blocks until the child has finished, and
//! the explorer treats a blocked joiner as disabled.

use crate::explore::{current, join_pending, launch, Pending};
use std::sync::{Arc, Mutex};

/// Handle to a controlled thread, returned by [`spawn`].
pub struct JoinHandle<T> {
    id: usize,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Wait (in model time) for the child to finish and return its result.
    ///
    /// Unlike `std::thread::JoinHandle::join` this returns `T` directly: a
    /// child panic aborts the whole execution and is re-raised by the
    /// driver with schedule diagnostics, so `join` can never observe it.
    pub fn join(self) -> T {
        let ctx = current().expect("JoinHandle::join called outside a model execution");
        ctx.exec
            .yield_and_run(ctx.id, join_pending(self.id), |inner, me| {
                inner.note_marker(me, crate::explore::OpKind::Join);
                Ok(())
            });
        self.slot
            .lock()
            .unwrap()
            .take()
            .expect("joined child finished without a result (aborted execution)")
    }
}

/// Spawn a controlled thread running `f`. Must be called from inside a
/// model execution (the closure passed to [`crate::model`], or a thread it
/// spawned).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let ctx = current().expect("check::thread::spawn called outside a model execution");
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let spawned = launch(&ctx.exec, f, move |val| {
        *slot2.lock().unwrap() = Some(val);
    });
    ctx.exec.inner_register_handle(spawned.os);
    JoinHandle {
        id: spawned.id,
        slot,
    }
}

/// Yield the current controlled thread's "time slice": inserts an explicit
/// scheduling point with no memory effect. Useful in harnesses to model a
/// `std::thread::yield_now` back-off edge. No-op outside a model.
pub fn yield_now() {
    if let Some(ctx) = current() {
        ctx.exec.yield_and_run(
            ctx.id,
            Pending::Op(crate::explore::OpKind::Yield),
            |inner, me| {
                inner.note_marker(me, crate::explore::OpKind::Yield);
                Ok(())
            },
        );
    }
}
