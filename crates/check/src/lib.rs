//! `aiac-check` — a bounded model checker for the AIAC lock-free data plane.
//!
//! The repo's hot path (`aiac-core`'s coalescing mailboxes and Chase–Lev
//! work-stealing deque) is correct only if it is correct under *every*
//! interleaving, not just the ones a stress test happens to sample. This
//! crate provides a loom-style checker: the code under test is compiled with
//! `RUSTFLAGS="--cfg aiac_check"` so that its atomics (routed through
//! `aiac-core`'s `runtime::sync` facade) resolve to the instrumented types in
//! [`sync::atomic`], and a driver enumerates thread interleavings
//! exhaustively within configurable bounds.
//!
//! # Execution model
//!
//! - **Sequentially-consistent front.** Exploration enumerates all
//!   interleavings of instrumented operations as if every operation were
//!   `SeqCst`: one thread runs at a time, each atomic operation is a
//!   scheduling point, and the driver picks which runnable thread executes
//!   the next operation. This over-approximates visibility (weaker orderings
//!   admit *more* behaviours than SC) so it can miss relaxed-memory-only
//!   bugs, but every schedule it does explore is real.
//! - **Ordering-aware visibility rule.** On top of the SC front, pointer
//!   cells ([`sync::atomic::AtomicPtr`]) track a release tag: a non-null
//!   pointer written without Release semantics (or read back by a *different*
//!   thread without Acquire semantics) is flagged as a visibility violation,
//!   because the bytes behind the pointer would not be guaranteed visible on
//!   a weakly-ordered machine. This is exactly the failure mode of the
//!   mailbox's `Box::into_raw` → `swap` → `Box::from_raw` handoff, and is
//!   what catches a seeded `AcqRel` → `Relaxed` mutation that the SC front
//!   alone would hide. A preceding [`sync::atomic::fence`] with
//!   Release/Acquire semantics on the same thread also satisfies the rule.
//! - **Bounded preemptions.** Context switches at points where the previous
//!   thread could have kept running are limited to
//!   [`Builder::max_preemptions`] per execution. Empirically (CHESS) almost
//!   all concurrency bugs manifest within two preemptions; the bound turns
//!   an exponential schedule space into a polynomial one while remaining
//!   exhaustive *within the bound*.
//! - **State-hash pruning.** At each branch point the driver hashes the
//!   abstract state — per-thread operation-history chains, shadow atomic
//!   values, thread statuses — and skips `(state, chosen-thread)` pairs it
//!   has already explored at an equal-or-lower preemption budget. Thread
//!   locals are a deterministic function of the thread's read history, so
//!   equal chains imply equal continuations and the pruning is sound.
//!
//! # Usage
//!
//! ```
//! use aiac_check::{model, thread, sync::atomic::{AtomicUsize, Ordering}};
//! use std::sync::Arc;
//!
//! let report = model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = thread::spawn(move || {
//!         // ord: model example — counter increment
//!         n2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     // ord: model example — counter increment
//!     n.fetch_add(1, Ordering::SeqCst);
//!     t.join();
//!     // ord: model example — final read at quiescence
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.complete);
//! ```
//!
//! A failing property panics inside the model; [`model`] re-raises the panic
//! annotated with the schedule (thread ids in execution order) and the tail
//! of the operation log so the interleaving can be replayed by hand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
pub mod sync;
pub mod thread;

pub use explore::{Builder, ExploreReport};

/// Explore all interleavings of `f` under the default bounds
/// ([`Builder::default`]). Panics if any execution fails; returns the
/// exploration statistics otherwise.
pub fn model<F>(f: F) -> ExploreReport
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}
