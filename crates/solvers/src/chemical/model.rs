//! Physical model of the 2-species advection–diffusion problem
//! (Section 4.2, equations 7–10).
//!
//! Two chemical species react and are transported in a two-dimensional
//! domain. The constants, reaction terms, diurnal rate coefficients and
//! initial profile below are transcribed from the paper. One transcription
//! note: the paper's β(z) mixes `(0.1z−1)²` and `(0.1z−4)⁴`; we use
//! `(0.1z−1)` in both terms (the standard form of this classical test
//! problem), which keeps β smooth and in [1/2, 1] over the domain — the
//! change only affects the initial profile shape, not the structure or cost
//! of the computation.

use serde::{Deserialize, Serialize};

/// Horizontal diffusion coefficient `Kh`.
pub const KH: f64 = 4.0e-6;
/// Horizontal advection velocity `V`.
pub const V: f64 = 1.0e-3;
/// Third-body concentration `c3`.
pub const C3: f64 = 3.7e16;
/// Reaction rate `q1`.
pub const Q1: f64 = 1.63e-16;
/// Reaction rate `q2`.
pub const Q2: f64 = 4.66e-16;
/// Exponent `a3` of the diurnal coefficient `q3(t)`.
pub const A3: f64 = 22.62;
/// Exponent `a4` of the diurnal coefficient `q4(t)`.
pub const A4: f64 = 7.601;
/// Diurnal pulsation ω = π / 43200 (a 24-hour cycle).
pub const OMEGA: f64 = std::f64::consts::PI / 43_200.0;

/// Typical magnitude of species 1, used to express residuals relatively.
pub const C1_SCALE: f64 = 1.0e6;
/// Typical magnitude of species 2.
pub const C2_SCALE: f64 = 1.0e12;

/// Vertical diffusion coefficient `Kv(z) = 1e-8 · exp(z / 5)`.
pub fn kv(z: f64) -> f64 {
    1.0e-8 * (z / 5.0).exp()
}

/// Diurnal rate coefficient `q3(t)`.
pub fn q3(t: f64) -> f64 {
    diurnal(t, A3)
}

/// Diurnal rate coefficient `q4(t)`.
pub fn q4(t: f64) -> f64 {
    diurnal(t, A4)
}

fn diurnal(t: f64, a: f64) -> f64 {
    let s = (OMEGA * t).sin();
    if s > 0.0 {
        (-a / s).exp()
    } else {
        0.0
    }
}

/// Reaction terms `R1` and `R2` of equation (8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reaction {
    /// `R1(c1, c2, t)`.
    pub r1: f64,
    /// `R2(c1, c2, t)`.
    pub r2: f64,
}

/// Evaluates the reaction terms at concentrations `(c1, c2)` and time `t`.
pub fn reaction(c1: f64, c2: f64, t: f64) -> Reaction {
    let q3t = q3(t);
    let q4t = q4(t);
    Reaction {
        r1: -Q1 * c1 * C3 - Q2 * c1 * c2 + 2.0 * q3t * C3 + q4t * c2,
        r2: Q1 * c1 * C3 - Q2 * c1 * c2 + q4t * c2,
    }
}

/// Partial derivatives of the reaction terms with respect to `(c1, c2)`,
/// used to assemble the Newton Jacobian.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReactionJacobian {
    /// ∂R1/∂c1.
    pub dr1_dc1: f64,
    /// ∂R1/∂c2.
    pub dr1_dc2: f64,
    /// ∂R2/∂c1.
    pub dr2_dc1: f64,
    /// ∂R2/∂c2.
    pub dr2_dc2: f64,
}

/// Evaluates the reaction Jacobian at `(c1, c2)` and time `t`.
pub fn reaction_jacobian(c1: f64, c2: f64, t: f64) -> ReactionJacobian {
    let q4t = q4(t);
    ReactionJacobian {
        dr1_dc1: -Q1 * C3 - Q2 * c2,
        dr1_dc2: -Q2 * c1 + q4t,
        dr2_dc1: Q1 * C3 - Q2 * c2,
        dr2_dc2: -Q2 * c1 + q4t,
    }
}

/// Horizontal profile α(x) of the initial condition (equation 10).
pub fn alpha(x: f64) -> f64 {
    let u = 0.1 * x - 1.0;
    1.0 - u * u + u.powi(4) / 2.0
}

/// Vertical profile β(z) of the initial condition (see the transcription note
/// in the module documentation).
pub fn beta(z: f64) -> f64 {
    let u = 0.1 * z - 1.0;
    1.0 - u * u + u.powi(4) / 2.0
}

/// Initial concentrations `(c1, c2)` at a point `(x, z)` (equation 9).
pub fn initial_concentrations(x: f64, z: f64) -> (f64, f64) {
    let profile = alpha(x) * beta(z);
    (C1_SCALE * profile, C2_SCALE * profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_grows_exponentially_with_altitude() {
        assert!((kv(0.0) - 1.0e-8).abs() < 1e-20);
        assert!((kv(5.0) - 1.0e-8 * std::f64::consts::E).abs() < 1e-20);
        assert!(kv(20.0) > kv(10.0));
    }

    #[test]
    fn diurnal_coefficients_vanish_at_night() {
        // sin(ωt) <= 0 on the second half of the cycle
        assert_eq!(q3(0.0), 0.0);
        assert_eq!(q3(43_200.0 + 10.0), 0.0);
        assert_eq!(q4(2.0 * 43_200.0), 0.0);
    }

    #[test]
    fn diurnal_coefficients_peak_at_noon() {
        let noon = 43_200.0 / 2.0;
        assert!(q3(noon) > q3(1_000.0));
        assert!(q4(noon) > q4(1_000.0));
        assert!((q3(noon) - (-A3).exp()).abs() < 1e-18);
    }

    #[test]
    fn reaction_terms_balance_species_exchange() {
        // During the night (q3 = q4 = 0) the production of species 2 equals
        // the photolysis loss of species 1 minus the mutual destruction term.
        let c1 = 1e6;
        let c2 = 1e12;
        let r = reaction(c1, c2, 0.0);
        assert!(r.r1 < 0.0, "species 1 is consumed");
        assert!(r.r2 > 0.0, "species 2 is produced");
        assert!((r.r1 + r.r2 - (-2.0 * Q2 * c1 * c2)).abs() < (r.r1.abs() * 1e-12));
    }

    #[test]
    fn reaction_jacobian_matches_finite_differences() {
        let (c1, c2, t) = (2.3e6, 0.8e12, 500.0);
        let j = reaction_jacobian(c1, c2, t);
        let h1 = 1.0;
        let h2 = 1e6;
        let base = reaction(c1, c2, t);
        let d1 = reaction(c1 + h1, c2, t);
        let d2 = reaction(c1, c2 + h2, t);
        assert!((j.dr1_dc1 - (d1.r1 - base.r1) / h1).abs() < 1e-6 * j.dr1_dc1.abs());
        assert!((j.dr2_dc1 - (d1.r2 - base.r2) / h1).abs() < 1e-6 * j.dr2_dc1.abs());
        assert!((j.dr1_dc2 - (d2.r1 - base.r1) / h2).abs() < 1e-6);
        assert!((j.dr2_dc2 - (d2.r2 - base.r2) / h2).abs() < 1e-6);
    }

    #[test]
    fn initial_profile_is_positive_and_peaks_mid_domain() {
        for &(x, z) in &[(0.0, 0.0), (10.0, 10.0), (20.0, 20.0), (5.0, 15.0)] {
            let (c1, c2) = initial_concentrations(x, z);
            assert!(c1 > 0.0 && c2 > 0.0);
            assert!((c2 / c1 - 1e6).abs() < 1e-6 * 1e6);
        }
        let (centre, _) = initial_concentrations(10.0, 10.0);
        let (corner, _) = initial_concentrations(0.0, 0.0);
        assert!(centre > corner);
    }

    #[test]
    fn alpha_and_beta_are_bounded_on_the_domain() {
        for i in 0..=20 {
            let v = i as f64;
            assert!(alpha(v) > 0.4 && alpha(v) <= 1.0 + 1e-12);
            assert!(beta(v) > 0.4 && beta(v) <= 1.0 + 1e-12);
        }
    }
}
