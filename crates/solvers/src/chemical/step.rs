//! One implicit-Euler time step of the chemical problem as an AIAC kernel.
//!
//! The paper solves every time step with the **multi-splitting Newton**
//! approach: the (x, z) grid is cut into horizontal strips, each processor
//! repeatedly performs Newton iterations restricted to its strip — using the
//! latest received boundary rows of its two neighbours as frozen data — and
//! the inner linear system of each Newton iteration is solved by a sequential
//! GMRES (Section 4.2/4.3). Those per-strip Newton iterations are exactly the
//! block updates of an [`IterativeKernel`], so the whole time step can be run
//! synchronously or asynchronously by any back-end of `aiac-core`, with a
//! barrier between time steps provided by the outer loop in
//! [`crate::chemical::ChemicalProblem`].

use super::model;
use aiac_core::kernel::{BlockUpdate, DependencyView, InPlaceUpdate, IterativeKernel};
use aiac_linalg::csr::CsrMatrix;
use aiac_linalg::decomp::Partition;
use aiac_linalg::gmres::{Gmres, GmresParams};

/// Geometry of the discretised domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridGeometry {
    /// Number of grid points along x.
    pub nx: usize,
    /// Number of grid points along z.
    pub nz: usize,
    /// Domain extent along x.
    pub x_max: f64,
    /// Domain extent along z.
    pub z_max: f64,
}

impl GridGeometry {
    /// Creates the geometry used by the paper's problem: a square domain
    /// discretised on `nx × nz` points.
    pub fn new(nx: usize, nz: usize) -> Self {
        assert!(
            nx >= 3 && nz >= 3,
            "the grid needs at least 3 points per axis"
        );
        Self {
            nx,
            nz,
            x_max: 20.0,
            z_max: 20.0,
        }
    }

    /// Grid spacing along x.
    pub fn dx(&self) -> f64 {
        self.x_max / (self.nx - 1) as f64
    }

    /// Grid spacing along z.
    pub fn dz(&self) -> f64 {
        self.z_max / (self.nz - 1) as f64
    }

    /// Physical x coordinate of column `ix`.
    pub fn x(&self, ix: usize) -> f64 {
        ix as f64 * self.dx()
    }

    /// Physical z coordinate of row `iz`.
    pub fn z(&self, iz: usize) -> f64 {
        iz as f64 * self.dz()
    }

    /// Total number of unknowns (two species per grid point).
    pub fn num_unknowns(&self) -> usize {
        2 * self.nx * self.nz
    }

    /// Flat index of species `s` at grid point `(ix, iz)` in a z-major layout
    /// (whole z-rows are contiguous, so a horizontal strip is a contiguous
    /// slice).
    pub fn index(&self, s: usize, ix: usize, iz: usize) -> usize {
        debug_assert!(s < 2 && ix < self.nx && iz < self.nz);
        (iz * self.nx + ix) * 2 + s
    }

    /// The initial concentration field of equation (9), in the same z-major
    /// layout.
    pub fn initial_state(&self) -> Vec<f64> {
        let mut y = vec![0.0; self.num_unknowns()];
        for iz in 0..self.nz {
            for ix in 0..self.nx {
                let (c1, c2) = model::initial_concentrations(self.x(ix), self.z(iz));
                y[self.index(0, ix, iz)] = c1;
                y[self.index(1, ix, iz)] = c2;
            }
        }
        y
    }
}

/// Virtual cost model of one time-step kernel: how expensive a Newton
/// iteration and a boundary exchange look to the simulated runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCostModel {
    /// Flops charged per grid point per Newton iteration.
    pub flops_per_point: f64,
    /// Reference machine throughput in flop/s.
    pub reference_flops: f64,
    /// Multiplier applied to the compute cost (used to present a reduced grid
    /// as a paper-size one).
    pub cost_scale: f64,
    /// Multiplier applied to the boundary-row message size.
    pub comm_scale: f64,
    /// Synchronisations per outer iteration charged to the synchronous
    /// baseline (the paper's global Newton/GMRES synchronises at every inner
    /// iteration).
    pub sync_inner_collectives: usize,
}

impl Default for StepCostModel {
    fn default() -> Self {
        Self {
            flops_per_point: 800.0,
            reference_flops: 1.5e8,
            cost_scale: 1.0,
            comm_scale: 1.0,
            sync_inner_collectives: 1,
        }
    }
}

/// One implicit-Euler step `G(y) = y − y_prev − h·f(y, t) = 0` presented as a
/// block-iterative kernel (one block per horizontal strip of z-rows).
pub struct ChemicalStepKernel {
    geometry: GridGeometry,
    /// Partition of the z-rows over the blocks.
    strip: Partition,
    /// Full previous-step state (z-major).
    y_prev: Vec<f64>,
    /// Time at the end of the step (the implicit Euler evaluation time).
    t_next: f64,
    /// Time-step length h.
    dt: f64,
    gmres: Gmres,
    /// Virtual cost model for the simulated runtime.
    cost: StepCostModel,
}

impl ChemicalStepKernel {
    /// Builds the kernel for one time step.
    ///
    /// # Panics
    /// Panics if `y_prev` does not match the grid size or if there are more
    /// blocks than z-rows.
    pub fn new(
        geometry: GridGeometry,
        blocks: usize,
        y_prev: Vec<f64>,
        t_next: f64,
        dt: f64,
        gmres: GmresParams,
        cost: StepCostModel,
    ) -> Self {
        assert_eq!(y_prev.len(), geometry.num_unknowns(), "state size mismatch");
        assert!(
            blocks >= 1 && blocks <= geometry.nz,
            "blocks must be in 1..=nz"
        );
        assert!(dt > 0.0, "the time step must be positive");
        Self {
            geometry,
            strip: Partition::balanced(geometry.nz, blocks),
            y_prev,
            t_next,
            dt,
            gmres: Gmres::new(gmres),
            cost,
        }
    }

    /// The z-row partition over the blocks.
    pub fn strip_partition(&self) -> &Partition {
        &self.strip
    }

    /// The grid geometry.
    pub fn geometry(&self) -> &GridGeometry {
        &self.geometry
    }

    /// Concentration of species `s` at `(ix, iz)` seen from block `block`:
    /// either a local unknown, or a frozen value from a neighbouring strip's
    /// latest received data, falling back to the previous time step when no
    /// message has arrived yet.
    fn conc(
        &self,
        block: usize,
        local: &[f64],
        others: &DependencyView,
        s: usize,
        ix: usize,
        iz: usize,
    ) -> f64 {
        let rows = self.strip.range(block);
        let nx = self.geometry.nx;
        if rows.contains(&iz) {
            let local_row = iz - rows.start;
            return local[(local_row * nx + ix) * 2 + s];
        }
        // The stencil only reaches one row outside the strip, so `iz` belongs
        // to a neighbouring block.
        let owner = self.strip.owner(iz);
        if let Some(values) = others.get(owner) {
            let owner_rows = self.strip.range(owner);
            let local_row = iz - owner_rows.start;
            values[(local_row * nx + ix) * 2 + s]
        } else {
            self.y_prev[self.geometry.index(s, ix, iz)]
        }
    }

    /// Right-hand side `f` of the semi-discretised ODE (equation 11) at one
    /// grid point, for both species.
    fn f_point(
        &self,
        block: usize,
        local: &[f64],
        others: &DependencyView,
        ix: usize,
        iz: usize,
    ) -> (f64, f64) {
        let g = &self.geometry;
        let dx = g.dx();
        let dz = g.dz();
        let z = g.z(iz);
        let kv_up = if iz + 1 < g.nz {
            model::kv(z + dz / 2.0) / (dz * dz)
        } else {
            0.0
        };
        let kv_down = if iz > 0 {
            model::kv(z - dz / 2.0) / (dz * dz)
        } else {
            0.0
        };
        let c1 = self.conc(block, local, others, 0, ix, iz);
        let c2 = self.conc(block, local, others, 1, ix, iz);
        let reaction = model::reaction(c1, c2, self.t_next);
        let mut out = [0.0f64; 2];
        for (s, out_s) in out.iter_mut().enumerate() {
            let c = if s == 0 { c1 } else { c2 };
            let ixl = ix.saturating_sub(1);
            let ixr = (ix + 1).min(g.nx - 1);
            let cl = self.conc(block, local, others, s, ixl, iz);
            let cr = self.conc(block, local, others, s, ixr, iz);
            let horizontal =
                model::KH * (cr - 2.0 * c + cl) / (dx * dx) + model::V * (cr - cl) / (2.0 * dx);
            let cu = if iz + 1 < g.nz {
                self.conc(block, local, others, s, ix, iz + 1)
            } else {
                c
            };
            let cd = if iz > 0 {
                self.conc(block, local, others, s, ix, iz - 1)
            } else {
                c
            };
            let vertical = kv_up * (cu - c) - kv_down * (c - cd);
            let r = if s == 0 { reaction.r1 } else { reaction.r2 };
            *out_s = horizontal + vertical + r;
        }
        (out[0], out[1])
    }

    /// Evaluates the local nonlinear residual `G(y)_p = y_p − y_prev_p − h·f_p`
    /// for every unknown of the strip.
    fn local_g(&self, block: usize, local: &[f64], others: &DependencyView) -> Vec<f64> {
        let rows = self.strip.range(block);
        let nx = self.geometry.nx;
        let mut g = vec![0.0; local.len()];
        for (local_row, iz) in rows.clone().enumerate() {
            for ix in 0..nx {
                let (f1, f2) = self.f_point(block, local, others, ix, iz);
                for (s, f) in [f1, f2].into_iter().enumerate() {
                    let p = (local_row * nx + ix) * 2 + s;
                    let prev = self.y_prev[self.geometry.index(s, ix, iz)];
                    g[p] = local[p] - prev - self.dt * f;
                }
            }
        }
        g
    }

    /// Assembles the local Newton Jacobian `I − h·∂f/∂y_local` of the strip,
    /// treating the neighbour strips' values as constants (the multi-splitting
    /// approximation).
    fn local_jacobian(&self, block: usize, local: &[f64], others: &DependencyView) -> CsrMatrix {
        let rows = self.strip.range(block);
        let g = &self.geometry;
        let nx = g.nx;
        let dx = g.dx();
        let dz = g.dz();
        let n_local = local.len();
        let h = self.dt;
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(n_local * 8);
        let idx_local = |local_row: usize, ix: usize, s: usize| (local_row * nx + ix) * 2 + s;

        for (local_row, iz) in rows.clone().enumerate() {
            let z = g.z(iz);
            let kv_up = if iz + 1 < g.nz {
                model::kv(z + dz / 2.0) / (dz * dz)
            } else {
                0.0
            };
            let kv_down = if iz > 0 {
                model::kv(z - dz / 2.0) / (dz * dz)
            } else {
                0.0
            };
            for ix in 0..nx {
                let c1 = self.conc(block, local, others, 0, ix, iz);
                let c2 = self.conc(block, local, others, 1, ix, iz);
                let rj = model::reaction_jacobian(c1, c2, self.t_next);
                for s in 0..2 {
                    let p = idx_local(local_row, ix, s);
                    // Transport part: ∂f/∂c coefficients accumulated per column.
                    let mut diag_transport = -2.0 * model::KH / (dx * dx);
                    // horizontal neighbours (clamped at the x boundaries)
                    let a_left = model::KH / (dx * dx) - model::V / (2.0 * dx);
                    let a_right = model::KH / (dx * dx) + model::V / (2.0 * dx);
                    if ix > 0 {
                        triplets.push((p, idx_local(local_row, ix - 1, s), -h * a_left));
                    } else {
                        diag_transport += a_left;
                    }
                    if ix + 1 < nx {
                        triplets.push((p, idx_local(local_row, ix + 1, s), -h * a_right));
                    } else {
                        diag_transport += a_right;
                    }
                    // vertical neighbours: only rows inside the strip are unknowns
                    diag_transport -= kv_up + kv_down;
                    if iz + 1 < g.nz && rows.contains(&(iz + 1)) {
                        triplets.push((p, idx_local(local_row + 1, ix, s), -h * kv_up));
                    }
                    if iz > 0 && rows.contains(&(iz - 1)) {
                        triplets.push((p, idx_local(local_row - 1, ix, s), -h * kv_down));
                    }
                    // reaction part (couples the two species at the same point)
                    let (drs_dc1, drs_dc2) = if s == 0 {
                        (rj.dr1_dc1, rj.dr1_dc2)
                    } else {
                        (rj.dr2_dc1, rj.dr2_dc2)
                    };
                    let same = if s == 0 { drs_dc1 } else { drs_dc2 };
                    let cross = if s == 0 { drs_dc2 } else { drs_dc1 };
                    let cross_col = idx_local(local_row, ix, 1 - s);
                    triplets.push((p, p, 1.0 - h * (diag_transport + same)));
                    triplets.push((p, cross_col, -h * cross));
                }
            }
        }
        CsrMatrix::from_triplets(n_local, n_local, triplets)
    }
}

impl IterativeKernel for ChemicalStepKernel {
    fn num_blocks(&self) -> usize {
        self.strip.parts()
    }

    fn block_len(&self, block: usize) -> usize {
        self.strip.size(block) * self.geometry.nx * 2
    }

    fn initial_block(&self, block: usize) -> Vec<f64> {
        // Each time step starts from the previous step's concentrations.
        let rows = self.strip.range(block);
        let nx = self.geometry.nx;
        let start = rows.start * nx * 2;
        let end = rows.end * nx * 2;
        self.y_prev[start..end].to_vec()
    }

    fn dependencies(&self, block: usize) -> Vec<usize> {
        let mut deps = Vec::new();
        if block > 0 {
            deps.push(block - 1);
        }
        if block + 1 < self.strip.parts() {
            deps.push(block + 1);
        }
        deps
    }

    fn update_block(&self, block: usize, local: &[f64], others: &DependencyView) -> BlockUpdate {
        let mut values = vec![0.0; local.len()];
        let update = self.update_block_into(block, local, others, &mut values);
        BlockUpdate {
            values,
            residual: update.residual,
        }
    }

    fn update_block_into(
        &self,
        block: usize,
        local: &[f64],
        others: &DependencyView,
        out: &mut [f64],
    ) -> InPlaceUpdate {
        // One Newton iteration on the strip: solve (I − h·J_f)·Δ = −G.
        let g = self.local_g(block, local, others);
        let jac = self.local_jacobian(block, local, others);
        let rhs: Vec<f64> = g.iter().map(|v| -v).collect();
        let (delta, _outcome) = self.gmres.solve_from_zero(&jac, &rhs);
        for ((oi, y), d) in out.iter_mut().zip(local).zip(&delta) {
            *oi = y + d;
        }
        // Residual: largest Newton correction relative to the species scale,
        // so the two species (1e6 vs 1e12) are weighted comparably.
        let mut residual = 0.0f64;
        for (p, d) in delta.iter().enumerate() {
            let scale = if p % 2 == 0 {
                model::C1_SCALE
            } else {
                model::C2_SCALE
            };
            residual = residual.max(d.abs() / scale);
        }
        InPlaceUpdate {
            residual,
            copied: false,
        }
    }

    fn iteration_cost(&self, block: usize) -> f64 {
        let points = (self.strip.size(block) * self.geometry.nx) as f64;
        points * self.cost.flops_per_point * self.cost.cost_scale / self.cost.reference_flops
    }

    fn message_bytes(&self, from: usize, to: usize) -> u64 {
        // Neighbouring strips exchange one boundary row (both species),
        // scaled to the paper-size row length.
        let adjacent = from.abs_diff(to) == 1;
        if adjacent {
            ((self.geometry.nx * 2 * std::mem::size_of::<f64>()) as f64 * self.cost.comm_scale)
                as u64
        } else {
            0
        }
    }

    fn residual_between(&self, _block: usize, a: &[f64], b: &[f64]) -> f64 {
        // Same species weighting as the residual of `update_block`, so the
        // runtimes' drift-based convergence window uses consistent units.
        let mut worst = 0.0f64;
        for (p, (x, y)) in a.iter().zip(b).enumerate() {
            let scale = if p % 2 == 0 {
                model::C1_SCALE
            } else {
                model::C2_SCALE
            };
            worst = worst.max((x - y).abs() / scale);
        }
        worst
    }

    fn sync_collectives_per_iteration(&self) -> usize {
        self.cost.sync_inner_collectives.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiac_core::config::RunConfig;
    use aiac_core::runtime::sequential::SequentialRuntime;

    fn geometry() -> GridGeometry {
        GridGeometry::new(12, 12)
    }

    fn kernel(blocks: usize) -> ChemicalStepKernel {
        let g = geometry();
        ChemicalStepKernel::new(
            g,
            blocks,
            g.initial_state(),
            180.0,
            180.0,
            GmresParams::default(),
            StepCostModel::default(),
        )
    }

    #[test]
    fn geometry_indexing_is_z_major_and_bijective() {
        let g = geometry();
        assert_eq!(g.num_unknowns(), 288);
        let mut seen = vec![false; g.num_unknowns()];
        for iz in 0..g.nz {
            for ix in 0..g.nx {
                for s in 0..2 {
                    let idx = g.index(s, ix, iz);
                    assert!(!seen[idx]);
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn initial_state_matches_the_analytic_profile() {
        let g = geometry();
        let y = g.initial_state();
        let (c1, c2) = model::initial_concentrations(g.x(3), g.z(7));
        assert_eq!(y[g.index(0, 3, 7)], c1);
        assert_eq!(y[g.index(1, 3, 7)], c2);
    }

    #[test]
    fn blocks_partition_the_unknowns() {
        let k = kernel(3);
        let total: usize = (0..3).map(|b| k.block_len(b)).sum();
        assert_eq!(total, geometry().num_unknowns());
        assert_eq!(k.dependencies(0), vec![1]);
        assert_eq!(k.dependencies(1), vec![0, 2]);
        assert_eq!(k.dependencies(2), vec![1]);
    }

    #[test]
    fn initial_blocks_are_slices_of_the_previous_state() {
        let k = kernel(4);
        let full = geometry().initial_state();
        let mut reassembled = Vec::new();
        for b in 0..4 {
            reassembled.extend(k.initial_block(b));
        }
        assert_eq!(reassembled, full);
    }

    #[test]
    fn newton_iterations_converge_within_a_time_step() {
        // With a single block the kernel is plain Newton on the full domain;
        // the sequential runtime drives it to a fixed point of G(y) = 0.
        let k = kernel(1);
        let report = SequentialRuntime::new().run(&k, &RunConfig::synchronous(1e-10));
        assert!(
            report.converged,
            "Newton did not converge: {}",
            report.final_residual
        );
        assert!(report.iterations[0] < 50, "Newton should converge quickly");
        // The implicit Euler solution must satisfy G(y) ≈ 0.
        let view = DependencyView::from_initial(&k);
        let g = k.local_g(0, &report.solution, &view);
        let scaled_norm = g
            .iter()
            .enumerate()
            .map(|(p, v)| {
                v.abs()
                    / if p % 2 == 0 {
                        model::C1_SCALE
                    } else {
                        model::C2_SCALE
                    }
            })
            .fold(0.0f64, f64::max);
        assert!(scaled_norm < 1e-6, "nonlinear residual {scaled_norm}");
    }

    #[test]
    fn decomposed_solution_matches_single_block_solution() {
        let single = kernel(1);
        let split = kernel(3);
        let cfg = RunConfig::synchronous(1e-10);
        let reference = SequentialRuntime::new().run(&single, &cfg);
        let decomposed = SequentialRuntime::new().run(&split, &cfg);
        assert!(reference.converged && decomposed.converged);
        for (a, b) in reference.solution.iter().zip(&decomposed.solution) {
            let scale = a.abs().max(1.0);
            assert!(
                ((a - b) / scale).abs() < 1e-6,
                "multisplitting and plain Newton disagree: {a} vs {b}"
            );
        }
    }

    #[test]
    fn concentrations_stay_positive_over_one_step() {
        let k = kernel(2);
        let report = SequentialRuntime::new().run(&k, &RunConfig::synchronous(1e-9));
        assert!(report.converged);
        assert!(report.solution.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn message_bytes_cover_one_boundary_row() {
        let k = kernel(3);
        assert_eq!(k.message_bytes(0, 1), (12 * 2 * 8) as u64);
        assert_eq!(k.message_bytes(0, 2), 0);
    }

    #[test]
    fn iteration_cost_scales_with_strip_height() {
        let k = kernel(3);
        // balanced partition of 12 rows over 3 blocks: equal strips
        assert!((k.iteration_cost(0) - k.iteration_cost(1)).abs() < 1e-12);
        let k2 = kernel(2);
        assert!(k2.iteration_cost(0) > k.iteration_cost(0));
    }
}
