//! The non-linear chemical benchmark problem (Section 4.2 of the paper).
//!
//! A two-species advection–diffusion system is discretised by finite
//! differences on an (x, z) grid and integrated over a time interval with the
//! implicit Euler method; each time step is solved by the multi-splitting
//! Newton method with GMRES as the sequential inner solver. Inside a time
//! step the per-strip Newton iterations run asynchronously (an AIAC process);
//! a synchronisation barrier separates consecutive time steps.
//!
//! * [`model`] — physical constants, reaction terms, initial profile;
//! * [`step`] — one implicit-Euler step as an [`aiac_core::kernel::IterativeKernel`];
//! * [`ChemicalProblem`] — the outer loop over time steps, generic over the
//!   runtime used for each step.

pub mod model;
pub mod step;

pub use step::{ChemicalStepKernel, GridGeometry, StepCostModel};

use aiac_core::report::RunReport;
use aiac_linalg::gmres::GmresParams;
use serde::{Deserialize, Serialize};

/// Parameters of the chemical benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChemicalParams {
    /// Grid points along x (the paper uses 600, and 1000 for Figure 3).
    pub nx: usize,
    /// Grid points along z.
    pub nz: usize,
    /// Simulated time interval, in seconds (Table 1 uses 2160 s).
    pub t_end: f64,
    /// Time step of the implicit Euler integration (Table 1 uses 180 s).
    pub dt: f64,
    /// Number of blocks (horizontal strips / processors).
    pub blocks: usize,
    /// Residual threshold used for the inner (per time step) convergence.
    pub epsilon: f64,
    /// Parameters of the inner GMRES solver.
    pub gmres: GmresParams,
    /// Flops charged per grid point per Newton iteration (virtual cost model
    /// for the simulated runtime).
    pub flops_per_point: f64,
    /// Reference machine throughput (flop/s) for the virtual cost model.
    pub reference_flops: f64,
    /// Scale factor applied to the virtual compute cost: `paper_scaled` sets
    /// it to `(600·600) / (nx·nz)` so a reduced grid is simulated with the
    /// full-size per-iteration compute time (the Newton iteration counts are
    /// essentially grid-size independent). Set to 1.0 to simulate the reduced
    /// grid literally.
    pub cost_scale: f64,
    /// Scale factor applied to the boundary-row message sizes (the paper's
    /// rows hold 600 points; `paper_scaled` sets this to `600 / nx`).
    pub comm_scale: f64,
    /// Number of inner synchronisations per outer iteration charged to the
    /// *synchronous* baseline, reflecting the paper's globally-synchronised
    /// Newton/parallel-GMRES version (one synchronisation per inner linear
    /// iteration). The asynchronous versions never use it.
    pub sync_inner_collectives: usize,
}

impl ChemicalParams {
    /// A scaled-down version of the paper's Table 1 configuration: same time
    /// interval and step, grid size as requested.
    pub fn paper_scaled(nx: usize, nz: usize, blocks: usize) -> Self {
        Self {
            nx,
            nz,
            t_end: 2160.0,
            dt: 180.0,
            blocks,
            epsilon: 1e-8,
            // Inexact Newton: each block relaxation performs a short GMRES
            // solve (the multi-splitting process iterates more, like the
            // paper's inner process, instead of nesting a fully converged
            // linear solve inside every exchange).
            gmres: GmresParams {
                restart: 6,
                tol: 1e-2,
                abs_tol: 1e-14,
                max_restarts: 1,
            },
            flops_per_point: 300.0,
            reference_flops: 1.5e8,
            cost_scale: (600.0 * 600.0) / (nx as f64 * nz as f64),
            comm_scale: 600.0 / nx as f64,
            sync_inner_collectives: 20,
        }
    }

    /// The paper's full-size configuration (600 × 600 grid).
    pub fn paper_full(blocks: usize) -> Self {
        Self::paper_scaled(600, 600, blocks)
    }

    /// Number of implicit Euler steps in the time interval.
    pub fn num_steps(&self) -> usize {
        (self.t_end / self.dt).ceil() as usize
    }
}

/// Aggregated result of integrating the chemical problem over its whole time
/// interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChemicalSolution {
    /// Final concentration field (z-major layout, two species per point).
    pub final_state: Vec<f64>,
    /// The per-time-step run reports.
    pub step_reports: Vec<RunReport>,
    /// Sum of the per-step execution times (seconds — virtual or wall-clock
    /// depending on the runtime that produced the reports).
    pub total_elapsed_secs: f64,
    /// Total number of data messages over all steps.
    pub total_data_messages: u64,
    /// Total data payload bytes over all steps.
    pub total_data_bytes: u64,
    /// True when every time step reached convergence.
    pub all_converged: bool,
}

impl ChemicalSolution {
    /// Mean number of inner iterations per block per time step.
    pub fn mean_inner_iterations(&self) -> f64 {
        if self.step_reports.is_empty() {
            return 0.0;
        }
        self.step_reports
            .iter()
            .map(|r| r.mean_iterations())
            .sum::<f64>()
            / self.step_reports.len() as f64
    }
}

/// The chemical problem: grid, time interval, decomposition.
#[derive(Debug, Clone)]
pub struct ChemicalProblem {
    params: ChemicalParams,
    geometry: GridGeometry,
}

impl ChemicalProblem {
    /// Creates the problem from its parameters.
    pub fn new(params: ChemicalParams) -> Self {
        let geometry = GridGeometry::new(params.nx, params.nz);
        assert!(
            params.blocks >= 1 && params.blocks <= params.nz,
            "blocks must be between 1 and nz"
        );
        assert!(
            params.t_end > 0.0 && params.dt > 0.0,
            "time parameters must be positive"
        );
        Self { params, geometry }
    }

    /// The parameters of the problem.
    pub fn params(&self) -> &ChemicalParams {
        &self.params
    }

    /// The grid geometry.
    pub fn geometry(&self) -> &GridGeometry {
        &self.geometry
    }

    /// The initial concentration field.
    pub fn initial_state(&self) -> Vec<f64> {
        self.geometry.initial_state()
    }

    /// Number of implicit Euler steps.
    pub fn num_steps(&self) -> usize {
        self.params.num_steps()
    }

    /// Builds the kernel of time step `step_index` (0-based), starting from
    /// the state `y_prev`.
    pub fn step_kernel(&self, y_prev: Vec<f64>, step_index: usize) -> ChemicalStepKernel {
        let t_next = (step_index as f64 + 1.0) * self.params.dt;
        ChemicalStepKernel::new(
            self.geometry,
            self.params.blocks,
            y_prev,
            t_next,
            self.params.dt,
            self.params.gmres,
            step::StepCostModel {
                flops_per_point: self.params.flops_per_point,
                reference_flops: self.params.reference_flops,
                cost_scale: self.params.cost_scale,
                comm_scale: self.params.comm_scale,
                sync_inner_collectives: self.params.sync_inner_collectives,
            },
        )
    }

    /// Integrates the whole time interval, delegating the solution of each
    /// time step to `run_step` (typically a closure invoking one of the
    /// `aiac-core` runtimes). The synchronisation between time steps — the
    /// paper's per-step barrier — is implicit: step `k+1` only starts once
    /// `run_step` has returned the solution of step `k`.
    pub fn solve_with<F>(&self, mut run_step: F) -> ChemicalSolution
    where
        F: FnMut(&ChemicalStepKernel, usize) -> RunReport,
    {
        let mut y = self.initial_state();
        let mut step_reports = Vec::with_capacity(self.num_steps());
        let mut total_elapsed = 0.0;
        let mut total_data_messages = 0;
        let mut total_data_bytes = 0;
        let mut all_converged = true;
        for step_index in 0..self.num_steps() {
            let kernel = self.step_kernel(y, step_index);
            let report = run_step(&kernel, step_index);
            assert_eq!(
                report.solution.len(),
                self.geometry.num_unknowns(),
                "runtime returned a solution of the wrong size"
            );
            y = report.solution.clone();
            total_elapsed += report.elapsed_secs;
            total_data_messages += report.data_messages;
            total_data_bytes += report.data_bytes;
            all_converged &= report.converged;
            step_reports.push(report);
        }
        ChemicalSolution {
            final_state: y,
            step_reports,
            total_elapsed_secs: total_elapsed,
            total_data_messages,
            total_data_bytes,
            all_converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiac_core::config::RunConfig;
    use aiac_core::runtime::sequential::SequentialRuntime;
    use aiac_core::runtime::threaded::ThreadedRuntime;

    fn small_params(blocks: usize) -> ChemicalParams {
        let mut p = ChemicalParams::paper_scaled(10, 10, blocks);
        p.t_end = 360.0; // two time steps keep the tests fast
        p
    }

    #[test]
    fn num_steps_follows_the_time_interval() {
        assert_eq!(ChemicalParams::paper_scaled(10, 10, 2).num_steps(), 12);
        assert_eq!(small_params(2).num_steps(), 2);
    }

    #[test]
    fn sequential_integration_produces_finite_positive_concentrations() {
        let problem = ChemicalProblem::new(small_params(1));
        let cfg = RunConfig::synchronous(1e-9);
        let solution = problem.solve_with(|kernel, _| SequentialRuntime::new().run(kernel, &cfg));
        assert!(solution.all_converged);
        assert_eq!(solution.step_reports.len(), 2);
        assert!(solution
            .final_state
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0));
        // species 1 is destroyed at night: its final concentration is far
        // below its initial value
        let initial = problem.initial_state();
        let g = problem.geometry();
        let idx = g.index(0, 5, 5);
        assert!(solution.final_state[idx] < initial[idx]);
    }

    #[test]
    fn decomposed_run_matches_the_single_block_reference() {
        let reference_problem = ChemicalProblem::new(small_params(1));
        let cfg = RunConfig::synchronous(1e-10);
        let reference = reference_problem.solve_with(|k, _| SequentialRuntime::new().run(k, &cfg));

        let decomposed_problem = ChemicalProblem::new(small_params(3));
        let decomposed =
            decomposed_problem.solve_with(|k, _| SequentialRuntime::new().run(k, &cfg));

        assert!(reference.all_converged && decomposed.all_converged);
        for (a, b) in reference.final_state.iter().zip(&decomposed.final_state) {
            let scale = a.abs().max(1.0);
            assert!(((a - b) / scale).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn threaded_async_integration_matches_the_reference() {
        let reference_problem = ChemicalProblem::new(small_params(1));
        let sync_cfg = RunConfig::synchronous(1e-10);
        let reference =
            reference_problem.solve_with(|k, _| SequentialRuntime::new().run(k, &sync_cfg));

        let async_problem = ChemicalProblem::new(small_params(2));
        let async_cfg = RunConfig::asynchronous(1e-10).with_streak(4);
        let parallel = async_problem.solve_with(|k, _| ThreadedRuntime::new().run(k, &async_cfg));

        assert!(parallel.all_converged);
        assert!(parallel.total_data_messages > 0);
        for (a, b) in reference.final_state.iter().zip(&parallel.final_state) {
            let scale = a.abs().max(1.0);
            assert!(((a - b) / scale).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn solution_statistics_are_aggregated() {
        let problem = ChemicalProblem::new(small_params(2));
        let cfg = RunConfig::synchronous(1e-9);
        let solution = problem.solve_with(|k, _| SequentialRuntime::new().run(k, &cfg));
        assert!(solution.mean_inner_iterations() > 0.0);
        assert!(solution.total_elapsed_secs >= 0.0);
    }

    #[test]
    #[should_panic(expected = "blocks must be between 1 and nz")]
    fn too_many_blocks_are_rejected() {
        ChemicalProblem::new(ChemicalParams::paper_scaled(10, 10, 50));
    }
}
