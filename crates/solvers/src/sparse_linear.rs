//! The sparse linear benchmark problem (Section 4.1 of the paper).
//!
//! The problem is `A·x = b` with `A` a large sparse matrix whose non-zeros
//! sit on 30 sub-diagonals, solved by the **fixed-step gradient descent**
//!
//! ```text
//! x_{k+1} = x_k + γ · M⁻¹ · (b − A·x_k)
//! ```
//!
//! where `M` is the block-diagonal part of `A` induced by the processor
//! decomposition and γ ≈ 1 (γ = 1 is the block-Jacobi method). The matrix and
//! vectors are decomposed vertically and distributed over the processors;
//! each processor first computes its data-dependency list from the sparsity
//! pattern and then iterates on its own block, asynchronously exchanging the
//! values other processors need (Section 4.3).
//!
//! [`SparseLinearProblem`] implements [`IterativeKernel`], so the same object
//! runs on the sequential, threaded and simulated runtimes.

use aiac_core::kernel::{BlockUpdate, DependencyView, InPlaceUpdate, IterativeKernel};
use aiac_linalg::banded::{BandedSpec, ScatteredDiagonalsSpec};
use aiac_linalg::csr::CsrMatrix;
use aiac_linalg::decomp::Partition;
use aiac_linalg::jacobi::BlockJacobi;
use aiac_linalg::norms::max_norm_diff;
use serde::{Deserialize, Serialize};

/// Shape of the generated test matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatrixShape {
    /// A contiguous band of sub-diagonals (neighbour-only dependencies).
    ContiguousBand,
    /// Sub-diagonals scattered over the whole dimension (all-to-all
    /// dependencies — the communication scheme described in Section 5.1).
    ScatteredDiagonals,
}

/// Parameters of the sparse linear benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseLinearParams {
    /// Matrix dimension (the paper uses 2 000 000).
    pub n: usize,
    /// Number of sub-diagonals (the paper uses 30).
    pub sub_diagonals: usize,
    /// Shape of the sparsity pattern.
    pub shape: MatrixShape,
    /// Bound on the Jacobi contraction factor (spectral radius < 1 required
    /// for asynchronous convergence).
    pub contraction: f64,
    /// Fixed step γ of the gradient descent (1.0 = block Jacobi).
    pub gamma: f64,
    /// Number of blocks / processors.
    pub blocks: usize,
    /// Seed of the matrix generator.
    pub seed: u64,
    /// Reference-machine throughput, in floating-point operations per second,
    /// used to convert per-iteration flop counts into virtual compute time
    /// for the simulated runtime (2004-era sparse-kernel throughput).
    pub reference_flops: f64,
    /// Scale factor applied to both the virtual compute cost and the message
    /// sizes reported to the simulated runtime.
    ///
    /// The paper's matrix has two million unknowns; running the numerics at a
    /// smaller dimension `n` keeps the *convergence behaviour* (iteration
    /// counts are governed by the contraction factor, not by the size) while
    /// the simulator should still see the full-size per-iteration compute
    /// time and data volumes. `paper_scaled` therefore sets this factor to
    /// `2 000 000 / n`, so the simulated execution models the paper-scale run
    /// even though the arithmetic is done at the reduced size. Set it to 1.0
    /// to simulate the reduced size literally.
    pub cost_scale: f64,
}

impl SparseLinearParams {
    /// A scaled-down version of the paper's configuration (Table 1): the
    /// sparsity pattern and contraction match the paper, the dimension is a
    /// parameter because two million unknowns do not fit a unit-test budget.
    pub fn paper_scaled(n: usize, blocks: usize) -> Self {
        Self {
            n,
            sub_diagonals: 30,
            shape: MatrixShape::ScatteredDiagonals,
            contraction: 0.9,
            gamma: 1.0,
            blocks,
            seed: 42,
            reference_flops: 1.5e8,
            cost_scale: 2_000_000.0 / n as f64,
        }
    }

    /// The full-size configuration of Table 1 (2 000 000 unknowns). Only used
    /// when the benchmark harness is explicitly asked to run at paper scale.
    pub fn paper_full(blocks: usize) -> Self {
        Self::paper_scaled(2_000_000, blocks)
    }
}

/// The sparse linear problem, ready to be executed by any runtime.
pub struct SparseLinearProblem {
    params: SparseLinearParams,
    a: CsrMatrix,
    b: Vec<f64>,
    x_exact: Vec<f64>,
    partition: Partition,
    /// Rows owned by each block (global column indices preserved).
    row_blocks: Vec<CsrMatrix>,
    /// Block-diagonal preconditioner `M⁻¹`.
    jacobi: BlockJacobi,
    /// Block dependency graph (which blocks own columns referenced by mine).
    dependencies: Vec<Vec<usize>>,
    /// `needed[from][to]` = number of values of block `from` that block `to`
    /// actually references (payload of a data message).
    needed: Vec<Vec<usize>>,
    /// Estimated flops of one local iteration per block.
    iteration_flops: Vec<f64>,
}

impl SparseLinearProblem {
    /// Generates the matrix, right-hand side and decomposition for the given
    /// parameters.
    ///
    /// # Panics
    /// Panics if a diagonal block is singular (cannot happen with the
    /// provided generators, which are strictly diagonally dominant).
    pub fn new(params: SparseLinearParams) -> Self {
        assert!(params.blocks > 0, "need at least one block");
        assert!(params.n >= params.blocks, "need at least one row per block");
        assert!(params.gamma > 0.0, "gamma must be positive");
        assert!(params.cost_scale > 0.0, "cost_scale must be positive");
        let (a, x_exact, b) = match params.shape {
            MatrixShape::ContiguousBand => {
                let spec = BandedSpec {
                    n: params.n,
                    bandwidth: params.sub_diagonals,
                    contraction: params.contraction,
                    seed: params.seed,
                };
                let a = spec.generate();
                let (x, b) = spec.generate_rhs(&a);
                (a, x, b)
            }
            MatrixShape::ScatteredDiagonals => {
                let spec = ScatteredDiagonalsSpec {
                    n: params.n,
                    num_diagonals: params.sub_diagonals,
                    contraction: params.contraction,
                    seed: params.seed,
                };
                let a = spec.generate();
                let (x, b) = spec.generate_rhs(&a);
                (a, x, b)
            }
        };
        let partition = Partition::balanced(params.n, params.blocks);
        let jacobi = BlockJacobi::new(&a, &partition)
            .expect("diagonally dominant matrices have invertible diagonal blocks");
        let row_blocks: Vec<CsrMatrix> = partition.iter().map(|(_, r)| a.row_block(r)).collect();
        let dependencies = a.block_dependencies(&partition);

        // Count, for every ordered pair (from, to), how many of `from`'s
        // values `to` references — the payload of a data message.
        let mut needed = vec![vec![0usize; params.blocks]; params.blocks];
        for (to, range) in partition.iter() {
            for col in a.external_dependencies(range) {
                let from = partition.owner(col);
                needed[from][to] += 1;
            }
        }

        let iteration_flops: Vec<f64> = row_blocks
            .iter()
            .enumerate()
            .map(|(b, blk)| {
                // SpMV on the local rows + residual + preconditioner solve.
                let spmv = 2.0 * blk.nnz() as f64;
                let jacobi_cost = {
                    let len = partition.size(b) as f64;
                    // dense forward/backward substitution on the diagonal block
                    let block_nnz = a.diagonal_block(partition.range(b)).nnz() as f64;
                    2.0 * block_nnz + 4.0 * len
                };
                spmv + jacobi_cost
            })
            .collect();

        Self {
            params,
            a,
            b,
            x_exact,
            partition,
            row_blocks,
            jacobi,
            dependencies,
            needed,
            iteration_flops,
        }
    }

    /// The parameters the problem was generated from.
    pub fn params(&self) -> &SparseLinearParams {
        &self.params
    }

    /// The generated matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.a
    }

    /// The right-hand side.
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }

    /// The exact solution the right-hand side was generated from.
    pub fn exact_solution(&self) -> &[f64] {
        &self.x_exact
    }

    /// The row partition across blocks.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Max-norm error of a candidate solution against the exact one.
    pub fn error_of(&self, x: &[f64]) -> f64 {
        max_norm_diff(x, &self.x_exact)
    }

    /// Max-norm of the linear residual `b − A·x` of a candidate solution.
    pub fn linear_residual(&self, x: &[f64]) -> f64 {
        let ax = self.a.spmv_alloc(x);
        ax.iter()
            .zip(&self.b)
            .fold(0.0_f64, |acc, (axi, bi)| acc.max((bi - axi).abs()))
    }

    /// Builds the full-length vector of unknowns a block needs for its local
    /// matrix-vector product: its own values plus the latest available values
    /// of its dependencies (zero elsewhere — those columns never appear in
    /// the local rows).
    fn assemble_global(&self, block: usize, local: &[f64], others: &DependencyView) -> Vec<f64> {
        let mut x = vec![0.0; self.params.n];
        let own = self.partition.range(block);
        x[own].copy_from_slice(local);
        for &dep in &self.dependencies[block] {
            if let Some(values) = others.get(dep) {
                let range = self.partition.range(dep);
                x[range].copy_from_slice(values);
            }
        }
        x
    }
}

impl IterativeKernel for SparseLinearProblem {
    fn num_blocks(&self) -> usize {
        self.params.blocks
    }

    fn block_len(&self, block: usize) -> usize {
        self.partition.size(block)
    }

    fn initial_block(&self, block: usize) -> Vec<f64> {
        // x0 = 0 (an arbitrary starting vector, as in the paper).
        vec![0.0; self.partition.size(block)]
    }

    fn dependencies(&self, block: usize) -> Vec<usize> {
        self.dependencies[block].clone()
    }

    fn update_block(&self, block: usize, local: &[f64], others: &DependencyView) -> BlockUpdate {
        let mut values = vec![0.0; local.len()];
        let update = self.update_block_into(block, local, others, &mut values);
        BlockUpdate {
            values,
            residual: update.residual,
        }
    }

    fn update_block_into(
        &self,
        block: usize,
        local: &[f64],
        others: &DependencyView,
        out: &mut [f64],
    ) -> InPlaceUpdate {
        let x = self.assemble_global(block, local, others);
        let range = self.partition.range(block);
        // local residual r = b_i − (A·x)_i restricted to the block's rows,
        // fused into one pass (same accumulation order as spmv + subtract)
        let mut r = vec![0.0; local.len()];
        self.row_blocks[block].residual(&self.b[range], &x, &mut r);
        // correction = γ · M_i⁻¹ · r
        let correction = self.jacobi.apply_block(block, &r);
        // new iterate straight into the caller's back buffer, folding the
        // update residual max into the same pass
        let mut residual = 0.0f64;
        for ((oi, xi), ci) in out.iter_mut().zip(local).zip(&correction) {
            let new = xi + self.params.gamma * ci;
            residual = residual.max((new - xi).abs());
            *oi = new;
        }
        InPlaceUpdate {
            residual,
            copied: false,
        }
    }

    fn iteration_cost(&self, block: usize) -> f64 {
        self.iteration_flops[block] * self.params.cost_scale / self.params.reference_flops
    }

    fn message_bytes(&self, from: usize, to: usize) -> u64 {
        // Only the values the destination actually references are sent; the
        // volume is scaled up to the paper-size equivalent (see `cost_scale`).
        ((self.needed[from][to] * std::mem::size_of::<f64>()) as f64 * self.params.cost_scale)
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiac_core::config::RunConfig;
    use aiac_core::runtime::sequential::SequentialRuntime;
    use aiac_core::runtime::threaded::ThreadedRuntime;

    fn small(shape: MatrixShape) -> SparseLinearProblem {
        let mut params = SparseLinearParams::paper_scaled(240, 4);
        params.shape = shape;
        params.sub_diagonals = 8;
        params.cost_scale = 1.0;
        SparseLinearProblem::new(params)
    }

    #[test]
    fn scattered_problem_has_all_to_all_dependencies() {
        let p = small(MatrixShape::ScatteredDiagonals);
        for b in 0..4 {
            assert_eq!(p.dependencies(b).len(), 3, "block {b}");
        }
    }

    #[test]
    fn banded_problem_only_couples_neighbouring_blocks() {
        let p = small(MatrixShape::ContiguousBand);
        assert_eq!(p.dependencies(0), vec![1]);
        assert_eq!(p.dependencies(1), vec![0, 2]);
        assert_eq!(p.dependencies(3), vec![2]);
    }

    #[test]
    fn message_bytes_match_dependency_counts() {
        let p = small(MatrixShape::ContiguousBand);
        // neighbouring blocks exchange up to `sub_diagonals` boundary values
        let bytes = p.message_bytes(0, 1);
        assert!(bytes > 0 && bytes <= 8 * 8);
        // non-dependent blocks would exchange nothing
        assert_eq!(p.message_bytes(0, 3), 0);
    }

    #[test]
    fn sequential_run_recovers_the_exact_solution() {
        let p = small(MatrixShape::ScatteredDiagonals);
        let report = SequentialRuntime::new().run(&p, &RunConfig::synchronous(1e-12));
        assert!(report.converged);
        assert!(
            p.error_of(&report.solution) < 1e-8,
            "error {}",
            p.error_of(&report.solution)
        );
        assert!(p.linear_residual(&report.solution) < 1e-6);
    }

    #[test]
    fn gamma_one_is_block_jacobi_and_converges() {
        let mut params = SparseLinearParams::paper_scaled(120, 3);
        params.gamma = 1.0;
        let p = SparseLinearProblem::new(params);
        let report = SequentialRuntime::new().run(&p, &RunConfig::synchronous(1e-11));
        assert!(report.converged);
        assert!(p.error_of(&report.solution) < 1e-7);
    }

    #[test]
    fn under_relaxed_gamma_still_converges_but_more_slowly() {
        let mut slow_params = SparseLinearParams::paper_scaled(120, 3);
        slow_params.gamma = 0.6;
        let slow = SparseLinearProblem::new(slow_params);
        let fast = SparseLinearProblem::new(SparseLinearParams::paper_scaled(120, 3));
        let cfg = RunConfig::synchronous(1e-10);
        let slow_report = SequentialRuntime::new().run(&slow, &cfg);
        let fast_report = SequentialRuntime::new().run(&fast, &cfg);
        assert!(slow_report.converged && fast_report.converged);
        assert!(slow_report.iterations[0] > fast_report.iterations[0]);
    }

    #[test]
    fn threaded_async_run_matches_exact_solution() {
        let p = small(MatrixShape::ScatteredDiagonals);
        let config = RunConfig::asynchronous(1e-11).with_streak(5);
        let report = ThreadedRuntime::new().run(&p, &config);
        assert!(report.converged);
        assert!(
            p.error_of(&report.solution) < 1e-6,
            "error {}",
            p.error_of(&report.solution)
        );
    }

    #[test]
    fn pooled_sync_runs_are_bit_identical_to_the_sequential_sweep() {
        // The double-buffered block state and the fused in-place update must
        // not perturb a single bit of the synchronous iteration: a pooled
        // threaded run only reorders *which worker* computes a block, never
        // the arithmetic, so every worker count must reproduce the
        // sequential sweep exactly.
        let p = small(MatrixShape::ScatteredDiagonals);
        let seq = SequentialRuntime::new().run(&p, &RunConfig::synchronous(1e-10));
        for workers in 1..=4 {
            let config = RunConfig::synchronous(1e-10).with_num_workers(workers);
            let par = ThreadedRuntime::new().run(&p, &config);
            assert_eq!(par.iterations, seq.iterations, "{workers} workers");
            assert_eq!(par.solution.len(), seq.solution.len(), "{workers} workers");
            for (i, (a, b)) in par.solution.iter().zip(&seq.solution).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{workers} workers: component {i} diverged from sequential"
                );
            }
        }
    }

    #[test]
    fn threaded_runs_of_the_sparse_solver_never_copy_payloads() {
        // The solver overrides `update_block_into`, so the data plane should
        // be structurally zero-copy in both modes.
        let p = small(MatrixShape::ScatteredDiagonals);
        for config in [
            RunConfig::synchronous(1e-10).with_num_workers(3),
            RunConfig::asynchronous(1e-11).with_streak(5),
        ] {
            let report = ThreadedRuntime::new().run(&p, &config);
            assert!(report.converged);
            assert_eq!(report.payload_clones, 0, "mode {:?}", config.mode);
            assert_eq!(report.bytes_copied, 0, "mode {:?}", config.mode);
        }
    }

    #[test]
    fn iteration_cost_scales_with_matrix_size() {
        let mut small_params = SparseLinearParams::paper_scaled(200, 4);
        small_params.cost_scale = 1.0;
        let mut large_params = SparseLinearParams::paper_scaled(800, 4);
        large_params.cost_scale = 1.0;
        let small_p = SparseLinearProblem::new(small_params);
        let large_p = SparseLinearProblem::new(large_params);
        assert!(large_p.iteration_cost(0) > small_p.iteration_cost(0));
    }

    #[test]
    fn paper_scaled_cost_model_targets_the_full_problem_size() {
        // Two generated problems of different reduced sizes must present the
        // simulator with (approximately) the same full-scale per-iteration
        // cost and per-message volume.
        let a = SparseLinearProblem::new(SparseLinearParams::paper_scaled(1_200, 6));
        let b = SparseLinearProblem::new(SparseLinearParams::paper_scaled(2_400, 6));
        let ratio_cost = a.iteration_cost(0) / b.iteration_cost(0);
        assert!((0.5..2.0).contains(&ratio_cost), "cost ratio {ratio_cost}");
        let bytes_a: u64 = (1..6).map(|d| a.message_bytes(0, d)).sum();
        let bytes_b: u64 = (1..6).map(|d| b.message_bytes(0, d)).sum();
        let ratio_bytes = bytes_a as f64 / bytes_b as f64;
        assert!(
            (0.4..2.5).contains(&ratio_bytes),
            "byte ratio {ratio_bytes}"
        );
    }

    #[test]
    fn initial_guess_is_the_zero_vector() {
        let p = small(MatrixShape::ContiguousBand);
        assert!(p.initial_block(2).iter().all(|v| *v == 0.0));
        assert_eq!(p.initial_block(0).len(), 60);
    }

    #[test]
    #[should_panic(expected = "at least one row per block")]
    fn more_blocks_than_rows_is_rejected() {
        SparseLinearProblem::new(SparseLinearParams::paper_scaled(2, 4));
    }
}
