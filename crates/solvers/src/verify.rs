//! Verification helpers shared by the test-suite, the examples and the
//! benchmark harness.
//!
//! The paper's comparison only makes sense if every implementation of an
//! algorithm computes the *same* answer; these helpers provide the reference
//! solutions and the tolerance-aware comparisons used to check that the
//! synchronous, asynchronous, threaded and simulated runs all agree.

use crate::chemical::{ChemicalProblem, ChemicalSolution};
use crate::sparse_linear::SparseLinearProblem;
use aiac_core::config::RunConfig;
use aiac_core::runtime::sequential::SequentialRuntime;

/// Maximum relative component-wise difference between two vectors,
/// `max_i |a_i − b_i| / max(|b_i|, floor)`.
pub fn max_relative_difference(a: &[f64], b: &[f64], floor: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must have the same length");
    a.iter().zip(b).fold(0.0f64, |acc, (x, y)| {
        acc.max((x - y).abs() / y.abs().max(floor))
    })
}

/// True when two solutions agree within the relative tolerance.
pub fn solutions_agree(a: &[f64], b: &[f64], tol: f64) -> bool {
    max_relative_difference(a, b, 1.0) <= tol
}

/// Solves a sparse linear problem with the sequential reference runtime and
/// returns the solution vector.
pub fn sparse_linear_reference(problem: &SparseLinearProblem, epsilon: f64) -> Vec<f64> {
    let report = SequentialRuntime::new().run(problem, &RunConfig::synchronous(epsilon));
    assert!(
        report.converged,
        "the sequential reference failed to converge (residual {})",
        report.final_residual
    );
    report.solution
}

/// Integrates a chemical problem sequentially (whatever its block count) and
/// returns the full solution, used as ground truth by tests and benches.
pub fn chemical_reference(problem: &ChemicalProblem, epsilon: f64) -> ChemicalSolution {
    let cfg = RunConfig::synchronous(epsilon);
    let solution = problem.solve_with(|kernel, _| SequentialRuntime::new().run(kernel, &cfg));
    assert!(
        solution.all_converged,
        "the sequential chemical reference failed to converge"
    );
    solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chemical::ChemicalParams;
    use crate::sparse_linear::SparseLinearParams;

    #[test]
    fn relative_difference_is_zero_for_identical_vectors() {
        let v = vec![1.0, -2.0, 3.0];
        assert_eq!(max_relative_difference(&v, &v, 1.0), 0.0);
        assert!(solutions_agree(&v, &v, 1e-12));
    }

    #[test]
    fn relative_difference_scales_by_the_reference() {
        let a = vec![1.0e6 + 1.0];
        let b = vec![1.0e6];
        assert!(max_relative_difference(&a, &b, 1.0) < 2e-6);
        assert!(!solutions_agree(&[2.0], &[1.0], 0.5));
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_are_rejected() {
        max_relative_difference(&[1.0], &[1.0, 2.0], 1.0);
    }

    #[test]
    fn sparse_reference_reproduces_the_generator_solution() {
        let problem = SparseLinearProblem::new(SparseLinearParams::paper_scaled(150, 3));
        let x = sparse_linear_reference(&problem, 1e-12);
        assert!(problem.error_of(&x) < 1e-8);
    }

    #[test]
    fn chemical_reference_converges_on_a_small_grid() {
        let mut params = ChemicalParams::paper_scaled(8, 8, 1);
        params.t_end = 180.0;
        let problem = ChemicalProblem::new(params);
        let solution = chemical_reference(&problem, 1e-9);
        assert_eq!(solution.step_reports.len(), 1);
        assert!(solution.final_state.iter().all(|v| v.is_finite()));
    }
}
