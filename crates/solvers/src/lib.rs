//! `aiac-solvers` — the two benchmark problems of the AIAC paper.
//!
//! * [`sparse_linear`] — the banded sparse linear system `A·x = b` solved by
//!   the fixed-step gradient descent
//!   `x_{k+1} = x_k + γ·M⁻¹·(b − A·x_k)` (Jacobi for γ = 1), with the
//!   all-to-all dependency-driven communication scheme of Section 4.1/4.3;
//! * [`chemical`] — the 2-species advection–diffusion problem of Section 4.2:
//!   finite-difference discretization on an (x, z) grid, implicit Euler over
//!   the time interval, multi-splitting Newton per time step with GMRES as
//!   the sequential inner solver, vertical strip decomposition and
//!   neighbour-only communications;
//! * [`verify`] — sequential reference solutions used by the test-suite to
//!   check that every parallel/asynchronous run converges to the right fixed
//!   point.
//!
//! Both problems implement [`aiac_core::kernel::IterativeKernel`], so the
//! same code runs on the threaded runtime, the simulated grid runtime and the
//! sequential reference runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chemical;
pub mod sparse_linear;
pub mod verify;

pub use chemical::{ChemicalParams, ChemicalProblem};
pub use sparse_linear::{SparseLinearParams, SparseLinearProblem};
