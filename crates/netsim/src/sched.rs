//! Per-host CPU scheduling.
//!
//! A simulated [`crate::host::Host`] has a finite number of cores, so when
//! more blocks than cores are placed on it their compute phases cannot all
//! run at once. [`CpuScheduler`] models one host's cores as a set of
//! earliest-free resources with FIFO admission: a job submitted at virtual
//! time `t` starts on the first core to become free at or after `t`, and jobs
//! submitted in chronological order never overtake each other on the same
//! host. [`HostScheduler`] bundles one `CpuScheduler` per host of a
//! [`GridTopology`] and accumulates the per-host load statistics
//! ([`HostLoad`]) the run reports surface: busy time, queueing delay, job
//! count and utilization.
//!
//! The same mechanism serves two resources of the simulated runtime: the
//! compute cores themselves, and the Table-4 dedicated receiving-thread
//! pools, which are per *host* (all blocks placed on a machine share its
//! receiving threads) rather than per block.

use crate::host::HostId;
use crate::time::SimTime;
use crate::topology::GridTopology;
use serde::{Deserialize, Serialize};

/// The interval a scheduled job was granted on a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// When the job actually starts executing (≥ the submission time).
    pub start: SimTime,
    /// When the job finishes.
    pub end: SimTime,
    /// Time the job spent waiting for a free core (`start − ready`).
    pub queued: SimTime,
}

/// FIFO scheduler over the cores of a single host.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuScheduler {
    /// Virtual time at which each core becomes free.
    free: Vec<SimTime>,
    busy: SimTime,
    queued: SimTime,
    jobs: u64,
    last_end: SimTime,
}

impl CpuScheduler {
    /// Creates a scheduler for `cores` cores, all free at time zero.
    ///
    /// # Panics
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "a scheduler needs at least one core");
        Self {
            free: vec![SimTime::ZERO; cores],
            busy: SimTime::ZERO,
            queued: SimTime::ZERO,
            jobs: 0,
            last_end: SimTime::ZERO,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.free.len()
    }

    /// Earliest time a job submitted at `ready` could start, without
    /// committing a core.
    pub fn earliest_start(&self, ready: SimTime) -> SimTime {
        self.free
            .iter()
            .copied()
            .min()
            .expect("scheduler has at least one core")
            .max(ready)
    }

    /// Admits a job of `duration` submitted at `ready`: the earliest-free
    /// core is occupied from `max(ready, core_free)` for `duration`.
    pub fn schedule(&mut self, ready: SimTime, duration: SimTime) -> Slot {
        let core = self
            .free
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("scheduler has at least one core");
        let start = self.free[core].max(ready);
        let end = start + duration;
        self.free[core] = end;
        let queued = start.saturating_sub(ready);
        self.busy += duration;
        self.queued += queued;
        self.jobs += 1;
        self.last_end = self.last_end.max(end);
        Slot { start, end, queued }
    }

    /// Total core-busy time accumulated so far.
    pub fn busy_secs(&self) -> f64 {
        self.busy.as_secs()
    }

    /// Total time jobs spent waiting for a free core.
    pub fn queue_secs(&self) -> f64 {
        self.queued.as_secs()
    }

    /// Number of jobs scheduled.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Completion time of the latest-finishing job (the host's makespan).
    pub fn makespan(&self) -> SimTime {
        self.last_end
    }

    /// Fraction of the capacity `cores × span` that was busy. Returns 0 for
    /// an empty span.
    pub fn utilization(&self, span: SimTime) -> f64 {
        if span.is_zero() {
            return 0.0;
        }
        self.busy.as_secs() / (span.as_secs() * self.cores() as f64)
    }
}

/// Per-host load statistics of a finished run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostLoad {
    /// Host index.
    pub host: usize,
    /// Number of cores the host scheduled over.
    pub cores: usize,
    /// Number of jobs (compute phases or receptions) executed.
    pub jobs: u64,
    /// Total core-busy virtual seconds.
    pub busy_secs: f64,
    /// Total virtual seconds jobs waited for a free core.
    pub queue_secs: f64,
    /// `busy_secs / (cores × span)` over the run's span.
    pub utilization: f64,
}

/// One [`CpuScheduler`] per host of a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct HostScheduler {
    hosts: Vec<CpuScheduler>,
}

impl HostScheduler {
    /// Builds a scheduler over every host of `topology`, using each host's
    /// own core count.
    pub fn for_topology(topology: &GridTopology) -> Self {
        Self {
            hosts: topology
                .hosts()
                .iter()
                .map(|h| CpuScheduler::new(h.cores))
                .collect(),
        }
    }

    /// Builds a scheduler with the same number of slots on every host — used
    /// for the per-host dedicated receiving-thread pools, whose size comes
    /// from the Table-4 thread configuration, not from the hardware.
    pub fn uniform(num_hosts: usize, slots: usize) -> Self {
        assert!(num_hosts > 0, "need at least one host");
        Self {
            hosts: (0..num_hosts).map(|_| CpuScheduler::new(slots)).collect(),
        }
    }

    /// Number of hosts covered.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// The scheduler of one host.
    ///
    /// # Panics
    /// Panics when the id is out of range.
    pub fn host(&self, id: HostId) -> &CpuScheduler {
        &self.hosts[id.0]
    }

    /// Admits a job on `host` (see [`CpuScheduler::schedule`]).
    pub fn schedule(&mut self, host: HostId, ready: SimTime, duration: SimTime) -> Slot {
        self.hosts[host.0].schedule(ready, duration)
    }

    /// Total queueing delay accumulated across every host.
    pub fn total_queue_secs(&self) -> f64 {
        self.hosts.iter().map(|h| h.queue_secs()).sum()
    }

    /// Total core-busy time accumulated across every host — with
    /// [`HostScheduler::total_queue_secs`], the deterministic virtual-clock
    /// totals the benchmark harness gates on.
    pub fn total_busy_secs(&self) -> f64 {
        self.hosts.iter().map(|h| h.busy_secs()).sum()
    }

    /// Snapshot of every host's load over a run of length `span`.
    pub fn loads(&self, span: SimTime) -> Vec<HostLoad> {
        self.hosts
            .iter()
            .enumerate()
            .map(|(host, cpu)| HostLoad {
                host,
                cores: cpu.cores(),
                jobs: cpu.jobs(),
                busy_secs: cpu.busy_secs(),
                queue_secs: cpu.queue_secs(),
                utilization: cpu.utilization(span),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_core_serialises_jobs_fifo() {
        let mut cpu = CpuScheduler::new(1);
        let a = cpu.schedule(SimTime::ZERO, secs(2.0));
        let b = cpu.schedule(SimTime::ZERO, secs(1.0));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.end, secs(2.0));
        assert_eq!(b.start, secs(2.0), "second job queues behind the first");
        assert_eq!(b.end, secs(3.0));
        assert_eq!(b.queued, secs(2.0));
        assert_eq!(cpu.busy_secs(), 3.0);
        assert_eq!(cpu.queue_secs(), 2.0);
        assert_eq!(cpu.jobs(), 2);
        assert_eq!(cpu.makespan(), secs(3.0));
    }

    #[test]
    fn two_cores_run_two_jobs_concurrently() {
        let mut cpu = CpuScheduler::new(2);
        let a = cpu.schedule(SimTime::ZERO, secs(2.0));
        let b = cpu.schedule(SimTime::ZERO, secs(2.0));
        let c = cpu.schedule(SimTime::ZERO, secs(1.0));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO, "second core absorbs the second job");
        assert_eq!(c.start, secs(2.0), "third job waits for a core");
        assert_eq!(cpu.queue_secs(), 2.0);
    }

    #[test]
    fn idle_gaps_do_not_count_as_busy_time() {
        let mut cpu = CpuScheduler::new(1);
        cpu.schedule(SimTime::ZERO, secs(1.0));
        let late = cpu.schedule(secs(5.0), secs(1.0));
        assert_eq!(late.start, secs(5.0));
        assert_eq!(late.queued, SimTime::ZERO);
        assert_eq!(cpu.busy_secs(), 2.0);
        // 2 busy seconds over a 6-second single-core span
        assert!((cpu.utilization(secs(6.0)) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(cpu.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn earliest_start_peeks_without_committing() {
        let mut cpu = CpuScheduler::new(1);
        cpu.schedule(SimTime::ZERO, secs(3.0));
        assert_eq!(cpu.earliest_start(secs(1.0)), secs(3.0));
        assert_eq!(cpu.earliest_start(secs(4.0)), secs(4.0));
        assert_eq!(cpu.jobs(), 1, "peeking must not schedule");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_is_rejected() {
        CpuScheduler::new(0);
    }

    #[test]
    fn host_scheduler_tracks_per_host_loads() {
        let topo = GridTopology::local_hetero_cluster(3);
        let mut sched = HostScheduler::for_topology(&topo);
        assert_eq!(sched.num_hosts(), 3);
        sched.schedule(HostId(0), SimTime::ZERO, secs(1.0));
        sched.schedule(HostId(0), SimTime::ZERO, secs(1.0));
        sched.schedule(HostId(2), SimTime::ZERO, secs(0.5));
        let loads = sched.loads(secs(2.0));
        assert_eq!(loads[0].jobs, 2);
        assert_eq!(loads[0].busy_secs, 2.0);
        assert_eq!(loads[0].queue_secs, 1.0);
        assert!((loads[0].utilization - 1.0).abs() < 1e-12);
        assert_eq!(loads[1].jobs, 0);
        assert_eq!(loads[2].busy_secs, 0.5);
        assert_eq!(sched.total_queue_secs(), 1.0);
    }

    #[test]
    fn uniform_scheduler_gives_every_host_the_same_pool() {
        let sched = HostScheduler::uniform(4, 2);
        assert_eq!(sched.num_hosts(), 4);
        for h in 0..4 {
            assert_eq!(sched.host(HostId(h)).cores(), 2);
        }
    }

    proptest! {
        /// Adding a core never increases any job's completion time (and hence
        /// never the makespan): the end-to-end guarantee behind "adding hosts
        /// never slows a run down" at the scheduler level.
        #[test]
        fn prop_more_cores_never_increase_makespan(
            jobs in proptest::collection::vec((0.0f64..50.0, 0.01f64..5.0), 1..40),
            cores in 1usize..4,
        ) {
            let mut small = CpuScheduler::new(cores);
            let mut large = CpuScheduler::new(cores + 1);
            for &(ready, duration) in &jobs {
                let a = small.schedule(secs(ready), secs(duration));
                let b = large.schedule(secs(ready), secs(duration));
                prop_assert!(b.end <= a.end, "job finished later on more cores");
            }
            prop_assert!(large.makespan() <= small.makespan());
            prop_assert!(large.queue_secs() <= small.queue_secs());
        }

        /// Jobs submitted in chronological order start in that order (FIFO:
        /// no job overtakes an earlier submission on the same host).
        #[test]
        fn prop_chronological_submissions_are_fifo(
            jobs in proptest::collection::vec(0.01f64..3.0, 1..30),
            cores in 1usize..4,
        ) {
            let mut cpu = CpuScheduler::new(cores);
            let mut ready = SimTime::ZERO;
            let mut last_start = SimTime::ZERO;
            for (i, &duration) in jobs.iter().enumerate() {
                let slot = cpu.schedule(ready, secs(duration));
                prop_assert!(slot.start >= ready);
                prop_assert!(slot.start >= last_start, "job {i} overtook an earlier one");
                last_start = slot.start;
                ready += secs(duration / 3.0);
            }
            // conservation: busy time is exactly the sum of the durations
            let total: f64 = jobs.iter().sum();
            prop_assert!((cpu.busy_secs() - total).abs() < 1e-9);
        }
    }
}
