//! The discrete-event simulation kernel.
//!
//! [`Simulator`] owns the virtual clock and an [`EventQueue`]; a driver (the
//! simulated AIAC runtime in `aiac-core`) schedules payloads and repeatedly
//! asks for the next one, advancing the clock monotonically. The kernel is
//! deliberately minimal — all AIAC-specific semantics live in the runtime —
//! but it enforces the invariants every discrete-event simulation needs:
//! time never goes backwards and simultaneous events fire in scheduling
//! order.

use crate::event::{Event, EventQueue};
use crate::time::SimTime;

/// A minimal deterministic discrete-event simulator.
#[derive(Debug, Clone)]
pub struct Simulator<T> {
    clock: SimTime,
    queue: EventQueue<T>,
    processed: u64,
}

impl<T> Default for Simulator<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Simulator<T> {
    /// Creates a simulator with the clock at zero and no pending events.
    pub fn new() -> Self {
        Self {
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules a payload at an absolute virtual time.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current clock (events cannot be
    /// scheduled in the past).
    pub fn schedule_at(&mut self, time: SimTime, payload: T) {
        assert!(
            time >= self.clock,
            "cannot schedule an event in the past ({time:?} < {:?})",
            self.clock
        );
        self.queue.schedule(time, payload);
    }

    /// Schedules a payload after a delay relative to the current clock.
    pub fn schedule_in(&mut self, delay: SimTime, payload: T) {
        self.schedule_at(self.clock + delay, payload);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when no events are pending (the simulation has ended).
    pub fn next_event(&mut self) -> Option<Event<T>> {
        let ev = self.queue.pop()?;
        debug_assert!(ev.time >= self.clock, "event queue returned a past event");
        self.clock = ev.time;
        self.processed += 1;
        Some(ev)
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Runs the simulation to completion, calling `handler` for every event.
    /// The handler receives the simulator (to schedule follow-up events) and
    /// the payload.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, T)) {
        while let Some(ev) = self.next_event() {
            handler(self, ev.payload);
        }
    }

    /// Runs the simulation until the clock would exceed `deadline`, leaving
    /// later events pending. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime, mut handler: impl FnMut(&mut Self, T)) -> u64 {
        let before = self.processed;
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let ev = self.next_event().expect("peeked event must exist");
            handler(self, ev.payload);
        }
        self.processed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(2.0), "b");
        sim.schedule_at(SimTime::from_secs(1.0), "a");
        assert_eq!(sim.now(), SimTime::ZERO);
        let e = sim.next_event().unwrap();
        assert_eq!(e.payload, "a");
        assert_eq!(sim.now(), SimTime::from_secs(1.0));
        sim.next_event();
        assert_eq!(sim.now(), SimTime::from_secs(2.0));
        assert!(sim.next_event().is_none());
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    fn schedule_in_is_relative_to_clock() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1.0), 1);
        sim.next_event();
        sim.schedule_in(SimTime::from_secs(0.5), 2);
        let e = sim.next_event().unwrap();
        assert_eq!(e.time, SimTime::from_secs(1.5));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_is_rejected() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(2.0), ());
        sim.next_event();
        sim.schedule_at(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn run_processes_cascading_events() {
        // Each event below 5 schedules its successor; run() must follow the chain.
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(0.0), 0u32);
        let mut seen = Vec::new();
        sim.run(|sim, n| {
            seen.push(n);
            if n < 5 {
                sim.schedule_in(SimTime::from_secs(1.0), n + 1);
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(sim.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn run_until_stops_at_the_deadline() {
        let mut sim = Simulator::new();
        for i in 0..10 {
            sim.schedule_at(SimTime::from_secs(i as f64), i);
        }
        let mut seen = Vec::new();
        let n = sim.run_until(SimTime::from_secs(4.5), |_, i| seen.push(i));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.pending(), 5);
        // the clock has not run past the deadline
        assert!(sim.now() <= SimTime::from_secs(4.5));
    }
}
