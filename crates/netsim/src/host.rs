//! Hosts (simulated machines) and sites.
//!
//! The paper's clusters mix three kinds of machines — Duron 800 MHz,
//! Pentium IV 1.7 GHz and Pentium IV 2.4 GHz — scattered over one, three or
//! four sites. A [`Host`] carries the properties the simulation needs:
//! a *relative CPU speed* (used to convert work units into virtual compute
//! time), a *core count* (the number of compute phases the machine can run
//! simultaneously — co-located work beyond it queues in
//! [`crate::sched::HostScheduler`]) and the [`SiteId`] it belongs to (used to
//! pick the network link a message travels over).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier of a host within a [`crate::topology::GridTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub usize);

/// Identifier of a site (a geographically distinct cluster of machines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub usize);

/// The machine models used in the paper's experiments (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineKind {
    /// AMD Duron 800 MHz — the slowest machine of the local cluster.
    Duron800,
    /// Intel Pentium IV 1.7 GHz.
    PentiumIv1_7,
    /// Intel Pentium IV 2.4 GHz — the reference (fastest) machine.
    PentiumIv2_4,
    /// A custom machine with an explicit relative speed.
    Custom,
}

impl MachineKind {
    /// Relative compute speed, normalised so the Pentium IV 2.4 GHz is `1.0`.
    ///
    /// The ratios follow the clock ratios of the paper's machines, which is a
    /// good first-order model for the compute-bound inner loops of both
    /// benchmark problems.
    pub fn speed_factor(self) -> f64 {
        match self {
            MachineKind::Duron800 => 800.0 / 2400.0,
            MachineKind::PentiumIv1_7 => 1700.0 / 2400.0,
            MachineKind::PentiumIv2_4 => 1.0,
            MachineKind::Custom => 1.0,
        }
    }

    /// The three paper machines in the interleaving order used for the local
    /// heterogeneous cluster of Figure 3.
    pub fn interleaved(index: usize) -> MachineKind {
        match index % 3 {
            0 => MachineKind::Duron800,
            1 => MachineKind::PentiumIv1_7,
            _ => MachineKind::PentiumIv2_4,
        }
    }
}

/// A simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// The host identifier (index into the topology's host table).
    pub id: HostId,
    /// Human-readable name, e.g. `"site1-node03"`.
    pub name: String,
    /// The site this host belongs to.
    pub site: SiteId,
    /// The machine model.
    pub kind: MachineKind,
    /// Relative compute speed (1.0 = reference machine). Work taking `w`
    /// seconds on the reference machine takes `w / speed` here.
    pub speed: f64,
    /// Number of CPU cores: how many compute phases the host can execute at
    /// the same time. The paper's machines are all single-core desktops, so
    /// every constructor defaults to 1; use [`Host::with_cores`] for SMP
    /// hosts.
    pub cores: usize,
}

impl Host {
    /// Creates a (single-core) host of a given machine kind.
    pub fn new(id: HostId, name: impl Into<String>, site: SiteId, kind: MachineKind) -> Self {
        Self {
            id,
            name: name.into(),
            site,
            kind,
            speed: kind.speed_factor(),
            cores: 1,
        }
    }

    /// Creates a (single-core) host with an explicit relative speed.
    pub fn with_speed(id: HostId, name: impl Into<String>, site: SiteId, speed: f64) -> Self {
        assert!(speed > 0.0, "host speed must be positive");
        Self {
            id,
            name: name.into(),
            site,
            kind: MachineKind::Custom,
            speed,
            cores: 1,
        }
    }

    /// Sets the core count (builder style).
    ///
    /// # Panics
    /// Panics if `cores` is zero.
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores > 0, "a host needs at least one core");
        self.cores = cores;
        self
    }

    /// Virtual time needed to execute `reference_secs` seconds worth of work
    /// (measured on the reference machine) on this host.
    pub fn compute_time(&self, reference_secs: f64) -> SimTime {
        assert!(reference_secs >= 0.0, "work cannot be negative");
        SimTime::from_secs(reference_secs / self.speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_factors_follow_clock_ratios() {
        assert!((MachineKind::Duron800.speed_factor() - 1.0 / 3.0).abs() < 1e-12);
        assert!(MachineKind::PentiumIv1_7.speed_factor() < 1.0);
        assert_eq!(MachineKind::PentiumIv2_4.speed_factor(), 1.0);
    }

    #[test]
    fn interleaving_cycles_through_the_three_kinds() {
        assert_eq!(MachineKind::interleaved(0), MachineKind::Duron800);
        assert_eq!(MachineKind::interleaved(1), MachineKind::PentiumIv1_7);
        assert_eq!(MachineKind::interleaved(2), MachineKind::PentiumIv2_4);
        assert_eq!(MachineKind::interleaved(3), MachineKind::Duron800);
    }

    #[test]
    fn slower_host_needs_more_virtual_time() {
        let fast = Host::new(HostId(0), "fast", SiteId(0), MachineKind::PentiumIv2_4);
        let slow = Host::new(HostId(1), "slow", SiteId(0), MachineKind::Duron800);
        let w = 1.0;
        assert!(slow.compute_time(w) > fast.compute_time(w));
        assert_eq!(fast.compute_time(w).as_secs(), 1.0);
        assert!((slow.compute_time(w).as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn custom_speed_is_respected() {
        let h = Host::with_speed(HostId(0), "h", SiteId(0), 2.0);
        assert_eq!(h.compute_time(4.0).as_secs(), 2.0);
    }

    #[test]
    fn hosts_default_to_one_core() {
        let h = Host::new(HostId(0), "h", SiteId(0), MachineKind::PentiumIv2_4);
        assert_eq!(h.cores, 1);
        assert_eq!(h.with_cores(4).cores, 4);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_is_rejected() {
        let _ = Host::new(HostId(0), "h", SiteId(0), MachineKind::Duron800).with_cores(0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_is_rejected() {
        Host::with_speed(HostId(0), "h", SiteId(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "work cannot be negative")]
    fn negative_work_is_rejected() {
        let h = Host::new(HostId(0), "h", SiteId(0), MachineKind::PentiumIv2_4);
        h.compute_time(-1.0);
    }
}
