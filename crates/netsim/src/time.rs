//! Virtual time.
//!
//! The simulator measures everything in seconds of *virtual* time, represented
//! by [`SimTime`]. Using a dedicated newtype (rather than a bare `f64`) keeps
//! wall-clock durations and simulated durations from being mixed up in the
//! runtime, and lets us give the type a total order (required by the event
//! queue) by rejecting NaN at construction.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or duration of) virtual time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time value from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        assert!(secs >= 0.0, "SimTime cannot be negative: {secs}");
        SimTime(secs)
    }

    /// Creates a time value from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// Creates a time value from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: returns zero instead of a negative duration.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        if self.0 > other.0 {
            SimTime(self.0 - other.0)
        } else {
            SimTime::ZERO
        }
    }

    /// True when this is exactly time zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction forbids NaN, so partial_cmp never fails.
        self.partial_cmp(other).expect("SimTime is never NaN")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        assert!(self.0 >= rhs.0, "SimTime subtraction would be negative");
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3} µs", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimTime::from_micros(250.0).as_millis(), 0.25);
        assert!(SimTime::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_time_is_rejected() {
        SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "cannot be NaN")]
    fn nan_time_is_rejected() {
        SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn arithmetic_behaves_like_seconds() {
        let a = SimTime::from_secs(2.0);
        let b = SimTime::from_secs(0.5);
        assert_eq!((a + b).as_secs(), 2.5);
        assert_eq!((a - b).as_secs(), 1.5);
        assert_eq!((a * 3.0).as_secs(), 6.0);
        assert_eq!((a / 4.0).as_secs(), 0.5);
    }

    #[test]
    fn saturating_sub_never_goes_negative() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_secs(), 2.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut times = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        times.sort();
        assert_eq!(times[0].as_secs(), 1.0);
        assert_eq!(times[2].as_secs(), 3.0);
        assert_eq!(
            SimTime::from_secs(1.0)
                .max(SimTime::from_secs(2.0))
                .as_secs(),
            2.0
        );
        assert_eq!(
            SimTime::from_secs(1.0)
                .min(SimTime::from_secs(2.0))
                .as_secs(),
            1.0
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "2.000 s");
        assert_eq!(format!("{}", SimTime::from_millis(5.0)), "5.000 ms");
        assert_eq!(format!("{}", SimTime::from_micros(7.0)), "7.000 µs");
    }
}
