//! Grid topologies.
//!
//! A [`GridTopology`] is the static description of a simulated platform: the
//! hosts (with their speeds and sites), the intra-site links, and the
//! inter-site links. Three presets reproduce the paper's test platforms:
//!
//! * [`GridTopology::ethernet_3_sites`] — heterogeneous machines scattered on
//!   three distant sites connected by 10 Mb Ethernet (first series of tests);
//! * [`GridTopology::ethernet_adsl_4_sites`] — four sites, one of them behind
//!   an asymmetric ADSL line (second series, the "difficult case");
//! * [`GridTopology::local_hetero_cluster`] — the local 100 Mb cluster with
//!   Duron 800 / P4 1.7 / P4 2.4 machines interleaved (Figure 3).

use crate::host::{Host, HostId, MachineKind, SiteId};
use crate::link::{Link, LinkDirection};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A static description of a simulated computing grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridTopology {
    name: String,
    hosts: Vec<Host>,
    /// Intra-site link used between two hosts of the same site.
    intra_site: Vec<Link>,
    /// Inter-site links, keyed by an unordered pair of site ids
    /// `(min, max)`. The link's Forward direction is `min → max`.
    inter_site: BTreeMap<(usize, usize), Link>,
}

impl GridTopology {
    /// Starts building a custom topology.
    pub fn builder(name: impl Into<String>) -> GridTopologyBuilder {
        GridTopologyBuilder {
            name: name.into(),
            hosts: Vec::new(),
            intra_site: Vec::new(),
            inter_site: BTreeMap::new(),
            default_inter_site: Link::ethernet_10mb_wan(),
        }
    }

    /// Human-readable name of the platform.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.intra_site.len()
    }

    /// The host table.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// A single host.
    ///
    /// # Panics
    /// Panics when the id is out of range.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0]
    }

    /// The hosts belonging to a site.
    pub fn hosts_of_site(&self, site: SiteId) -> Vec<HostId> {
        self.hosts
            .iter()
            .filter(|h| h.site == site)
            .map(|h| h.id)
            .collect()
    }

    /// The link and direction a message from `src` to `dst` travels over.
    ///
    /// Messages within a site use the site's intra-site link; messages between
    /// sites use the inter-site link registered for that pair of sites (the
    /// `Forward` direction goes from the lower-numbered site to the higher
    /// one).
    ///
    /// # Panics
    /// Panics if `src == dst` (a host does not message itself through the
    /// network) or if either id is out of range.
    pub fn route(&self, src: HostId, dst: HostId) -> (Link, LinkDirection) {
        assert_ne!(src, dst, "route: src and dst must differ");
        let s = self.host(src).site;
        let d = self.host(dst).site;
        if s == d {
            (self.intra_site[s.0], LinkDirection::Forward)
        } else {
            let key = (s.0.min(d.0), s.0.max(d.0));
            let link = *self
                .inter_site
                .get(&key)
                .unwrap_or_else(|| panic!("no inter-site link between {:?} and {:?}", s, d));
            let dir = if s.0 < d.0 {
                LinkDirection::Forward
            } else {
                LinkDirection::Reverse
            };
            (link, dir)
        }
    }

    /// Relative speed of every host, in host order — handy for weighted data
    /// decompositions.
    pub fn speed_vector(&self) -> Vec<f64> {
        self.hosts.iter().map(|h| h.speed).collect()
    }

    /// Total number of CPU cores across all hosts.
    pub fn total_cores(&self) -> usize {
        self.hosts.iter().map(|h| h.cores).sum()
    }

    /// Returns the same platform with every host given `cores` cores
    /// (builder style) — useful for modelling SMP variants of the presets.
    ///
    /// # Panics
    /// Panics if `cores` is zero.
    pub fn with_uniform_cores(mut self, cores: usize) -> Self {
        assert!(cores > 0, "a host needs at least one core");
        for host in self.hosts.iter_mut() {
            host.cores = cores;
        }
        self
    }

    /// Mean host speed (1.0 = every machine is a reference machine).
    pub fn mean_speed(&self) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        self.speed_vector().iter().sum::<f64>() / self.hosts.len() as f64
    }

    /// The slowest host of the platform.
    pub fn slowest_host(&self) -> Option<HostId> {
        self.hosts
            .iter()
            .min_by(|a, b| a.speed.partial_cmp(&b.speed).unwrap())
            .map(|h| h.id)
    }

    // ------------------------------------------------------------------
    // Paper presets
    // ------------------------------------------------------------------

    /// First test platform (Section 5.1): `n` heterogeneous machines scattered
    /// over three distant sites connected by 10 Mb Ethernet links.
    ///
    /// Machines are assigned to sites round-robin and their kinds are
    /// interleaved, mirroring the paper's description of a "heterogeneous
    /// cluster of machines scattered on three distinct sites".
    pub fn ethernet_3_sites(n: usize) -> Self {
        Self::multi_site_grid("ethernet-3-sites", n, 3, Link::ethernet_10mb_wan(), &[])
    }

    /// Second test platform: four sites, with the links towards the fourth
    /// site going through an asymmetric consumer ADSL line (512 kb/s down,
    /// 128 kb/s up). This is the paper's "difficult (and probably the most
    /// common) case of grid environment".
    pub fn ethernet_adsl_4_sites(n: usize) -> Self {
        // Links that involve site 3 are ADSL; the rest stay on 10 Mb Ethernet.
        let adsl_pairs: Vec<(usize, usize)> = vec![(0, 3), (1, 3), (2, 3)];
        Self::multi_site_grid(
            "ethernet-adsl-4-sites",
            n,
            4,
            Link::ethernet_10mb_wan(),
            &adsl_pairs,
        )
    }

    /// Third test platform (Figure 3): a single-site local cluster on 100 Mb
    /// Ethernet whose machines alternate between Duron 800 MHz,
    /// Pentium IV 1.7 GHz and Pentium IV 2.4 GHz ("the types of machines are
    /// interleaved in the logical organization of the network").
    pub fn local_hetero_cluster(n: usize) -> Self {
        let mut b = Self::builder("local-hetero-cluster");
        let site = b.add_site(Link::ethernet_100mb_lan());
        for i in 0..n {
            b.add_host(
                format!("local-node{i:02}"),
                site,
                MachineKind::interleaved(i),
            );
        }
        b.build()
    }

    /// A homogeneous single-site cluster of reference machines on a fast LAN;
    /// not one of the paper's platforms but useful as a control in tests and
    /// ablations.
    pub fn homogeneous_cluster(n: usize) -> Self {
        let mut b = Self::builder("homogeneous-cluster");
        let site = b.add_site(Link::ethernet_100mb_lan());
        for i in 0..n {
            b.add_host(format!("node{i:02}"), site, MachineKind::PentiumIv2_4);
        }
        b.build()
    }

    fn multi_site_grid(
        name: &str,
        n: usize,
        sites: usize,
        default_link: Link,
        adsl_pairs: &[(usize, usize)],
    ) -> Self {
        assert!(sites > 0);
        let mut b = Self::builder(name);
        b.default_inter_site = default_link;
        let mut site_ids = Vec::with_capacity(sites);
        for _ in 0..sites {
            site_ids.push(b.add_site(Link::ethernet_10mb_lan()));
        }
        for &(a, c) in adsl_pairs {
            b.set_inter_site_link(site_ids[a], site_ids[c], Link::adsl());
        }
        for i in 0..n {
            let site = site_ids[i % sites];
            b.add_host(
                format!("site{}-node{:02}", i % sites, i / sites),
                site,
                MachineKind::interleaved(i),
            );
        }
        b.build()
    }
}

/// Builder for [`GridTopology`].
#[derive(Debug, Clone)]
pub struct GridTopologyBuilder {
    name: String,
    hosts: Vec<Host>,
    intra_site: Vec<Link>,
    inter_site: BTreeMap<(usize, usize), Link>,
    default_inter_site: Link,
}

impl GridTopologyBuilder {
    /// Adds a site with the given intra-site link and returns its id.
    pub fn add_site(&mut self, intra_link: Link) -> SiteId {
        let id = SiteId(self.intra_site.len());
        self.intra_site.push(intra_link);
        id
    }

    /// Adds a host of the given machine kind to a site and returns its id.
    ///
    /// # Panics
    /// Panics if the site has not been added yet.
    pub fn add_host(&mut self, name: impl Into<String>, site: SiteId, kind: MachineKind) -> HostId {
        assert!(site.0 < self.intra_site.len(), "unknown site {site:?}");
        let id = HostId(self.hosts.len());
        self.hosts.push(Host::new(id, name, site, kind));
        id
    }

    /// Adds a host with an explicit relative speed.
    pub fn add_host_with_speed(
        &mut self,
        name: impl Into<String>,
        site: SiteId,
        speed: f64,
    ) -> HostId {
        assert!(site.0 < self.intra_site.len(), "unknown site {site:?}");
        let id = HostId(self.hosts.len());
        self.hosts.push(Host::with_speed(id, name, site, speed));
        id
    }

    /// Sets the link between two sites. The link's Forward direction goes from
    /// the lower-numbered site to the higher-numbered one.
    pub fn set_inter_site_link(&mut self, a: SiteId, b: SiteId, link: Link) {
        assert_ne!(a, b, "inter-site link requires two distinct sites");
        self.inter_site.insert((a.0.min(b.0), a.0.max(b.0)), link);
    }

    /// Sets the default link used for site pairs without an explicit link.
    pub fn default_inter_site_link(&mut self, link: Link) {
        self.default_inter_site = link;
    }

    /// Finalises the topology, filling in default inter-site links for every
    /// pair of sites that was not given an explicit one.
    pub fn build(mut self) -> GridTopology {
        let sites = self.intra_site.len();
        for a in 0..sites {
            for b in (a + 1)..sites {
                self.inter_site
                    .entry((a, b))
                    .or_insert(self.default_inter_site);
            }
        }
        GridTopology {
            name: self.name,
            hosts: self.hosts,
            intra_site: self.intra_site,
            inter_site: self.inter_site,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ethernet_3_sites_distributes_hosts_round_robin() {
        let g = GridTopology::ethernet_3_sites(9);
        assert_eq!(g.num_hosts(), 9);
        assert_eq!(g.num_sites(), 3);
        for s in 0..3 {
            assert_eq!(g.hosts_of_site(SiteId(s)).len(), 3);
        }
    }

    #[test]
    fn ethernet_3_sites_is_heterogeneous() {
        let g = GridTopology::ethernet_3_sites(6);
        let speeds = g.speed_vector();
        assert!(speeds.iter().any(|s| *s < 1.0));
        assert!(speeds.iter().any(|s| (*s - 1.0).abs() < 1e-12));
    }

    #[test]
    fn adsl_grid_routes_through_asymmetric_link() {
        let g = GridTopology::ethernet_adsl_4_sites(8);
        assert_eq!(g.num_sites(), 4);
        // host on site 0 (host 0) to host on site 3 (host 3)
        let (link, dir) = g.route(HostId(0), HostId(3));
        assert!(link.is_asymmetric());
        assert_eq!(dir, LinkDirection::Forward);
        // reverse direction
        let (link_back, dir_back) = g.route(HostId(3), HostId(0));
        assert!(link_back.is_asymmetric());
        assert_eq!(dir_back, LinkDirection::Reverse);
        // site 0 <-> site 1 stays on plain Ethernet
        let (eth, _) = g.route(HostId(0), HostId(1));
        assert!(!eth.is_asymmetric());
    }

    #[test]
    fn local_cluster_interleaves_machine_kinds() {
        let g = GridTopology::local_hetero_cluster(6);
        assert_eq!(g.num_sites(), 1);
        assert_eq!(g.host(HostId(0)).kind, MachineKind::Duron800);
        assert_eq!(g.host(HostId(1)).kind, MachineKind::PentiumIv1_7);
        assert_eq!(g.host(HostId(2)).kind, MachineKind::PentiumIv2_4);
        assert_eq!(g.host(HostId(3)).kind, MachineKind::Duron800);
    }

    #[test]
    fn intra_site_route_uses_lan_link() {
        let g = GridTopology::ethernet_3_sites(6);
        // hosts 0 and 3 are both on site 0
        let (link, _) = g.route(HostId(0), HostId(3));
        assert_eq!(link, Link::ethernet_10mb_lan());
    }

    #[test]
    fn slowest_host_is_a_duron() {
        let g = GridTopology::local_hetero_cluster(7);
        let slow = g.slowest_host().unwrap();
        assert_eq!(g.host(slow).kind, MachineKind::Duron800);
    }

    #[test]
    fn homogeneous_cluster_has_uniform_speed() {
        let g = GridTopology::homogeneous_cluster(5);
        assert!(g.speed_vector().iter().all(|s| (*s - 1.0).abs() < 1e-12));
        assert!((g.mean_speed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn presets_are_single_core_until_overridden() {
        let g = GridTopology::local_hetero_cluster(5);
        assert_eq!(g.total_cores(), 5);
        let smp = g.with_uniform_cores(4);
        assert_eq!(smp.total_cores(), 20);
        assert!(smp.hosts().iter().all(|h| h.cores == 4));
    }

    #[test]
    #[should_panic(expected = "src and dst must differ")]
    fn routing_to_self_is_rejected() {
        let g = GridTopology::homogeneous_cluster(2);
        g.route(HostId(0), HostId(0));
    }

    #[test]
    fn builder_fills_missing_inter_site_links_with_default() {
        let mut b = GridTopology::builder("custom");
        let s0 = b.add_site(Link::ethernet_100mb_lan());
        let s1 = b.add_site(Link::ethernet_100mb_lan());
        let h0 = b.add_host("a", s0, MachineKind::PentiumIv2_4);
        let h1 = b.add_host("b", s1, MachineKind::PentiumIv2_4);
        let g = b.build();
        let (link, _) = g.route(h0, h1);
        assert_eq!(link, Link::ethernet_10mb_wan());
    }

    proptest! {
        /// Every preset topology can route between every ordered pair of
        /// distinct hosts.
        #[test]
        fn prop_presets_route_between_all_pairs(n in 2usize..20) {
            for g in [
                GridTopology::ethernet_3_sites(n),
                GridTopology::ethernet_adsl_4_sites(n),
                GridTopology::local_hetero_cluster(n),
            ] {
                for a in 0..n {
                    for b in 0..n {
                        if a != b {
                            let (link, dir) = g.route(HostId(a), HostId(b));
                            prop_assert!(link.bandwidth(dir) > 0.0);
                        }
                    }
                }
            }
        }

        /// Host speeds are always positive and at most the reference speed.
        #[test]
        fn prop_speeds_are_normalised(n in 1usize..30) {
            let g = GridTopology::local_hetero_cluster(n);
            for s in g.speed_vector() {
                prop_assert!(s > 0.0 && s <= 1.0);
            }
        }
    }
}
