//! The discrete-event queue.
//!
//! [`EventQueue`] is a priority queue of timestamped events with FIFO
//! tie-breaking: two events scheduled for the same virtual instant are
//! delivered in the order they were scheduled, which keeps simulations
//! deterministic regardless of the payload type.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A timestamped event carrying an arbitrary payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Scheduling sequence number; used to break ties deterministically.
    pub seq: u64,
    /// The payload.
    pub payload: T,
}

/// Internal heap key: earliest time first, then lowest sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key(SimTime, u64);

/// A deterministic priority queue of events.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Key, usize)>>,
    slots: Vec<Option<Event<T>>>,
    next_seq: u64,
    len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Schedules a payload at an absolute virtual time.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.slots.len();
        self.slots.push(Some(Event { time, seq, payload }));
        self.heap.push(Reverse((Key(time, seq), slot)));
        self.len += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let Reverse((_, slot)) = self.heap.pop()?;
        let ev = self.slots[slot]
            .take()
            .expect("event slot already consumed");
        self.len -= 1;
        if self.is_empty() {
            // Reclaim slot storage between bursts.
            self.slots.clear();
        }
        Some(ev)
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((Key(t, _), _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_preserve_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest_event() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(5.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(4.0), 4);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        q.schedule(SimTime::from_secs(3.0), 3);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 4);
    }

    #[test]
    fn sequence_numbers_increase_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        assert!(a.seq < b.seq);
    }
}
