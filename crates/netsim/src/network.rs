//! The network transfer-time model.
//!
//! [`Network`] turns a static [`GridTopology`] into a *stateful* model that
//! answers one question: *if host `a` starts sending `n` bytes to host `b` at
//! virtual time `t`, when does the message arrive?*
//!
//! The model is latency + serialisation with FIFO contention on two shared
//! resources along the path:
//!
//! 1. the sender's network interface (all messages leaving a host are
//!    serialised one after the other at the intra-site link speed);
//! 2. the directional inter-site pipe between the two sites (when the message
//!    crosses sites), whose bandwidth can be asymmetric (ADSL).
//!
//! Those two queues capture the behaviours the paper attributes to its
//! platforms: a slow shared ADSL uplink delays every subsequent message, and a
//! host emitting to many destinations (the all-to-all sparse-linear scheme)
//! serialises its sends.

use crate::host::HostId;
use crate::time::SimTime;
use crate::topology::GridTopology;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Statistics accumulated by a [`Network`].
///
/// All three counters are deterministic functions of the simulated run, so
/// the benchmark harness serialises them into its gateable records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of messages transferred.
    pub messages: u64,
    /// Total payload bytes transferred.
    pub bytes: u64,
    /// Total time spent queueing behind other transfers (seconds).
    pub queueing_secs: f64,
}

/// A stateful transfer-time model over a [`GridTopology`].
#[derive(Debug, Clone)]
pub struct Network {
    topology: GridTopology,
    /// Time at which each host's outgoing interface becomes free.
    nic_free: Vec<SimTime>,
    /// Time at which each directional inter-site pipe becomes free,
    /// keyed by (src_site, dst_site).
    pipe_free: BTreeMap<(usize, usize), SimTime>,
    stats: NetworkStats,
}

impl Network {
    /// Wraps a topology into a fresh (idle) network model.
    pub fn new(topology: GridTopology) -> Self {
        let n = topology.num_hosts();
        Self {
            topology,
            nic_free: vec![SimTime::ZERO; n],
            pipe_free: BTreeMap::new(),
            stats: NetworkStats::default(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &GridTopology {
        &self.topology
    }

    /// Accumulated transfer statistics.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Resets the dynamic state (link availability and statistics) while
    /// keeping the topology.
    pub fn reset(&mut self) {
        for t in self.nic_free.iter_mut() {
            *t = SimTime::ZERO;
        }
        self.pipe_free.clear();
        self.stats = NetworkStats::default();
    }

    /// Models the transfer of `bytes` payload bytes from `src` to `dst`
    /// starting (i.e. handed to the environment's send path) at `start`,
    /// with `overhead_bytes` of protocol framing added by the programming
    /// environment.
    ///
    /// Returns the arrival time at `dst` and updates the contention state.
    ///
    /// # Panics
    /// Panics if `src == dst`.
    pub fn transfer(
        &mut self,
        src: HostId,
        dst: HostId,
        bytes: u64,
        overhead_bytes: u64,
        start: SimTime,
    ) -> SimTime {
        assert_ne!(src, dst, "transfer: src and dst must differ");
        let total_bytes = bytes + overhead_bytes;
        let (link, dir) = self.topology.route(src, dst);
        let src_site = self.topology.host(src).site;
        let dst_site = self.topology.host(dst).site;

        // 1. Sender NIC: messages leaving `src` are serialised at the speed of
        //    the first link on the path.
        let nic_ready = self.nic_free[src.0].max(start);
        let nic_queue = nic_ready.saturating_sub(start);
        let nic_tx = link.transmission_time(total_bytes, dir);
        let nic_done = nic_ready + nic_tx;
        self.nic_free[src.0] = nic_done;

        // 2. Inter-site pipe (only when crossing sites): the directional pipe
        //    is shared by every transfer between the two sites.
        let (pipe_queue, pipe_done) = if src_site != dst_site {
            let key = (src_site.0, dst_site.0);
            let pipe_free = self.pipe_free.get(&key).copied().unwrap_or(SimTime::ZERO);
            let ready = pipe_free.max(nic_done);
            let queue = ready.saturating_sub(nic_done);
            let done = ready + link.transmission_time(total_bytes, dir);
            self.pipe_free.insert(key, done);
            (queue, done)
        } else {
            (SimTime::ZERO, nic_done)
        };

        self.stats.messages += 1;
        self.stats.bytes += total_bytes;
        self.stats.queueing_secs += nic_queue.as_secs() + pipe_queue.as_secs();

        // 3. Propagation latency is added once, after the last store-and-forward hop.
        pipe_done + link.latency
    }

    /// Unloaded (contention-free) transfer time between two hosts: what a
    /// single message would take on an otherwise idle network. Does not mutate
    /// the contention state.
    pub fn unloaded_transfer_time(&self, src: HostId, dst: HostId, bytes: u64) -> SimTime {
        let (link, dir) = self.topology.route(src, dst);
        let src_site = self.topology.host(src).site;
        let dst_site = self.topology.host(dst).site;
        let hops = if src_site == dst_site { 1 } else { 2 };
        link.transmission_time(bytes, dir) * hops as f64 + link.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::GridTopology;
    use proptest::prelude::*;

    #[test]
    fn unloaded_transfer_matches_link_model_on_lan() {
        let g = GridTopology::local_hetero_cluster(4);
        let net = Network::new(g);
        let t = net.unloaded_transfer_time(HostId(0), HostId(1), 12_500);
        // 12_500 B at 12.5 MB/s = 1 ms, + 0.1 ms latency
        assert!((t.as_secs() - 0.0011).abs() < 1e-9);
    }

    #[test]
    fn first_transfer_on_idle_network_matches_unloaded_time() {
        let g = GridTopology::ethernet_3_sites(6);
        let mut net = Network::new(g);
        let unloaded = net.unloaded_transfer_time(HostId(0), HostId(1), 10_000);
        let arrival = net.transfer(HostId(0), HostId(1), 10_000, 0, SimTime::ZERO);
        assert_eq!(arrival, unloaded);
    }

    #[test]
    fn back_to_back_sends_queue_on_the_sender_nic() {
        let g = GridTopology::local_hetero_cluster(4);
        let mut net = Network::new(g);
        let a1 = net.transfer(HostId(0), HostId(1), 1_000_000, 0, SimTime::ZERO);
        let a2 = net.transfer(HostId(0), HostId(2), 1_000_000, 0, SimTime::ZERO);
        assert!(a2 > a1, "second message must queue behind the first");
        assert!(net.stats().queueing_secs > 0.0);
    }

    #[test]
    fn transfers_from_different_hosts_do_not_queue_on_lan() {
        let g = GridTopology::local_hetero_cluster(4);
        let mut net = Network::new(g);
        let a1 = net.transfer(HostId(0), HostId(1), 1_000_000, 0, SimTime::ZERO);
        let a2 = net.transfer(HostId(2), HostId(3), 1_000_000, 0, SimTime::ZERO);
        assert_eq!(a1, a2, "independent hosts on a switched LAN do not contend");
    }

    #[test]
    fn inter_site_transfers_share_the_pipe() {
        let g = GridTopology::ethernet_3_sites(6);
        let mut net = Network::new(g);
        // hosts 0 and 3 are on site 0; hosts 1 and 4 on site 1
        let a1 = net.transfer(HostId(0), HostId(1), 500_000, 0, SimTime::ZERO);
        let a2 = net.transfer(HostId(3), HostId(4), 500_000, 0, SimTime::ZERO);
        assert!(
            a2 > a1,
            "second inter-site transfer must queue on the shared pipe"
        );
    }

    #[test]
    fn adsl_upload_is_slower_than_download() {
        let g = GridTopology::ethernet_adsl_4_sites(8);
        let mut net = Network::new(g.clone());
        // host 3 is on site 3 (behind ADSL); host 0 on site 0.
        let down = net.transfer(HostId(0), HostId(3), 100_000, 0, SimTime::ZERO);
        net.reset();
        let up = net.transfer(HostId(3), HostId(0), 100_000, 0, SimTime::ZERO);
        assert!(
            up > down,
            "sending towards the well-connected site crosses the slow ADSL uplink"
        );
    }

    #[test]
    fn protocol_overhead_increases_transfer_time() {
        let g = GridTopology::ethernet_3_sites(6);
        let mut net = Network::new(g.clone());
        let plain = net.transfer(HostId(0), HostId(1), 10_000, 0, SimTime::ZERO);
        net.reset();
        let framed = net.transfer(HostId(0), HostId(1), 10_000, 5_000, SimTime::ZERO);
        assert!(framed > plain);
    }

    #[test]
    fn reset_clears_contention_and_stats() {
        let g = GridTopology::local_hetero_cluster(3);
        let mut net = Network::new(g);
        let first = net.transfer(HostId(0), HostId(1), 1_000_000, 0, SimTime::ZERO);
        net.reset();
        assert_eq!(net.stats(), NetworkStats::default());
        let again = net.transfer(HostId(0), HostId(1), 1_000_000, 0, SimTime::ZERO);
        assert_eq!(first, again);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let g = GridTopology::local_hetero_cluster(3);
        let mut net = Network::new(g);
        net.transfer(HostId(0), HostId(1), 100, 20, SimTime::ZERO);
        net.transfer(HostId(1), HostId(2), 200, 30, SimTime::ZERO);
        let s = net.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 350);
    }

    proptest! {
        /// Arrival times never precede the send time plus the link latency,
        /// and later sends from the same host never arrive before earlier
        /// ones sent to the same destination.
        #[test]
        fn prop_arrivals_are_causal_and_fifo(
            sizes in proptest::collection::vec(1u64..200_000, 1..20),
            start_ms in 0.0f64..100.0,
        ) {
            let g = GridTopology::ethernet_3_sites(4);
            let mut net = Network::new(g);
            let start = SimTime::from_millis(start_ms);
            let mut last_arrival = SimTime::ZERO;
            for &s in &sizes {
                let arrival = net.transfer(HostId(0), HostId(1), s, 0, start);
                prop_assert!(arrival >= start);
                prop_assert!(arrival >= last_arrival);
                last_arrival = arrival;
            }
        }

        /// The simulator is deterministic: replaying the same transfer
        /// sequence gives identical arrival times.
        #[test]
        fn prop_transfers_are_deterministic(
            sizes in proptest::collection::vec(1u64..100_000, 1..15),
        ) {
            let run = || {
                let g = GridTopology::ethernet_adsl_4_sites(6);
                let mut net = Network::new(g);
                sizes
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        let src = HostId(i % 6);
                        let dst = HostId((i + 1) % 6);
                        net.transfer(src, dst, s, 64, SimTime::from_millis(i as f64))
                            .as_secs()
                    })
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(run(), run());
        }
    }
}
