//! `aiac-netsim` — a deterministic discrete-event simulator of heterogeneous
//! computing grids.
//!
//! The AIAC paper evaluates its algorithms on three physical platforms none
//! of which exist anymore (and none of which fit on a single development
//! machine): a 3-site grid over 10 Mb Ethernet, a 4-site grid with consumer
//! ADSL links, and a local heterogeneous cluster of Duron 800 MHz /
//! Pentium IV 1.7 GHz / Pentium IV 2.4 GHz boxes on 100 Mb Ethernet. This
//! crate simulates those platforms:
//!
//! * [`host`] — machines with relative CPU speeds, grouped into sites;
//! * [`link`] — point-to-point links with latency and (possibly asymmetric)
//!   bandwidth, e.g. the 512 kb/s down / 128 kb/s up ADSL line of the paper;
//! * [`topology`] — ready-made grid presets matching the paper's testbeds
//!   plus a builder for custom grids;
//! * [`network`] — the transfer-time model (latency + size/bandwidth with
//!   per-link FIFO contention);
//! * [`sched`] — per-host CPU scheduling: hosts have finitely many cores, so
//!   co-located compute phases and receptions queue FIFO instead of all
//!   running at full speed;
//! * [`event`] / [`sim`] — a classic discrete-event kernel (virtual clock,
//!   ordered event queue) that the simulated AIAC runtime drives;
//! * [`trace`] — per-processor activity traces used to regenerate the
//!   execution-flow pictures of Figures 1 and 2.
//!
//! Everything is deterministic: two runs with the same topology, workload and
//! seed produce bit-identical results, which the benchmark harness relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod host;
pub mod link;
pub mod network;
pub mod sched;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;

pub use event::{Event, EventQueue};
pub use host::{Host, HostId, SiteId};
pub use link::{Link, LinkDirection};
pub use network::Network;
pub use sched::{CpuScheduler, HostLoad, HostScheduler, Slot};
pub use sim::Simulator;
pub use time::SimTime;
pub use topology::GridTopology;
pub use trace::{Activity, ExecutionTrace, TraceEntry};
