//! Network links.
//!
//! A [`Link`] models a point-to-point or site-to-site connection with a fixed
//! propagation latency and a (possibly asymmetric) bandwidth. The presets
//! correspond to the paper's three platforms: 10 Mb/s Ethernet between distant
//! sites, consumer ADSL (512 kb/s down, 128 kb/s up), and the 100 Mb/s
//! Ethernet of the local cluster.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Direction of a transfer over an asymmetric link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkDirection {
    /// From the link's designated "A" side towards "B" (e.g. ADSL download at
    /// the B side).
    Forward,
    /// From "B" back towards "A" (e.g. ADSL upload).
    Reverse,
}

/// A network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One-way propagation latency.
    pub latency: SimTime,
    /// Bandwidth in bytes per second in the [`LinkDirection::Forward`]
    /// direction.
    pub bandwidth_forward: f64,
    /// Bandwidth in bytes per second in the [`LinkDirection::Reverse`]
    /// direction.
    pub bandwidth_reverse: f64,
}

/// Converts a link speed expressed in bits per second to bytes per second.
fn bits_per_sec(bits: f64) -> f64 {
    bits / 8.0
}

impl Link {
    /// A symmetric link with the given latency and bandwidth (bytes/s).
    pub fn symmetric(latency: SimTime, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Self {
            latency,
            bandwidth_forward: bandwidth,
            bandwidth_reverse: bandwidth,
        }
    }

    /// An asymmetric link (bytes/s in each direction).
    pub fn asymmetric(latency: SimTime, forward: f64, reverse: f64) -> Self {
        assert!(forward > 0.0 && reverse > 0.0, "bandwidth must be positive");
        Self {
            latency,
            bandwidth_forward: forward,
            bandwidth_reverse: reverse,
        }
    }

    /// 10 Mb/s Ethernet with wide-area latency — the inter-site links of the
    /// paper's first grid configuration.
    pub fn ethernet_10mb_wan() -> Self {
        Self::symmetric(SimTime::from_millis(10.0), bits_per_sec(10e6))
    }

    /// 10 Mb/s Ethernet with LAN latency.
    pub fn ethernet_10mb_lan() -> Self {
        Self::symmetric(SimTime::from_micros(500.0), bits_per_sec(10e6))
    }

    /// 100 Mb/s Ethernet with LAN latency — the local heterogeneous cluster of
    /// Figure 3.
    pub fn ethernet_100mb_lan() -> Self {
        Self::symmetric(SimTime::from_micros(100.0), bits_per_sec(100e6))
    }

    /// The consumer ADSL line of the paper's second grid configuration:
    /// 512 kb/s in reception (forward) and 128 kb/s in emission (reverse),
    /// with typical ADSL latency.
    pub fn adsl() -> Self {
        Self::asymmetric(
            SimTime::from_millis(30.0),
            bits_per_sec(512e3),
            bits_per_sec(128e3),
        )
    }

    /// An essentially-infinite-speed loopback used for co-located processes.
    pub fn loopback() -> Self {
        Self::symmetric(SimTime::from_micros(5.0), 10e9)
    }

    /// Bandwidth in the given direction (bytes per second).
    pub fn bandwidth(&self, dir: LinkDirection) -> f64 {
        match dir {
            LinkDirection::Forward => self.bandwidth_forward,
            LinkDirection::Reverse => self.bandwidth_reverse,
        }
    }

    /// Pure transmission (serialisation) time of a message of `bytes` bytes in
    /// the given direction, excluding latency and queueing.
    pub fn transmission_time(&self, bytes: u64, dir: LinkDirection) -> SimTime {
        SimTime::from_secs(bytes as f64 / self.bandwidth(dir))
    }

    /// Total unloaded transfer time (latency + transmission) of a message.
    pub fn transfer_time(&self, bytes: u64, dir: LinkDirection) -> SimTime {
        self.latency + self.transmission_time(bytes, dir)
    }

    /// True when the two directions have different bandwidths.
    pub fn is_asymmetric(&self) -> bool {
        self.bandwidth_forward != self.bandwidth_reverse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_presets_have_expected_bandwidth() {
        assert_eq!(Link::ethernet_10mb_wan().bandwidth_forward, 10e6 / 8.0);
        assert_eq!(Link::ethernet_100mb_lan().bandwidth_forward, 100e6 / 8.0);
        assert!(!Link::ethernet_10mb_wan().is_asymmetric());
    }

    #[test]
    fn adsl_is_asymmetric_and_slower_upstream() {
        let adsl = Link::adsl();
        assert!(adsl.is_asymmetric());
        assert!(adsl.bandwidth(LinkDirection::Reverse) < adsl.bandwidth(LinkDirection::Forward));
        assert_eq!(adsl.bandwidth(LinkDirection::Forward), 512e3 / 8.0);
        assert_eq!(adsl.bandwidth(LinkDirection::Reverse), 128e3 / 8.0);
    }

    #[test]
    fn transfer_time_is_latency_plus_serialisation() {
        let link = Link::symmetric(SimTime::from_millis(10.0), 1000.0);
        // 500 bytes at 1000 B/s = 0.5 s + 10 ms latency
        let t = link.transfer_time(500, LinkDirection::Forward);
        assert!((t.as_secs() - 0.51).abs() < 1e-12);
    }

    #[test]
    fn bigger_messages_take_longer() {
        let link = Link::ethernet_10mb_wan();
        assert!(
            link.transfer_time(1_000_000, LinkDirection::Forward)
                > link.transfer_time(1_000, LinkDirection::Forward)
        );
    }

    #[test]
    fn loopback_is_fastest() {
        let msg = 100_000u64;
        assert!(
            Link::loopback().transfer_time(msg, LinkDirection::Forward)
                < Link::ethernet_100mb_lan().transfer_time(msg, LinkDirection::Forward)
        );
        assert!(
            Link::ethernet_100mb_lan().transfer_time(msg, LinkDirection::Forward)
                < Link::ethernet_10mb_wan().transfer_time(msg, LinkDirection::Forward)
        );
        assert!(
            Link::ethernet_10mb_wan().transfer_time(msg, LinkDirection::Forward)
                < Link::adsl().transfer_time(msg, LinkDirection::Forward)
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_is_rejected() {
        Link::symmetric(SimTime::ZERO, 0.0);
    }
}
