//! Per-processor execution traces.
//!
//! Figures 1 and 2 of the paper show the execution flow of a SISC and an AIAC
//! algorithm on two processors: grey compute blocks separated (or not) by
//! idle time, with arrows for the asynchronous messages. [`ExecutionTrace`]
//! records exactly that information from a simulated run so the benchmark
//! harness can regenerate the figures as ASCII timelines and report idle-time
//! fractions.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// What a processor is doing during a trace interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activity {
    /// Executing an iteration (the grey blocks of the figures).
    Compute,
    /// Waiting for data or for a barrier (the white gaps of Figure 1).
    Idle,
    /// Packing / emitting a message.
    Send,
    /// Receiving / unpacking a message.
    Receive,
}

impl Activity {
    /// The single character used for this activity in the ASCII timeline.
    pub fn glyph(self) -> char {
        match self {
            Activity::Compute => '#',
            Activity::Idle => '.',
            Activity::Send => '>',
            Activity::Receive => '<',
        }
    }
}

/// One interval of a processor's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The processor (block) index.
    pub proc: usize,
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval.
    pub end: SimTime,
    /// Activity during the interval.
    pub activity: Activity,
}

/// A collection of trace intervals for a whole run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExecutionTrace {
    entries: Vec<TraceEntry>,
    num_procs: usize,
}

impl ExecutionTrace {
    /// Creates an empty trace for `num_procs` processors.
    pub fn new(num_procs: usize) -> Self {
        Self {
            entries: Vec::new(),
            num_procs,
        }
    }

    /// Number of processors covered by the trace.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Records an interval.
    ///
    /// # Panics
    /// Panics if the processor index is out of range or the interval is
    /// reversed.
    pub fn record(&mut self, proc: usize, start: SimTime, end: SimTime, activity: Activity) {
        assert!(proc < self.num_procs, "trace: processor out of range");
        assert!(end >= start, "trace: reversed interval");
        if end > start {
            self.entries.push(TraceEntry {
                proc,
                start,
                end,
                activity,
            });
        }
    }

    /// All recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// End time of the last interval (total traced duration).
    pub fn span(&self) -> SimTime {
        self.entries
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total time processor `proc` spent in a given activity.
    pub fn time_in(&self, proc: usize, activity: Activity) -> SimTime {
        let total: f64 = self
            .entries
            .iter()
            .filter(|e| e.proc == proc && e.activity == activity)
            .map(|e| (e.end - e.start).as_secs())
            .sum();
        SimTime::from_secs(total)
    }

    /// Fraction of the traced span processor `proc` spent computing.
    pub fn busy_fraction(&self, proc: usize) -> f64 {
        let span = self.span().as_secs();
        if span == 0.0 {
            return 0.0;
        }
        self.time_in(proc, Activity::Compute).as_secs() / span
    }

    /// Fraction of the traced span processor `proc` spent idle.
    pub fn idle_fraction(&self, proc: usize) -> f64 {
        let span = self.span().as_secs();
        if span == 0.0 {
            return 0.0;
        }
        self.time_in(proc, Activity::Idle).as_secs() / span
    }

    /// Renders the trace as an ASCII timeline of `width` columns per
    /// processor, in the spirit of Figures 1 and 2 of the paper
    /// (`#` = compute, `.` = idle, `>` = send, `<` = receive).
    pub fn gantt_ascii(&self, width: usize) -> String {
        assert!(width > 0, "gantt width must be positive");
        let span = self.span().as_secs();
        let mut out = String::new();
        for p in 0..self.num_procs {
            let mut row = vec!['.'; width];
            if span > 0.0 {
                for e in self.entries.iter().filter(|e| e.proc == p) {
                    let a = ((e.start.as_secs() / span) * width as f64).floor() as usize;
                    let b = ((e.end.as_secs() / span) * width as f64).ceil() as usize;
                    for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                        // Compute wins over send/receive wins over idle when
                        // intervals share a cell at this resolution.
                        let g = e.activity.glyph();
                        if *cell == '.' || g == '#' || (*cell != '#' && (g == '>' || g == '<')) {
                            *cell = g;
                        }
                    }
                }
            }
            out.push_str(&format!("P{p:<2} |"));
            out.extend(row.iter());
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn record_and_span() {
        let mut tr = ExecutionTrace::new(2);
        tr.record(0, t(0.0), t(1.0), Activity::Compute);
        tr.record(1, t(0.5), t(2.0), Activity::Compute);
        assert_eq!(tr.span(), t(2.0));
        assert_eq!(tr.entries().len(), 2);
    }

    #[test]
    fn zero_length_intervals_are_dropped() {
        let mut tr = ExecutionTrace::new(1);
        tr.record(0, t(1.0), t(1.0), Activity::Idle);
        assert!(tr.entries().is_empty());
    }

    #[test]
    fn time_in_accumulates_per_activity() {
        let mut tr = ExecutionTrace::new(1);
        tr.record(0, t(0.0), t(1.0), Activity::Compute);
        tr.record(0, t(1.0), t(1.5), Activity::Idle);
        tr.record(0, t(1.5), t(3.0), Activity::Compute);
        assert_eq!(tr.time_in(0, Activity::Compute), t(2.5));
        assert_eq!(tr.time_in(0, Activity::Idle), t(0.5));
        assert!((tr.busy_fraction(0) - 2.5 / 3.0).abs() < 1e-12);
        assert!((tr.idle_fraction(0) - 0.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_one_row_per_processor() {
        let mut tr = ExecutionTrace::new(2);
        tr.record(0, t(0.0), t(1.0), Activity::Compute);
        tr.record(1, t(0.0), t(0.5), Activity::Idle);
        tr.record(1, t(0.5), t(1.0), Activity::Compute);
        let g = tr.gantt_ascii(10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[1].contains('#'));
        assert!(lines[1].contains('.'));
    }

    #[test]
    fn empty_trace_has_zero_fractions() {
        let tr = ExecutionTrace::new(1);
        assert_eq!(tr.busy_fraction(0), 0.0);
        assert_eq!(tr.idle_fraction(0), 0.0);
        assert_eq!(tr.span(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "processor out of range")]
    fn recording_unknown_processor_is_rejected() {
        let mut tr = ExecutionTrace::new(1);
        tr.record(1, t(0.0), t(1.0), Activity::Compute);
    }

    #[test]
    #[should_panic(expected = "reversed interval")]
    fn reversed_interval_is_rejected() {
        let mut tr = ExecutionTrace::new(1);
        tr.record(0, t(2.0), t(1.0), Activity::Compute);
    }
}
