//! Block-Jacobi preconditioning.
//!
//! The paper's sparse-linear solver iterates
//! `x_{k+1} = x_k + γ·M⁻¹·(b − A·x_k)` where `M` is the block-diagonal matrix
//! extracted from `A` according to the processor decomposition (Section 4.1).
//! [`BlockJacobi`] pre-factorises every diagonal block with dense LU so the
//! application of `M⁻¹` inside the iteration is a cheap pair of triangular
//! solves per block.

use crate::csr::CsrMatrix;
use crate::decomp::Partition;
use crate::dense::{DenseMatrix, LuFactors};

/// The block-diagonal preconditioner `M⁻¹` induced by a partition of the rows.
pub struct BlockJacobi {
    partition: Partition,
    factors: Vec<LuFactors>,
}

impl BlockJacobi {
    /// Extracts and factorises every diagonal block of `a` according to
    /// `partition`.
    ///
    /// Returns `None` when one of the diagonal blocks is singular.
    ///
    /// # Panics
    /// Panics if `a` is not square or the partition does not cover it.
    pub fn new(a: &CsrMatrix, partition: &Partition) -> Option<Self> {
        assert_eq!(a.nrows(), a.ncols(), "BlockJacobi: matrix must be square");
        assert_eq!(
            a.nrows(),
            partition.len(),
            "BlockJacobi: partition mismatch"
        );
        let mut factors = Vec::with_capacity(partition.parts());
        for (_, range) in partition.iter() {
            let block = a.diagonal_block(range.clone());
            let m = block.nrows();
            let mut dense = DenseMatrix::zeros(m, m);
            for (i, j, v) in block.triplets() {
                dense[(i, j)] = v;
            }
            factors.push(dense.lu()?);
        }
        Some(Self {
            partition: partition.clone(),
            factors,
        })
    }

    /// Point-Jacobi special case: one block per unknown (`M = diag(A)`).
    pub fn point(a: &CsrMatrix) -> Option<Self> {
        Self::new(a, &Partition::balanced(a.nrows(), a.nrows()))
    }

    /// Applies `y = M⁻¹·x` on the full vector.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.partition.len(), "apply: x length mismatch");
        assert_eq!(y.len(), self.partition.len(), "apply: y length mismatch");
        for (b, range) in self.partition.iter() {
            if range.is_empty() {
                continue;
            }
            let local = self.factors[b].solve(&x[range.clone()]);
            y[range].copy_from_slice(&local);
        }
    }

    /// Applies the inverse of block `b` alone: `y_b = M_b⁻¹·x_b` where `x_b`
    /// is a block-local slice. This is what each processor of the AIAC solver
    /// calls on its own residual block.
    pub fn apply_block(&self, block: usize, x_local: &[f64]) -> Vec<f64> {
        assert!(
            block < self.factors.len(),
            "apply_block: block out of range"
        );
        assert_eq!(
            x_local.len(),
            self.partition.size(block),
            "apply_block: local length mismatch"
        );
        if x_local.is_empty() {
            return Vec::new();
        }
        self.factors[block].solve(x_local)
    }

    /// The partition this preconditioner was built for.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of diagonal blocks.
    pub fn blocks(&self) -> usize {
        self.factors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::BandedSpec;
    use crate::norms::max_norm_diff;

    fn tridiag(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, t)
    }

    #[test]
    fn point_jacobi_divides_by_diagonal() {
        let a = tridiag(4);
        let m = BlockJacobi::point(&a).unwrap();
        let mut y = vec![0.0; 4];
        m.apply(&[4.0, 8.0, -4.0, 2.0], &mut y);
        assert_eq!(y, vec![1.0, 2.0, -1.0, 0.5]);
    }

    #[test]
    fn single_block_jacobi_is_a_direct_solve() {
        let a = tridiag(5);
        let p = Partition::balanced(5, 1);
        let m = BlockJacobi::new(&a, &p).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut x = vec![0.0; 5];
        m.apply(&b, &mut x);
        // With one block, M = A, so A·x must equal b.
        let back = a.spmv_alloc(&x);
        assert!(max_norm_diff(&back, &b) < 1e-10);
    }

    #[test]
    fn apply_block_matches_full_apply() {
        let a = BandedSpec::paper(40, 11).generate();
        let p = Partition::balanced(40, 4);
        let m = BlockJacobi::new(&a, &p).unwrap();
        let x: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let mut full = vec![0.0; 40];
        m.apply(&x, &mut full);
        for (b, range) in p.iter() {
            let local = m.apply_block(b, &x[range.clone()]);
            assert!(max_norm_diff(&local, &full[range]) < 1e-14);
        }
    }

    #[test]
    fn singular_block_is_reported() {
        // 2x2 zero block on the diagonal
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]);
        let p = Partition::balanced(2, 2);
        assert!(BlockJacobi::new(&a, &p).is_none());
    }

    #[test]
    fn block_jacobi_iteration_converges_on_dominant_matrix() {
        // x_{k+1} = x_k + M^{-1} (b - A x_k) must converge when A is
        // strictly diagonally dominant.
        let spec = BandedSpec {
            n: 60,
            bandwidth: 4,
            contraction: 0.6,
            seed: 3,
        };
        let a = spec.generate();
        let (x_exact, b) = spec.generate_rhs(&a);
        let p = Partition::balanced(60, 3);
        let m = BlockJacobi::new(&a, &p).unwrap();
        let mut x = vec![0.0; 60];
        for _ in 0..200 {
            let ax = a.spmv_alloc(&x);
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
            let mut corr = vec![0.0; 60];
            m.apply(&r, &mut corr);
            for i in 0..60 {
                x[i] += corr[i];
            }
        }
        assert!(max_norm_diff(&x, &x_exact) < 1e-8);
    }
}
