//! The [`LinearOperator`] abstraction.
//!
//! GMRES and the fixed-point solvers only ever need `y = A·x`, so they are
//! written against this trait rather than a concrete matrix type. Both
//! [`crate::CsrMatrix`] and [`crate::DenseMatrix`] implement it, and the
//! chemical problem implements it for its locally-assembled Jacobian blocks.

/// A square linear operator `A : R^n → R^n`.
pub trait LinearOperator {
    /// Dimension `n` of the operator.
    fn dim(&self) -> usize;

    /// Computes `y = A·x`.
    ///
    /// Implementations may assume `x.len() == y.len() == self.dim()` and
    /// should panic otherwise.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Convenience wrapper allocating the output vector.
    fn apply_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

/// A linear operator defined by a closure; useful in tests and for
/// matrix-free Jacobian-vector products.
pub struct FnOperator<F>
where
    F: Fn(&[f64], &mut [f64]),
{
    dim: usize,
    f: F,
}

impl<F> FnOperator<F>
where
    F: Fn(&[f64], &mut [f64]),
{
    /// Wraps a closure computing `y = A·x` for vectors of length `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        Self { dim, f }
    }
}

impl<F> LinearOperator for FnOperator<F>
where
    F: Fn(&[f64], &mut [f64]),
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim, "FnOperator::apply: x length mismatch");
        assert_eq!(y.len(), self.dim, "FnOperator::apply: y length mismatch");
        (self.f)(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_operator_applies_closure() {
        let op = FnOperator::new(3, |x: &[f64], y: &mut [f64]| {
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi = 2.0 * xi;
            }
        });
        assert_eq!(op.dim(), 3);
        assert_eq!(op.apply_alloc(&[1.0, 2.0, 3.0]), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fn_operator_rejects_wrong_input_length() {
        let op = FnOperator::new(2, |_x: &[f64], _y: &mut [f64]| {});
        let mut y = vec![0.0; 2];
        op.apply(&[1.0], &mut y);
    }
}
