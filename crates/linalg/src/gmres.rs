//! Restarted GMRES.
//!
//! The non-linear chemical benchmark solves the linear system produced by
//! every Newton step with "the iterative method of GMRES" used as a
//! *sequential* solver inside each processor's sub-domain (Section 4.2, the
//! multi-splitting Newton approach). This module implements GMRES(m) with
//! modified Gram–Schmidt Arnoldi and Givens rotations, written against the
//! [`LinearOperator`] trait so it works on CSR blocks, dense Jacobians and
//! matrix-free operators alike.

use crate::norms::l2_norm;
use crate::operator::LinearOperator;
use crate::vector::{axpy, dot};
use serde::{Deserialize, Serialize};

/// Parameters of the restarted GMRES solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmresParams {
    /// Restart length `m` (dimension of the Krylov subspace built before a
    /// restart).
    pub restart: usize,
    /// Relative residual tolerance: convergence is declared when
    /// `||b − A·x||₂ ≤ tol · ||b||₂` (or the absolute residual drops below
    /// `abs_tol` for zero right-hand sides).
    pub tol: f64,
    /// Absolute residual floor used when `||b||₂` is (numerically) zero.
    pub abs_tol: f64,
    /// Maximum number of outer restarts.
    pub max_restarts: usize,
}

impl Default for GmresParams {
    fn default() -> Self {
        Self {
            restart: 30,
            tol: 1e-10,
            abs_tol: 1e-14,
            max_restarts: 200,
        }
    }
}

/// Result of a GMRES solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmresOutcome {
    /// Whether the residual tolerance was reached.
    pub converged: bool,
    /// Number of matrix-vector products performed.
    pub matvecs: usize,
    /// Final (estimated) residual norm `||b − A·x||₂`.
    pub residual: f64,
    /// Number of outer restart cycles used.
    pub restarts: usize,
}

/// Restarted GMRES solver.
#[derive(Debug, Clone)]
pub struct Gmres {
    params: GmresParams,
}

impl Gmres {
    /// Creates a solver with the given parameters.
    pub fn new(params: GmresParams) -> Self {
        assert!(params.restart > 0, "GmresParams: restart must be positive");
        assert!(params.tol > 0.0, "GmresParams: tol must be positive");
        Self { params }
    }

    /// Creates a solver with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(GmresParams::default())
    }

    /// The parameters in use.
    pub fn params(&self) -> &GmresParams {
        &self.params
    }

    /// Solves `A·x = b`, starting from the initial guess already stored in
    /// `x`, updating `x` in place.
    pub fn solve<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        b: &[f64],
        x: &mut [f64],
    ) -> GmresOutcome {
        let n = a.dim();
        assert_eq!(b.len(), n, "gmres: rhs length mismatch");
        assert_eq!(x.len(), n, "gmres: solution length mismatch");
        let m = self.params.restart.min(n.max(1));
        let b_norm = l2_norm(b);
        let target = if b_norm > 0.0 {
            self.params.tol * b_norm
        } else {
            self.params.abs_tol
        };

        let mut matvecs = 0usize;
        let mut residual = f64::INFINITY;
        let mut work = vec![0.0; n];

        for restart in 0..self.params.max_restarts {
            // r = b - A x
            a.apply(x, &mut work);
            matvecs += 1;
            let mut r: Vec<f64> = b.iter().zip(&work).map(|(bi, wi)| bi - wi).collect();
            let beta = l2_norm(&r);
            residual = beta;
            if beta <= target {
                return GmresOutcome {
                    converged: true,
                    matvecs,
                    residual,
                    restarts: restart,
                };
            }
            for ri in r.iter_mut() {
                *ri /= beta;
            }

            // Arnoldi basis (m+1 vectors) and Hessenberg matrix stored by
            // columns: h[j] has length j+2.
            let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
            basis.push(r);
            let mut h_cols: Vec<Vec<f64>> = Vec::with_capacity(m);
            // Givens rotations
            let mut cs = vec![0.0f64; m];
            let mut sn = vec![0.0f64; m];
            let mut g = vec![0.0f64; m + 1];
            g[0] = beta;

            let mut k_used = 0usize;
            for j in 0..m {
                // w = A v_j
                a.apply(&basis[j], &mut work);
                matvecs += 1;
                let mut w = work.clone();
                // modified Gram-Schmidt
                let mut h = vec![0.0; j + 2];
                for (i, v) in basis.iter().enumerate().take(j + 1) {
                    let hij = dot(&w, v);
                    h[i] = hij;
                    axpy(-hij, v, &mut w);
                }
                let w_norm = l2_norm(&w);
                h[j + 1] = w_norm;

                // apply existing rotations to the new column
                for i in 0..j {
                    let temp = cs[i] * h[i] + sn[i] * h[i + 1];
                    h[i + 1] = -sn[i] * h[i] + cs[i] * h[i + 1];
                    h[i] = temp;
                }
                // new rotation annihilating h[j+1]
                let (c, s) = givens(h[j], h[j + 1]);
                cs[j] = c;
                sn[j] = s;
                h[j] = c * h[j] + s * h[j + 1];
                h[j + 1] = 0.0;
                g[j + 1] = -s * g[j];
                g[j] *= c;
                h_cols.push(h);
                k_used = j + 1;

                residual = g[j + 1].abs();
                let breakdown = w_norm < 1e-300;
                if !breakdown {
                    for wi in w.iter_mut() {
                        *wi /= w_norm;
                    }
                    basis.push(w);
                }
                if residual <= target || breakdown {
                    break;
                }
            }

            // back-substitution for y in the k_used x k_used triangular system
            let mut y = vec![0.0; k_used];
            for i in (0..k_used).rev() {
                let mut acc = g[i];
                for (jj, yj) in y.iter().enumerate().take(k_used).skip(i + 1) {
                    acc -= h_cols[jj][i] * yj;
                }
                y[i] = acc / h_cols[i][i];
            }
            // x += V y
            for (i, yi) in y.iter().enumerate() {
                axpy(*yi, &basis[i], x);
            }

            if residual <= target {
                return GmresOutcome {
                    converged: true,
                    matvecs,
                    residual,
                    restarts: restart + 1,
                };
            }
        }

        GmresOutcome {
            converged: residual <= target,
            matvecs,
            residual,
            restarts: self.params.max_restarts,
        }
    }

    /// Convenience wrapper starting from the zero vector.
    pub fn solve_from_zero<A: LinearOperator + ?Sized>(
        &self,
        a: &A,
        b: &[f64],
    ) -> (Vec<f64>, GmresOutcome) {
        let mut x = vec![0.0; a.dim()];
        let outcome = self.solve(a, b, &mut x);
        (x, outcome)
    }
}

/// Computes a Givens rotation `(c, s)` such that
/// `[c s; -s c]·[a; b] = [r; 0]`.
fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a == 0.0 {
        (0.0, 1.0)
    } else {
        let r = a.hypot(b);
        (a / r, b / r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::BandedSpec;
    use crate::csr::CsrMatrix;
    use crate::dense::DenseMatrix;
    use crate::norms::max_norm_diff;
    use proptest::prelude::*;

    #[test]
    fn givens_rotation_annihilates_second_component() {
        let (c, s) = givens(3.0, 4.0);
        assert!((c * 3.0 + s * 4.0 - 5.0).abs() < 1e-12);
        assert!((-s * 3.0 + c * 4.0).abs() < 1e-12);
    }

    #[test]
    fn solves_identity_system_in_one_iteration() {
        let a = CsrMatrix::identity(10);
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let (x, out) = Gmres::with_defaults().solve_from_zero(&a, &b);
        assert!(out.converged);
        assert!(max_norm_diff(&x, &b) < 1e-10);
    }

    #[test]
    fn solves_small_dense_system() {
        let a = DenseMatrix::from_rows(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let b = vec![1.0, 2.0, 3.0];
        let (x, out) = Gmres::with_defaults().solve_from_zero(&a, &b);
        assert!(out.converged);
        let exact = a.solve(&b).unwrap();
        assert!(max_norm_diff(&x, &exact) < 1e-8);
    }

    #[test]
    fn solves_banded_system_to_tolerance() {
        let spec = BandedSpec::paper(200, 17);
        let a = spec.generate();
        let (x_exact, b) = spec.generate_rhs(&a);
        let (x, out) = Gmres::with_defaults().solve_from_zero(&a, &b);
        assert!(out.converged, "residual {}", out.residual);
        assert!(max_norm_diff(&x, &x_exact) < 1e-6);
    }

    #[test]
    fn restart_path_is_exercised() {
        // restart shorter than the problem size forces outer cycles
        let spec = BandedSpec::paper(120, 23);
        let a = spec.generate();
        let (x_exact, b) = spec.generate_rhs(&a);
        let gmres = Gmres::new(GmresParams {
            restart: 5,
            tol: 1e-10,
            abs_tol: 1e-14,
            max_restarts: 500,
        });
        let (x, out) = gmres.solve_from_zero(&a, &b);
        assert!(out.converged);
        assert!(out.restarts >= 1);
        assert!(max_norm_diff(&x, &x_exact) < 1e-6);
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = CsrMatrix::identity(5);
        let (x, out) = Gmres::with_defaults().solve_from_zero(&a, &[0.0; 5]);
        assert!(out.converged);
        assert!(max_norm_diff(&x, &[0.0; 5]) < 1e-14);
    }

    #[test]
    fn warm_start_is_respected() {
        let spec = BandedSpec::paper(80, 2);
        let a = spec.generate();
        let (x_exact, b) = spec.generate_rhs(&a);
        let gmres = Gmres::with_defaults();
        // starting from the exact solution requires no work beyond the
        // residual check
        let mut x = x_exact.clone();
        let out = gmres.solve(&a, &b, &mut x);
        assert!(out.converged);
        assert_eq!(out.matvecs, 1);
    }

    #[test]
    fn iteration_limit_is_honoured() {
        let spec = BandedSpec::paper(100, 9);
        let a = spec.generate();
        let (_, b) = spec.generate_rhs(&a);
        let gmres = Gmres::new(GmresParams {
            restart: 2,
            tol: 1e-14,
            abs_tol: 1e-16,
            max_restarts: 1,
        });
        let (_, out) = gmres.solve_from_zero(&a, &b);
        assert_eq!(out.restarts, 1);
        // cannot have performed more than restart+1 matvecs per cycle + final
        assert!(out.matvecs <= 2 * (2 + 1));
    }

    proptest! {
        /// GMRES reduces the residual on random diagonally-dominant systems
        /// and reaches the requested tolerance.
        #[test]
        fn prop_gmres_converges_on_dominant_systems(n in 2usize..40, seed in 0u64..200) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut triplets = Vec::new();
            for i in 0..n {
                let mut off = 0.0;
                for j in 0..n {
                    if i != j && rng.gen_bool(0.3) {
                        let v: f64 = rng.gen_range(-1.0..1.0);
                        off += v.abs();
                        triplets.push((i, j, v));
                    }
                }
                triplets.push((i, i, off + 1.0));
            }
            let a = CsrMatrix::from_triplets(n, n, triplets);
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b = a.spmv_alloc(&x_true);
            let (x, out) = Gmres::with_defaults().solve_from_zero(&a, &b);
            prop_assert!(out.converged);
            prop_assert!(max_norm_diff(&x, &x_true) < 1e-5);
        }
    }
}
