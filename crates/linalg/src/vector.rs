//! Dense vector kernels.
//!
//! All routines operate on plain `&[f64]` / `&mut [f64]` slices so they can be
//! applied to whole vectors as well as to the block-components owned by a
//! single processor without copying.
//!
//! The hot kernels (`dot`, `axpy`, `axpby`, `scale`) are hand-unrolled four
//! wide over `chunks_exact`: the fixed-size chunks erase the bounds checks
//! and, for `dot`, the four independent accumulators break the serial
//! dependence that otherwise forces one multiply-add per cycle — exactly the
//! shape the autovectoriser turns into SIMD without any intrinsics or
//! dependencies. Slices shorter than four elements go wholly through the
//! remainder loops, which keep the original left-to-right accumulation
//! order.

/// Computes the dot product `x · y`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = [0.0f64; 4];
    let x4s = x.chunks_exact(4);
    let y4s = y.chunks_exact(4);
    let x_tail = x4s.remainder();
    let y_tail = y4s.remainder();
    for (x4, y4) in x4s.zip(y4s) {
        acc[0] += x4[0] * y4[0];
        acc[1] += x4[1] * y4[1];
        acc[2] += x4[2] * y4[2];
        acc[3] += x4[3] * y4[3];
    }
    let mut tail = 0.0;
    for (a, b) in x_tail.iter().zip(y_tail) {
        tail += a * b;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Performs `y += alpha * x` in place.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let mut y4s = y.chunks_exact_mut(4);
    let mut x4s = x.chunks_exact(4);
    for (y4, x4) in (&mut y4s).zip(&mut x4s) {
        y4[0] += alpha * x4[0];
        y4[1] += alpha * x4[1];
        y4[2] += alpha * x4[2];
        y4[3] += alpha * x4[3];
    }
    for (yi, xi) in y4s.into_remainder().iter_mut().zip(x4s.remainder()) {
        *yi += alpha * xi;
    }
}

/// Performs `y = alpha * x + beta * y` in place.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    let mut y4s = y.chunks_exact_mut(4);
    let mut x4s = x.chunks_exact(4);
    for (y4, x4) in (&mut y4s).zip(&mut x4s) {
        y4[0] = alpha * x4[0] + beta * y4[0];
        y4[1] = alpha * x4[1] + beta * y4[1];
        y4[2] = alpha * x4[2] + beta * y4[2];
        y4[3] = alpha * x4[3] + beta * y4[3];
    }
    for (yi, xi) in y4s.into_remainder().iter_mut().zip(x4s.remainder()) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// Scales a vector in place: `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    let mut x4s = x.chunks_exact_mut(4);
    for x4 in &mut x4s {
        x4[0] *= alpha;
        x4[1] *= alpha;
        x4[2] *= alpha;
        x4[3] *= alpha;
    }
    for xi in x4s.into_remainder() {
        *xi *= alpha;
    }
}

/// Computes `z = x - y` into a fresh vector.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a - b).collect()
}

/// Computes `z = x + y` into a fresh vector.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a + b).collect()
}

/// Copies `src` into `dst`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn copy(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "copy: length mismatch");
    dst.copy_from_slice(src);
}

/// Fills a vector with a constant value.
pub fn fill(value: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi = value;
    }
}

/// Returns a vector of `n` zeros.
pub fn zeros(n: usize) -> Vec<f64> {
    vec![0.0; n]
}

/// Returns a vector of `n` ones.
pub fn ones(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

/// Returns true when every component of `x` is finite (no NaN / infinity).
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Linear interpolation between two vectors: `(1 - t) * a + t * b`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "lerp: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (1.0 - t) * x + t * y)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_matches_hand_computed_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn axpby_combines_both_terms() {
        let mut y = vec![1.0, 2.0];
        axpby(2.0, &[3.0, 4.0], -1.0, &mut y);
        assert_eq!(y, vec![5.0, 6.0]);
    }

    #[test]
    fn scale_multiplies_every_component() {
        let mut x = vec![1.0, -2.0, 4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![0.5, -1.0, 2.0]);
    }

    #[test]
    fn sub_and_add_are_inverse() {
        let x = vec![5.0, 7.0];
        let y = vec![2.0, 3.0];
        let d = sub(&x, &y);
        assert_eq!(add(&d, &y), x);
    }

    #[test]
    fn fill_and_zeros_and_ones() {
        let mut x = zeros(3);
        assert_eq!(x, vec![0.0; 3]);
        fill(2.5, &mut x);
        assert_eq!(x, vec![2.5; 3]);
        assert_eq!(ones(2), vec![1.0, 1.0]);
    }

    #[test]
    fn all_finite_detects_nan_and_infinity() {
        assert!(all_finite(&[1.0, -2.0, 0.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = vec![0.0, 10.0];
        let b = vec![2.0, 20.0];
        assert_eq!(lerp(&a, &b, 0.0), a);
        assert_eq!(lerp(&a, &b, 1.0), b);
        assert_eq!(lerp(&a, &b, 0.5), vec![1.0, 15.0]);
    }

    #[test]
    fn unrolled_kernels_match_the_naive_formulation_across_chunk_boundaries() {
        // Lengths 1..=13 cover remainder-only, exactly-one-chunk and
        // chunks-plus-remainder shapes of the 4-wide unroll.
        for n in 1..=13usize {
            let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 1.0).collect();
            let y0: Vec<f64> = (0..n).map(|i| 2.0 - (i as f64) * 0.5).collect();

            let naive_dot: f64 = x.iter().zip(&y0).map(|(a, b)| a * b).sum();
            assert!((dot(&x, &y0) - naive_dot).abs() < 1e-12, "dot, n={n}");

            let mut y = y0.clone();
            axpy(1.5, &x, &mut y);
            for i in 0..n {
                assert_eq!(y[i], y0[i] + 1.5 * x[i], "axpy, n={n}, i={i}");
            }

            let mut y = y0.clone();
            axpby(2.0, &x, -0.5, &mut y);
            for i in 0..n {
                assert_eq!(y[i], 2.0 * x[i] + -0.5 * y0[i], "axpby, n={n}, i={i}");
            }

            let mut z = x.clone();
            scale(-3.0, &mut z);
            for i in 0..n {
                assert_eq!(z[i], -3.0 * x[i], "scale, n={n}, i={i}");
            }
        }
    }

    #[test]
    fn copy_overwrites_destination() {
        let mut dst = vec![0.0; 3];
        copy(&[1.0, 2.0, 3.0], &mut dst);
        assert_eq!(dst, vec![1.0, 2.0, 3.0]);
    }
}
