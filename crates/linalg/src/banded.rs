//! Generator of banded sparse matrices with a controlled Jacobi spectral
//! radius.
//!
//! The sparse linear benchmark of the paper uses a matrix of size
//! 2 000 000 × 2 000 000 whose non-zeros are spread over 30 sub-diagonals and
//! which is "designed to have a spectral radius less than one" so that the
//! asynchronous iteration converges (Section 5.1, Table 1). [`BandedSpec`]
//! reproduces that construction at any size: off-diagonal entries are drawn
//! uniformly at random and the diagonal is set so that the Jacobi iteration
//! matrix `M⁻¹N` has max-norm (hence spectral radius) bounded by the requested
//! `contraction` factor.

use crate::csr::CsrMatrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Specification of a random banded matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandedSpec {
    /// Matrix dimension `n` (the matrix is `n × n`).
    pub n: usize,
    /// Number of sub-diagonals on each side of the main diagonal
    /// (the paper uses 30).
    pub bandwidth: usize,
    /// Target bound on the max-norm of the Jacobi iteration matrix
    /// `M⁻¹N`; must lie in `(0, 1)` for guaranteed asynchronous convergence.
    pub contraction: f64,
    /// Seed of the deterministic random stream.
    pub seed: u64,
}

impl BandedSpec {
    /// The configuration used by the paper (scaled down by default: the
    /// original `n` is two million).
    pub fn paper(n: usize, seed: u64) -> Self {
        Self {
            n,
            bandwidth: 30,
            contraction: 0.9,
            seed,
        }
    }

    /// Generates the matrix `A` described by the spec.
    ///
    /// Construction: for every row `i`, the off-diagonal entries on the band
    /// are drawn from `U(0.1, 1.0)` with alternating signs, and the diagonal
    /// entry is `Σ_j |a_ij| / contraction`, making the matrix strictly
    /// diagonally dominant and giving the point-Jacobi iteration matrix a row
    /// sum (∞-norm) of exactly `contraction` in every non-boundary row.
    ///
    /// # Panics
    /// Panics if `n == 0`, `bandwidth == 0` or `contraction` is outside
    /// `(0, 1)`.
    pub fn generate(&self) -> CsrMatrix {
        assert!(self.n > 0, "BandedSpec: n must be positive");
        assert!(self.bandwidth > 0, "BandedSpec: bandwidth must be positive");
        assert!(
            self.contraction > 0.0 && self.contraction < 1.0,
            "BandedSpec: contraction must be in (0, 1)"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0usize);
        for i in 0..self.n {
            let lo = i.saturating_sub(self.bandwidth);
            let hi = (i + self.bandwidth).min(self.n - 1);
            let mut off_sum = 0.0;
            let mut row_cols = Vec::with_capacity(hi - lo + 1);
            let mut row_vals = Vec::with_capacity(hi - lo + 1);
            for j in lo..=hi {
                if j == i {
                    // placeholder, fixed after the off-diagonal sum is known
                    row_cols.push(j);
                    row_vals.push(0.0);
                } else {
                    let magnitude: f64 = rng.gen_range(0.1..1.0);
                    let sign = if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
                    let v: f64 = sign * magnitude;
                    off_sum += v.abs();
                    row_cols.push(j);
                    row_vals.push(v);
                }
            }
            // set the diagonal so that off_sum / diag == contraction
            let diag = if off_sum > 0.0 {
                off_sum / self.contraction
            } else {
                1.0
            };
            let diag_pos = i - lo;
            row_vals[diag_pos] = diag;
            col_idx.extend_from_slice(&row_cols);
            values.extend_from_slice(&row_vals);
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(self.n, self.n, row_ptr, col_idx, values)
    }

    /// Generates a right-hand side `b = A·x_exact` for a known smooth exact
    /// solution, so tests and benches can verify the computed solution
    /// directly against the ground truth.
    ///
    /// The exact solution is `x_exact[i] = sin(i / n * 2π) + 1.5`, returned
    /// together with `b`.
    pub fn generate_rhs(&self, a: &CsrMatrix) -> (Vec<f64>, Vec<f64>) {
        let n = self.n;
        let x_exact: Vec<f64> = (0..n)
            .map(|i| (i as f64 / n as f64 * std::f64::consts::TAU).sin() + 1.5)
            .collect();
        let b = a.spmv_alloc(&x_exact);
        (x_exact, b)
    }

    /// Number of non-zeros the generated matrix will contain.
    pub fn expected_nnz(&self) -> usize {
        (0..self.n)
            .map(|i| {
                let lo = i.saturating_sub(self.bandwidth);
                let hi = (i + self.bandwidth).min(self.n - 1);
                hi - lo + 1
            })
            .sum()
    }
}

/// Specification of a random matrix whose non-zeros sit on a set of
/// *scattered* sub-diagonals spread over the whole bandwidth of the matrix.
///
/// The paper's sparse matrix has its non-zeros distributed over 30
/// sub-diagonals and produces an **all-to-all** communication scheme ("the
/// communication scheme is all to all according to data dependencies",
/// Section 5.1), which a contiguous band cannot produce — a contiguous band
/// only couples neighbouring blocks. Spreading the sub-diagonal offsets over
/// the full dimension reproduces the intended dependency structure: every
/// row block references columns owned by (almost) every other block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScatteredDiagonalsSpec {
    /// Matrix dimension `n` (the matrix is `n × n`).
    pub n: usize,
    /// Number of sub-diagonals (the paper uses 30).
    pub num_diagonals: usize,
    /// Target bound on the max-norm of the Jacobi iteration matrix; must lie
    /// in `(0, 1)`.
    pub contraction: f64,
    /// Seed of the deterministic random stream.
    pub seed: u64,
}

impl ScatteredDiagonalsSpec {
    /// The paper's configuration (30 sub-diagonals, contractive) at a given
    /// size.
    pub fn paper(n: usize, seed: u64) -> Self {
        Self {
            n,
            num_diagonals: 30,
            contraction: 0.9,
            seed,
        }
    }

    /// The sub-diagonal offsets used for the given spec: `num_diagonals`
    /// distinct non-zero offsets spread symmetrically over `±(n−1)`.
    pub fn offsets(&self) -> Vec<i64> {
        assert!(self.n > 1, "ScatteredDiagonalsSpec: n must be at least 2");
        let mut offsets = Vec::with_capacity(self.num_diagonals);
        let half = self.num_diagonals.div_ceil(2);
        for k in 0..self.num_diagonals {
            let side = if k % 2 == 0 { 1i64 } else { -1i64 };
            let rank = (k / 2 + 1) as i64;
            // spread the ranks between 1 and n-1
            let offset = (rank * (self.n as i64 - 1) / half as i64).max(1);
            offsets.push(side * offset);
        }
        offsets.sort_unstable();
        offsets.dedup();
        offsets
    }

    /// Generates the matrix: every row has an entry on each sub-diagonal
    /// offset that stays inside the matrix, with the diagonal chosen to bound
    /// the Jacobi iteration matrix by `contraction` (same construction as
    /// [`BandedSpec::generate`]).
    pub fn generate(&self) -> CsrMatrix {
        assert!(self.n > 1, "ScatteredDiagonalsSpec: n must be at least 2");
        assert!(self.num_diagonals > 0, "need at least one sub-diagonal");
        assert!(
            self.contraction > 0.0 && self.contraction < 1.0,
            "contraction must be in (0, 1)"
        );
        let offsets = self.offsets();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..self.n {
            let mut off_sum = 0.0;
            let mut row: Vec<(usize, usize, f64)> = Vec::with_capacity(offsets.len() + 1);
            for &off in &offsets {
                let j = i as i64 + off;
                if j < 0 || j >= self.n as i64 {
                    continue;
                }
                let magnitude: f64 = rng.gen_range(0.1..1.0);
                let sign = if (i + j as usize).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                let v = sign * magnitude;
                off_sum += v.abs();
                row.push((i, j as usize, v));
            }
            let diag = if off_sum > 0.0 {
                off_sum / self.contraction
            } else {
                1.0
            };
            row.push((i, i, diag));
            triplets.extend(row);
        }
        CsrMatrix::from_triplets(self.n, self.n, triplets)
    }

    /// Generates a right-hand side with a known exact solution, like
    /// [`BandedSpec::generate_rhs`].
    pub fn generate_rhs(&self, a: &CsrMatrix) -> (Vec<f64>, Vec<f64>) {
        let n = self.n;
        let x_exact: Vec<f64> = (0..n)
            .map(|i| (i as f64 / n as f64 * std::f64::consts::TAU).cos() + 2.0)
            .collect();
        let b = a.spmv_alloc(&x_exact);
        (x_exact, b)
    }
}

/// A square sparse matrix in diagonal (DIA) storage: one densely packed
/// value vector per structurally non-empty diagonal.
///
/// The paper's matrices put every non-zero on a small set of sub-diagonals,
/// which CSR cannot exploit: its matvec gathers `x[col_idx[k]]` through an
/// index vector, defeating SIMD codegen. DIA stores each diagonal
/// contiguously, so the matvec is a handful of `y[a..b] += d[..] * x[c..d]`
/// slice loops — unit stride on every operand, exactly what the
/// autovectoriser wants, with no index traffic at all. The trade-off is that
/// ragged sparsity would pad diagonals with zeros; use it for matrices that
/// are genuinely diagonal-structured (the [`BandedSpec`] /
/// [`ScatteredDiagonalsSpec`] families).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiaMatrix {
    /// Matrix dimension.
    n: usize,
    /// Sorted distinct diagonal offsets `k = col − row`.
    offsets: Vec<i64>,
    /// `diagonals[d][t]` is the `t`-th entry of diagonal `offsets[d]`,
    /// packed densely: offset `k ≥ 0` holds `A[t, t+k]` for `t < n−k`,
    /// offset `k < 0` holds `A[t+|k|, t]` for `t < n−|k|`.
    diagonals: Vec<Vec<f64>>,
}

impl DiaMatrix {
    /// Converts a square CSR matrix to diagonal storage. Every structural
    /// non-zero is preserved; absent positions on a stored diagonal are
    /// explicit zeros.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "DiaMatrix requires a square matrix");
        let n = a.nrows();
        let mut offsets: Vec<i64> = a
            .triplets()
            .map(|(i, j, _)| j as i64 - i as i64)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        offsets.sort_unstable();
        let mut diagonals: Vec<Vec<f64>> = offsets
            .iter()
            .map(|&k| vec![0.0; n - k.unsigned_abs() as usize])
            .collect();
        for (i, j, v) in a.triplets() {
            let k = j as i64 - i as i64;
            let d = offsets.binary_search(&k).expect("offset was collected");
            let t = i.min(j);
            diagonals[d][t] = v;
        }
        Self {
            n,
            offsets,
            diagonals,
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored diagonals.
    pub fn num_diagonals(&self) -> usize {
        self.offsets.len()
    }

    /// The stored diagonal offsets, sorted ascending.
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Matrix-vector product `y = A·x` over the stored diagonals: one
    /// unit-stride fused multiply-add loop per diagonal.
    ///
    /// # Panics
    /// Panics if `x` or `y` does not have length [`DiaMatrix::dim`].
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "matvec: x length mismatch");
        assert_eq!(y.len(), self.n, "matvec: y length mismatch");
        y.fill(0.0);
        for (&k, vals) in self.offsets.iter().zip(&self.diagonals) {
            let len = vals.len();
            if k >= 0 {
                // y[t] += vals[t] * x[t + k]
                let shift = k as usize;
                for ((yi, v), xj) in y[..len].iter_mut().zip(vals).zip(&x[shift..]) {
                    *yi += v * xj;
                }
            } else {
                // y[t + |k|] += vals[t] * x[t]
                let shift = (-k) as usize;
                for ((yi, v), xj) in y[shift..].iter_mut().zip(vals).zip(&x[..len]) {
                    *yi += v * xj;
                }
            }
        }
    }

    /// Allocating variant of [`DiaMatrix::matvec`].
    pub fn matvec_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.matvec(x, &mut y);
        y
    }
}

impl crate::operator::LinearOperator for DiaMatrix {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
}

/// Upper bound on the max-norm of the point-Jacobi iteration matrix
/// `M⁻¹N` of `a` (with `M = diag(a)`, `N = M − A`): the maximum over rows of
/// `Σ_{j≠i} |a_ij| / |a_ii|`.
///
/// The spectral radius is bounded by any induced norm, so a value `< 1`
/// certifies convergence of both the synchronous and the asynchronous Jacobi
/// iterations (El Tarazi / Bertsekas-Tsitsiklis conditions).
pub fn jacobi_contraction_bound(a: &CsrMatrix) -> f64 {
    let mut worst: f64 = 0.0;
    for i in 0..a.nrows() {
        let mut diag = 0.0;
        let mut off = 0.0;
        for (j, v) in a.row(i) {
            if j == i {
                diag = v.abs();
            } else {
                off += v.abs();
            }
        }
        if diag == 0.0 {
            return f64::INFINITY;
        }
        worst = worst.max(off / diag);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generated_matrix_has_expected_shape_and_band() {
        let spec = BandedSpec {
            n: 50,
            bandwidth: 3,
            contraction: 0.8,
            seed: 7,
        };
        let a = spec.generate();
        assert_eq!(a.nrows(), 50);
        assert_eq!(a.ncols(), 50);
        assert_eq!(a.nnz(), spec.expected_nnz());
        // entries outside the band are structurally zero
        assert_eq!(a.get(0, 10), 0.0);
        assert_eq!(a.get(40, 10), 0.0);
    }

    #[test]
    fn contraction_bound_is_respected() {
        let spec = BandedSpec {
            n: 200,
            bandwidth: 5,
            contraction: 0.7,
            seed: 42,
        };
        let a = spec.generate();
        let rho = jacobi_contraction_bound(&a);
        assert!(rho <= 0.7 + 1e-12, "bound {rho} exceeds target");
        assert!(rho > 0.5, "bound {rho} suspiciously small");
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let spec = BandedSpec::paper(100, 3);
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_seeds_give_different_matrices() {
        let a = BandedSpec::paper(100, 1).generate();
        let b = BandedSpec::paper(100, 2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn paper_spec_uses_thirty_subdiagonals() {
        let spec = BandedSpec::paper(1000, 0);
        assert_eq!(spec.bandwidth, 30);
        assert!(spec.contraction < 1.0);
    }

    #[test]
    fn rhs_corresponds_to_exact_solution() {
        let spec = BandedSpec::paper(64, 5);
        let a = spec.generate();
        let (x_exact, b) = spec.generate_rhs(&a);
        let back = a.spmv_alloc(&x_exact);
        for i in 0..64 {
            assert!((back[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn contraction_bound_detects_non_dominant_matrix() {
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 5.0), (1, 1, 1.0)]);
        assert!(jacobi_contraction_bound(&a) > 1.0);
    }

    #[test]
    fn contraction_bound_is_infinite_for_zero_diagonal() {
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(jacobi_contraction_bound(&a).is_infinite());
    }

    #[test]
    fn scattered_spec_produces_spread_offsets() {
        let spec = ScatteredDiagonalsSpec::paper(1000, 0);
        let offsets = spec.offsets();
        assert!(
            offsets.len() >= 25,
            "expected ~30 distinct offsets, got {}",
            offsets.len()
        );
        assert!(
            offsets.iter().any(|&o| o > 500),
            "offsets must span the dimension"
        );
        assert!(offsets.iter().any(|&o| o < -500));
        assert!(!offsets.contains(&0));
    }

    #[test]
    fn scattered_matrix_contracts_and_couples_distant_blocks() {
        let spec = ScatteredDiagonalsSpec {
            n: 200,
            num_diagonals: 12,
            contraction: 0.8,
            seed: 5,
        };
        let a = spec.generate();
        assert_eq!(a.nrows(), 200);
        assert!(jacobi_contraction_bound(&a) <= 0.8 + 1e-9);
        // rows in the first block reference columns owned by the last block
        let deps = a.external_dependencies(0..50);
        assert!(
            deps.iter().any(|&c| c >= 150),
            "expected long-range coupling"
        );
    }

    #[test]
    fn scattered_matrix_gives_all_to_all_block_dependencies() {
        use crate::decomp::Partition;
        let spec = ScatteredDiagonalsSpec::paper(400, 3);
        let a = spec.generate();
        let p = Partition::balanced(400, 8);
        let deps = a.block_dependencies(&p);
        for (b, d) in deps.iter().enumerate() {
            assert_eq!(d.len(), 7, "block {b} should depend on all 7 other blocks");
        }
    }

    #[test]
    fn scattered_rhs_is_consistent_with_exact_solution() {
        let spec = ScatteredDiagonalsSpec::paper(128, 9);
        let a = spec.generate();
        let (x, b) = spec.generate_rhs(&a);
        let back = a.spmv_alloc(&x);
        for i in 0..128 {
            assert!((back[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn scattered_generation_is_deterministic() {
        let spec = ScatteredDiagonalsSpec::paper(150, 77);
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn dia_conversion_keeps_shape_and_diagonal_count() {
        let spec = BandedSpec {
            n: 40,
            bandwidth: 3,
            contraction: 0.8,
            seed: 11,
        };
        let dia = DiaMatrix::from_csr(&spec.generate());
        assert_eq!(dia.dim(), 40);
        // a full band of width 3 stores 2·3 + 1 diagonals
        assert_eq!(dia.num_diagonals(), 7);
        assert_eq!(dia.offsets(), &[-3, -2, -1, 0, 1, 2, 3]);
    }

    #[test]
    fn dia_matvec_of_the_identity_is_exact() {
        let dia = DiaMatrix::from_csr(&CsrMatrix::identity(5));
        let x = vec![1.0, -2.0, 3.5, 0.0, 7.0];
        assert_eq!(dia.matvec_alloc(&x), x);
    }

    #[test]
    fn dia_matvec_matches_hand_computed_band_product() {
        // [ 2 1 0 ]        x = [1, 2, 3]
        // [-1 2 1 ]   =>   y = [4, 6, 4]
        // [ 0 -1 2 ]
        let a = CsrMatrix::from_triplets(
            3,
            3,
            vec![
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, 1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        );
        let dia = DiaMatrix::from_csr(&a);
        assert_eq!(dia.matvec_alloc(&[1.0, 2.0, 3.0]), vec![4.0, 6.0, 4.0]);
    }

    proptest! {
        /// DIA and CSR agree on the generated banded and scattered-diagonal
        /// families. Tolerance-based, not exact: the unrolled CSR row dot
        /// reorders within-row sums, while DIA accumulates per diagonal.
        #[test]
        fn prop_dia_matvec_matches_csr_spmv(
            n in 2usize..120,
            bw in 1usize..12,
            seed in 0u64..200,
        ) {
            use rand::{Rng, SeedableRng};
            let spec = BandedSpec { n, bandwidth: bw, contraction: 0.85, seed };
            let a = spec.generate();
            let dia = DiaMatrix::from_csr(&a);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD1A);
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let csr_y = a.spmv_alloc(&x);
            let dia_y = dia.matvec_alloc(&x);
            for i in 0..n {
                prop_assert!(
                    (csr_y[i] - dia_y[i]).abs() <= 1e-12 * (1.0 + csr_y[i].abs()),
                    "row {}: csr {} vs dia {}", i, csr_y[i], dia_y[i]
                );
            }
        }

        /// Every generated matrix honours its contraction bound, for any
        /// size / bandwidth / target combination.
        #[test]
        fn prop_generator_always_contracts(
            n in 1usize..150,
            bw in 1usize..20,
            contraction in 0.1f64..0.95,
            seed in 0u64..100,
        ) {
            let spec = BandedSpec { n, bandwidth: bw, contraction, seed };
            let a = spec.generate();
            prop_assert!(jacobi_contraction_bound(&a) <= contraction + 1e-9);
        }
    }
}
