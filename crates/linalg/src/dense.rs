//! Small dense matrices with LU factorisation.
//!
//! These are used for the per-block inverses of the block-Jacobi
//! preconditioner and for the small least-squares system appearing in the
//! GMRES restart; they are not intended for large dense problems.

use crate::operator::LinearOperator;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_rows(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "from_rows: data length mismatch");
        Self { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Matrix-vector product `y = A·x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "matvec: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.ncols..(i + 1) * self.ncols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Allocating variant of [`DenseMatrix::matvec`].
    pub fn matvec_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.matvec(x, &mut y);
        y
    }

    /// Matrix-matrix product `A·B`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul: inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Computes an LU factorisation with partial pivoting.
    ///
    /// Returns `None` when the matrix is (numerically) singular.
    pub fn lu(&self) -> Option<LuFactors> {
        assert_eq!(self.nrows, self.ncols, "lu: matrix must be square");
        let n = self.nrows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // pivot selection
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return None;
            }
            if pivot_row != k {
                for j in 0..n {
                    lu.swap(k * n + j, pivot_row * n + j);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }
        Some(LuFactors { n, lu, perm })
    }

    /// Solves `A·x = b` via LU with partial pivoting.
    ///
    /// Returns `None` when the matrix is singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        self.lu().map(|f| f.solve(b))
    }

    /// The inverse matrix, if it exists.
    pub fn inverse(&self) -> Option<DenseMatrix> {
        let f = self.lu()?;
        let n = self.nrows;
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.iter_mut().for_each(|v| *v = 0.0);
            e[j] = 1.0;
            let col = f.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Some(inv)
    }

    /// Transposes the matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Maximum absolute entry of the matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.ncols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.ncols + j]
    }
}

impl LinearOperator for DenseMatrix {
    fn dim(&self) -> usize {
        assert_eq!(
            self.nrows, self.ncols,
            "LinearOperator requires a square matrix"
        );
        self.nrows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
}

/// The result of an LU factorisation with partial pivoting: `P·A = L·U`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Combined storage: strictly-lower part holds L (unit diagonal implied),
    /// upper part holds U.
    lu: Vec<f64>,
    /// Row permutation: row `i` of the factorised matrix is row `perm[i]` of A.
    perm: Vec<usize>,
}

impl LuFactors {
    /// Solves `A·x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "LuFactors::solve: rhs length mismatch");
        let n = self.n;
        // apply permutation
        let mut x: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        // forward substitution (L has unit diagonal)
        for i in 1..n {
            let row = &self.lu[i * n..i * n + i];
            let dot: f64 = row.iter().zip(&x[..i]).map(|(l, xj)| l * xj).sum();
            x[i] -= dot;
        }
        // backward substitution
        for i in (0..n).rev() {
            let row = &self.lu[i * n + i + 1..(i + 1) * n];
            let dot: f64 = row.iter().zip(&x[i + 1..]).map(|(u, xj)| u * xj).sum();
            x[i] = (x[i] - dot) / self.lu[i * n + i];
        }
        x
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matvec_matches_hand_computed_value() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec_alloc(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = DenseMatrix::identity(3);
        assert_eq!(a.solve(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_small_system() {
        // [2 1; 1 3] x = [3; 5]  =>  x = [0.8, 1.4]
        let a = DenseMatrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // leading zero pivot forces a row swap
        let a = DenseMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(a.solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = DenseMatrix::from_rows(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_with_identity_is_identity_operation() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn max_abs_finds_largest_entry() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, -7.0, 3.0, 4.0]);
        assert_eq!(a.max_abs(), 7.0);
    }

    proptest! {
        /// Solving a random diagonally-dominant system reproduces the rhs
        /// under multiplication.
        #[test]
        fn prop_solve_then_multiply_roundtrip(n in 1usize..8, seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                let mut row_sum = 0.0;
                for j in 0..n {
                    if i != j {
                        let v = rng.gen_range(-1.0..1.0);
                        a[(i, j)] = v;
                        row_sum += v.abs();
                    }
                }
                a[(i, i)] = row_sum + 1.0;
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = a.solve(&b).unwrap();
            let back = a.matvec_alloc(&x);
            for i in 0..n {
                prop_assert!((back[i] - b[i]).abs() < 1e-9);
            }
        }
    }
}
