//! Compressed sparse row (CSR) matrices.
//!
//! The sparse linear benchmark of the paper works on a banded matrix of
//! dimension two million with thirty sub-diagonals; a CSR layout keeps the
//! memory footprint proportional to the number of non-zeros and makes the
//! row-block extraction and column-dependency analysis needed by the
//! block-decomposed AIAC solver cheap.

use crate::decomp::Partition;
use crate::operator::LinearOperator;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from coordinate triplets `(row, col, value)`.
    ///
    /// Duplicate entries are summed; explicit zeros are kept (they still count
    /// as structural non-zeros), entries are sorted by `(row, col)`.
    ///
    /// # Panics
    /// Panics if a triplet lies outside the `nrows × ncols` shape.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut entries: Vec<(usize, usize, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &entries {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of shape");
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // merge duplicates
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; nrows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix directly from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong lengths, unsorted or
    /// out-of-range column indices, non-monotone row pointers).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "row_ptr length mismatch");
        assert_eq!(
            col_idx.len(),
            values.len(),
            "col_idx/values length mismatch"
        );
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr end mismatch"
        );
        for r in 0..nrows {
            assert!(row_ptr[r] <= row_ptr[r + 1], "row_ptr must be monotone");
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                assert!(
                    w[0] < w[1],
                    "column indices must be strictly increasing per row"
                );
            }
            for &c in row {
                assert!(c < ncols, "column index out of range");
            }
        }
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_triplets(n, n, (0..n).map(|i| (i, i, 1.0)))
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the value at `(i, j)`, or `0.0` when the entry is not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols, "get: index out of range");
        let row = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
        match row.binary_search(&j) {
            Ok(pos) => self.values[self.row_ptr[i] + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterator over the stored entries of row `i` as `(col, value)` pairs.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Iterator over all stored entries as `(row, col, value)` triplets.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| self.row(i).map(move |(j, v)| (i, j, v)))
    }

    /// Gathered dot product of one CSR row against `x`, unrolled four wide
    /// with independent accumulators so the compiler can keep four
    /// multiply-add chains in flight (the gather through `col_idx` defeats
    /// full SIMD codegen, but breaking the serial dependence on one
    /// accumulator is most of the win). Rows of at most four entries go
    /// wholly through the remainder loop, which accumulates in the same
    /// left-to-right order as the pre-unroll scalar code — small matrices in
    /// tests stay bit-identical.
    #[inline]
    fn dot_row(values: &[f64], col_idx: &[usize], x: &[f64]) -> f64 {
        let mut acc = [0.0f64; 4];
        let v4s = values.chunks_exact(4);
        let c4s = col_idx.chunks_exact(4);
        let v_tail = v4s.remainder();
        let c_tail = c4s.remainder();
        for (v4, c4) in v4s.zip(c4s) {
            acc[0] += v4[0] * x[c4[0]];
            acc[1] += v4[1] * x[c4[1]];
            acc[2] += v4[2] * x[c4[2]];
            acc[3] += v4[3] * x[c4[3]];
        }
        let mut tail = 0.0;
        for (v, &c) in v_tail.iter().zip(c_tail) {
            tail += v * x[c];
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// Sparse matrix-vector product `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            *yi = Self::dot_row(&self.values[lo..hi], &self.col_idx[lo..hi], x);
        }
    }

    /// Fused residual `r = b − A·x`, saving one pass over `r` (and the
    /// intermediate `A·x` vector) compared to `spmv` + subtract. Each row
    /// uses exactly the accumulation order of [`CsrMatrix::spmv`], so
    /// `residual(b, x, r)` is bit-identical to computing `spmv(x, y)` and
    /// then `r[i] = b[i] - y[i]`.
    ///
    /// # Panics
    /// Panics on any length mismatch.
    pub fn residual(&self, b: &[f64], x: &[f64], r: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "residual: x length mismatch");
        assert_eq!(b.len(), self.nrows, "residual: b length mismatch");
        assert_eq!(r.len(), self.nrows, "residual: r length mismatch");
        for (i, ri) in r.iter_mut().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            *ri = b[i] - Self::dot_row(&self.values[lo..hi], &self.col_idx[lo..hi], x);
        }
    }

    /// Allocating variant of [`CsrMatrix::spmv`].
    pub fn spmv_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv(x, &mut y);
        y
    }

    /// Extracts the horizontal slab of rows `rows` as a new CSR matrix with
    /// the same column space (global column indices are preserved).
    pub fn row_block(&self, rows: std::ops::Range<usize>) -> CsrMatrix {
        assert!(rows.end <= self.nrows, "row_block: range out of bounds");
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0);
        let lo = self.row_ptr[rows.start];
        let hi = self.row_ptr[rows.end];
        for r in rows.clone() {
            row_ptr.push(self.row_ptr[r + 1] - lo);
        }
        CsrMatrix {
            nrows: rows.len(),
            ncols: self.ncols,
            row_ptr,
            col_idx: self.col_idx[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Extracts the square diagonal block `rows × rows` (local column indices).
    pub fn diagonal_block(&self, rows: std::ops::Range<usize>) -> CsrMatrix {
        assert!(rows.end <= self.nrows && rows.end <= self.ncols);
        let mut triplets = Vec::new();
        for i in rows.clone() {
            for (j, v) in self.row(i) {
                if rows.contains(&j) {
                    triplets.push((i - rows.start, j - rows.start, v));
                }
            }
        }
        CsrMatrix::from_triplets(rows.len(), rows.len(), triplets)
    }

    /// The main diagonal as a dense vector (missing entries are zero).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Transposes the matrix.
    pub fn transpose(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(
            self.ncols,
            self.nrows,
            self.triplets().map(|(i, j, v)| (j, i, v)),
        )
    }

    /// For the row block `rows`, the set of *external* columns referenced by
    /// those rows, i.e. the data this block depends on but does not own.
    ///
    /// This is exactly the dependency list each processor of the paper's
    /// sparse-linear algorithm computes and exchanges in its first step
    /// (Section 4.3).
    pub fn external_dependencies(&self, rows: std::ops::Range<usize>) -> Vec<usize> {
        let mut deps = BTreeSet::new();
        for i in rows.clone() {
            for (j, _) in self.row(i) {
                if !rows.contains(&j) {
                    deps.insert(j);
                }
            }
        }
        deps.into_iter().collect()
    }

    /// Builds the block dependency graph induced by a partition of the rows
    /// and columns: entry `g[i]` lists the distinct blocks `j != i` whose data
    /// block `i` needs (i.e. blocks owning at least one external column of
    /// block `i`'s rows).
    pub fn block_dependencies(&self, partition: &Partition) -> Vec<Vec<usize>> {
        assert_eq!(
            partition.len(),
            self.ncols,
            "partition must cover the columns"
        );
        let mut graph = Vec::with_capacity(partition.parts());
        for (b, range) in partition.iter() {
            let mut deps = BTreeSet::new();
            for col in self.external_dependencies(range) {
                let owner = partition.owner(col);
                if owner != b {
                    deps.insert(owner);
                }
            }
            graph.push(deps.into_iter().collect());
        }
        graph
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Scales every stored entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in self.values.iter_mut() {
            *v *= alpha;
        }
    }

    /// Converts the matrix to a dense row-major `Vec<Vec<f64>>`; only sensible
    /// for small matrices in tests.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.ncols]; self.nrows];
        for (i, j, v) in self.triplets() {
            out[i][j] += v;
        }
        out
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        assert_eq!(
            self.nrows, self.ncols,
            "LinearOperator requires a square matrix"
        );
        self.nrows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> CsrMatrix {
        // [ 4 1 0 ]
        // [ 0 3 2 ]
        // [ 5 0 6 ]
        CsrMatrix::from_triplets(
            3,
            3,
            vec![
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 1, 3.0),
                (1, 2, 2.0),
                (2, 0, 5.0),
                (2, 2, 6.0),
            ],
        )
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 3.0)]);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn get_returns_zero_for_missing_entries() {
        let m = small();
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(2, 1), 0.0);
        assert_eq!(m.get(1, 2), 2.0);
    }

    #[test]
    fn spmv_matches_hand_computed_product() {
        let m = small();
        let y = m.spmv_alloc(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![6.0, 12.0, 23.0]);
    }

    #[test]
    fn identity_spmv_is_identity() {
        let m = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(m.spmv_alloc(&x), x);
    }

    #[test]
    fn row_block_preserves_global_columns() {
        let m = small();
        let b = m.row_block(1..3);
        assert_eq!(b.nrows(), 2);
        assert_eq!(b.ncols(), 3);
        assert_eq!(b.get(0, 1), 3.0);
        assert_eq!(b.get(1, 0), 5.0);
    }

    #[test]
    fn diagonal_block_uses_local_indices() {
        let m = small();
        let d = m.diagonal_block(1..3);
        assert_eq!(d.nrows(), 2);
        assert_eq!(d.get(0, 0), 3.0);
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(1, 1), 6.0);
        assert_eq!(d.get(1, 0), 0.0);
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(small().diagonal(), vec![4.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = small();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn external_dependencies_lists_only_foreign_columns() {
        let m = small();
        // rows 0..2 reference columns {0,1,2}; external to 0..2 is {2}
        assert_eq!(m.external_dependencies(0..2), vec![2]);
        // row 2 references columns {0,2}; external to 2..3 is {0}
        assert_eq!(m.external_dependencies(2..3), vec![0]);
    }

    #[test]
    fn block_dependencies_follow_partition_ownership() {
        let m = small();
        let p = Partition::balanced(3, 3);
        let g = m.block_dependencies(&p);
        assert_eq!(g[0], vec![1]); // row 0 needs col 1
        assert_eq!(g[1], vec![2]); // row 1 needs col 2
        assert_eq!(g[2], vec![0]); // row 2 needs col 0
    }

    #[test]
    fn to_dense_round_trip() {
        let m = small();
        let d = m.to_dense();
        assert_eq!(d[0], vec![4.0, 1.0, 0.0]);
        assert_eq!(d[2], vec![5.0, 0.0, 6.0]);
    }

    #[test]
    fn frobenius_norm_matches_manual_value() {
        let m = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 3.0), (1, 1, 4.0)]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn scale_multiplies_all_entries() {
        let mut m = small();
        m.scale(2.0);
        assert_eq!(m.get(0, 0), 8.0);
        assert_eq!(m.get(2, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "out of shape")]
    fn from_triplets_rejects_out_of_shape_entries() {
        CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_raw_rejects_unsorted_columns() {
        CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
    }

    proptest! {
        /// SpMV is linear: A(αx + y) = αAx + Ay.
        #[test]
        fn prop_spmv_linearity(
            n in 1usize..20,
            alpha in -5.0f64..5.0,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut triplets = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if rng.gen_bool(0.3) {
                        triplets.push((i, j, rng.gen_range(-1.0..1.0)));
                    }
                }
            }
            let a = CsrMatrix::from_triplets(n, n, triplets);
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
            let lhs = a.spmv_alloc(&combo);
            let ax = a.spmv_alloc(&x);
            let ay = a.spmv_alloc(&y);
            for i in 0..n {
                let rhs = alpha * ax[i] + ay[i];
                prop_assert!((lhs[i] - rhs).abs() < 1e-9);
            }
        }

        /// The fused residual is bit-identical to spmv followed by the
        /// subtraction, for rows both shorter and longer than the 4-wide
        /// unroll.
        #[test]
        fn prop_fused_residual_matches_spmv_then_subtract(
            n in 1usize..40,
            seed in 0u64..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut triplets = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if rng.gen_bool(0.4) {
                        triplets.push((i, j, rng.gen_range(-2.0..2.0)));
                    }
                }
            }
            let a = CsrMatrix::from_triplets(n, n, triplets);
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y = a.spmv_alloc(&x);
            let mut r = vec![0.0; n];
            a.residual(&b, &x, &mut r);
            for i in 0..n {
                let expected = b[i] - y[i];
                prop_assert!(
                    r[i] == expected || (r[i].is_nan() && expected.is_nan()),
                    "row {}: fused {} vs two-pass {}", i, r[i], expected
                );
            }
        }

        /// Row blocks tile the full SpMV result.
        #[test]
        fn prop_row_blocks_tile_spmv(n in 2usize..30, parts in 1usize..6, seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut triplets = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if rng.gen_bool(0.25) {
                        triplets.push((i, j, rng.gen_range(-2.0..2.0)));
                    }
                }
            }
            let a = CsrMatrix::from_triplets(n, n, triplets);
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let full = a.spmv_alloc(&x);
            let p = Partition::balanced(n, parts);
            for (b, range) in p.iter() {
                let _ = b;
                if range.is_empty() { continue; }
                let blk = a.row_block(range.clone());
                let local = blk.spmv_alloc(&x);
                for (k, i) in range.enumerate() {
                    prop_assert!((local[k] - full[i]).abs() < 1e-12);
                }
            }
        }
    }
}
