//! Vector norms and residual measures.
//!
//! The AIAC convergence detection of the paper uses the max norm of the
//! difference between two consecutive local iterates
//! (`residual_i^t = ||X_i^t − X_i^{t−1}||_∞`, Section 1.2); [`max_norm_diff`]
//! computes exactly that quantity without materialising the difference vector.

/// Max norm (infinity norm) `||x||_∞ = max_i |x_i|`.
///
/// Returns `0.0` for the empty vector.
pub fn max_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
}

/// Euclidean norm `||x||_2`.
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// One norm `||x||_1 = Σ_i |x_i|`.
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Max norm of the difference of two vectors, `||x − y||_∞`, computed without
/// allocating the difference.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn max_norm_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_norm_diff: length mismatch");
    x.iter()
        .zip(y.iter())
        .fold(0.0_f64, |acc, (a, b)| acc.max((a - b).abs()))
}

/// Euclidean norm of the difference of two vectors, `||x − y||_2`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn l2_norm_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "l2_norm_diff: length mismatch");
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Relative max-norm difference `||x − y||_∞ / max(||y||_∞, floor)`.
///
/// The `floor` guards against division by zero when the reference vector is
/// (numerically) zero; `1e-300` keeps the measure meaningful for tiny but
/// non-zero references.
pub fn relative_max_norm_diff(x: &[f64], y: &[f64], floor: f64) -> f64 {
    max_norm_diff(x, y) / max_norm(y).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_norm_picks_largest_magnitude() {
        assert_eq!(max_norm(&[1.0, -7.5, 3.0]), 7.5);
    }

    #[test]
    fn max_norm_of_empty_vector_is_zero() {
        assert_eq!(max_norm(&[]), 0.0);
    }

    #[test]
    fn l2_norm_of_345_triangle() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn l1_norm_sums_magnitudes() {
        assert_eq!(l1_norm(&[1.0, -2.0, 3.0]), 6.0);
    }

    #[test]
    fn max_norm_diff_matches_explicit_subtraction() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.5, 0.0, 3.25];
        assert_eq!(max_norm_diff(&x, &y), 2.0);
    }

    #[test]
    fn l2_norm_diff_matches_explicit_subtraction() {
        let x = [3.0, 0.0];
        let y = [0.0, 4.0];
        assert!((l2_norm_diff(&x, &y) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn relative_diff_uses_reference_scale() {
        let x = [2.0];
        let y = [1.0];
        assert!((relative_max_norm_diff(&x, &y, 1e-300) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn relative_diff_floor_prevents_division_by_zero() {
        let v = relative_max_norm_diff(&[1.0], &[0.0], 1.0);
        assert_eq!(v, 1.0);
    }

    #[test]
    fn norm_ordering_l_inf_le_l2_le_l1() {
        let x = [1.0, -2.0, 0.5, 3.0];
        assert!(max_norm(&x) <= l2_norm(&x) + 1e-15);
        assert!(l2_norm(&x) <= l1_norm(&x) + 1e-15);
    }
}
