//! One-dimensional block decomposition of an index range over processors.
//!
//! Both test problems of the paper decompose the unknowns "vertically" into
//! contiguous blocks, one per processor (Section 4.3). [`Partition`] encodes
//! such a decomposition and answers the two questions the runtime keeps
//! asking: *which indices do I own?* and *who owns index `j`?*

use serde::{Deserialize, Serialize};

/// A contiguous block decomposition of `0..n` into `p` parts whose sizes
/// differ by at most one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    n: usize,
    /// `offsets[i]..offsets[i+1]` is the range owned by block `i`.
    offsets: Vec<usize>,
}

impl Partition {
    /// Builds a balanced partition of `0..n` into `parts` blocks.
    ///
    /// The first `n % parts` blocks receive one extra element, so block sizes
    /// differ by at most one.
    ///
    /// # Panics
    /// Panics if `parts == 0`.
    pub fn balanced(n: usize, parts: usize) -> Self {
        assert!(parts > 0, "Partition::balanced: parts must be > 0");
        let base = n / parts;
        let extra = n % parts;
        let mut offsets = Vec::with_capacity(parts + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for i in 0..parts {
            acc += base + usize::from(i < extra);
            offsets.push(acc);
        }
        debug_assert_eq!(acc, n);
        Self { n, offsets }
    }

    /// Builds a partition from explicit block sizes.
    ///
    /// # Panics
    /// Panics if `sizes` is empty.
    pub fn from_sizes(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "Partition::from_sizes: empty sizes");
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        offsets.push(0);
        let mut acc = 0usize;
        for &s in sizes {
            acc += s;
            offsets.push(acc);
        }
        Self { n: acc, offsets }
    }

    /// Builds a weighted partition of `0..n`: block `i` receives a share of
    /// the indices proportional to `weights[i]`.
    ///
    /// This mirrors the static load balancing one would apply on the paper's
    /// heterogeneous clusters (faster machines get larger strips). Every block
    /// is guaranteed at least one element when `n >= weights.len()`.
    ///
    /// # Panics
    /// Panics if `weights` is empty or if any weight is non-positive.
    pub fn weighted(n: usize, weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Partition::weighted: empty weights");
        assert!(
            weights.iter().all(|w| *w > 0.0),
            "Partition::weighted: weights must be positive"
        );
        let parts = weights.len();
        let total: f64 = weights.iter().sum();
        let mut sizes: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * n as f64).floor() as usize)
            .collect();
        // Guarantee non-empty blocks when possible, then distribute the
        // remainder to the largest-weight blocks.
        if n >= parts {
            for s in sizes.iter_mut() {
                if *s == 0 {
                    *s = 1;
                }
            }
        }
        let mut assigned: usize = sizes.iter().sum();
        // Remove excess introduced by the non-empty guarantee.
        while assigned > n {
            if let Some((idx, _)) = sizes
                .iter()
                .enumerate()
                .filter(|(_, s)| **s > 1)
                .max_by_key(|(_, s)| **s)
            {
                sizes[idx] -= 1;
                assigned -= 1;
            } else {
                break;
            }
        }
        let mut order: Vec<usize> = (0..parts).collect();
        order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).unwrap());
        let mut k = 0;
        while assigned < n {
            sizes[order[k % parts]] += 1;
            assigned += 1;
            k += 1;
        }
        Self::from_sizes(&sizes)
    }

    /// Total number of indices partitioned.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the partition covers an empty index range.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of blocks.
    pub fn parts(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The index range `[start, end)` owned by block `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.parts()`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        assert!(i < self.parts(), "Partition::range: block out of range");
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Size of block `i`.
    pub fn size(&self, i: usize) -> usize {
        self.range(i).len()
    }

    /// First index owned by block `i`.
    pub fn start(&self, i: usize) -> usize {
        self.range(i).start
    }

    /// The block owning global index `j`.
    ///
    /// # Panics
    /// Panics if `j >= self.len()`.
    pub fn owner(&self, j: usize) -> usize {
        assert!(j < self.n, "Partition::owner: index out of range");
        // offsets is sorted; binary search for the block whose range contains j.
        match self.offsets.binary_search(&j) {
            Ok(pos) => {
                // j is exactly the start of block `pos` unless that block is
                // empty, in which case ownership falls to the next non-empty
                // block starting at the same offset.
                let mut b = pos;
                while b + 1 < self.offsets.len() && self.offsets[b + 1] == j {
                    b += 1;
                }
                b.min(self.parts() - 1)
            }
            Err(pos) => pos - 1,
        }
    }

    /// Converts a global index into `(owner, local index within the owner)`.
    pub fn to_local(&self, j: usize) -> (usize, usize) {
        let owner = self.owner(j);
        (owner, j - self.offsets[owner])
    }

    /// Converts a block-local index back to the global index space.
    pub fn to_global(&self, block: usize, local: usize) -> usize {
        let r = self.range(block);
        assert!(
            local < r.len(),
            "Partition::to_global: local index out of range"
        );
        r.start + local
    }

    /// Iterator over `(block, range)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, std::ops::Range<usize>)> + '_ {
        (0..self.parts()).map(move |i| (i, self.range(i)))
    }

    /// The block sizes as a vector.
    pub fn sizes(&self) -> Vec<usize> {
        (0..self.parts()).map(|i| self.size(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn balanced_partition_covers_range_without_gaps() {
        let p = Partition::balanced(10, 3);
        assert_eq!(p.parts(), 3);
        assert_eq!(p.range(0), 0..4);
        assert_eq!(p.range(1), 4..7);
        assert_eq!(p.range(2), 7..10);
        assert_eq!(p.sizes(), vec![4, 3, 3]);
    }

    #[test]
    fn balanced_partition_with_more_parts_than_elements() {
        let p = Partition::balanced(2, 4);
        assert_eq!(p.sizes(), vec![1, 1, 0, 0]);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(1), 1);
    }

    #[test]
    fn owner_is_consistent_with_range() {
        let p = Partition::balanced(17, 5);
        for b in 0..p.parts() {
            for j in p.range(b) {
                assert_eq!(p.owner(j), b, "index {j}");
            }
        }
    }

    #[test]
    fn to_local_and_to_global_roundtrip() {
        let p = Partition::balanced(23, 4);
        for j in 0..23 {
            let (b, l) = p.to_local(j);
            assert_eq!(p.to_global(b, l), j);
        }
    }

    #[test]
    fn from_sizes_respects_explicit_sizes() {
        let p = Partition::from_sizes(&[2, 0, 3]);
        assert_eq!(p.len(), 5);
        assert_eq!(p.size(1), 0);
        assert_eq!(p.range(2), 2..5);
    }

    #[test]
    fn weighted_partition_gives_larger_blocks_to_larger_weights() {
        let p = Partition::weighted(100, &[1.0, 2.0, 1.0]);
        assert_eq!(p.len(), 100);
        assert!(p.size(1) > p.size(0));
        assert!(p.size(1) > p.size(2));
    }

    #[test]
    fn weighted_partition_keeps_blocks_non_empty() {
        let p = Partition::weighted(5, &[1.0, 100.0, 1.0, 1.0]);
        assert_eq!(p.len(), 5);
        for i in 0..4 {
            assert!(p.size(i) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "parts must be > 0")]
    fn balanced_rejects_zero_parts() {
        Partition::balanced(10, 0);
    }

    proptest! {
        #[test]
        fn prop_balanced_covers_and_is_disjoint(n in 0usize..500, parts in 1usize..32) {
            let p = Partition::balanced(n, parts);
            prop_assert_eq!(p.parts(), parts);
            prop_assert_eq!(p.sizes().iter().sum::<usize>(), n);
            // sizes differ by at most one
            let sizes = p.sizes();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1);
            // ownership is consistent
            for j in 0..n {
                let owner = p.owner(j);
                prop_assert!(p.range(owner).contains(&j));
            }
        }

        #[test]
        fn prop_weighted_covers_everything(n in 1usize..300, k in 1usize..8) {
            let weights: Vec<f64> = (0..k).map(|i| 1.0 + i as f64).collect();
            let p = Partition::weighted(n, &weights);
            prop_assert_eq!(p.len(), n);
            prop_assert_eq!(p.sizes().iter().sum::<usize>(), n);
        }
    }
}
