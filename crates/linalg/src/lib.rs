//! Numerical substrate for the `aiac-rs` workspace.
//!
//! This crate provides every linear-algebra building block needed by the two
//! benchmark problems of Bahi, Contassot-Vivier and Couturier's AIAC study:
//!
//! * dense vectors and the max / Euclidean norms used as stopping criteria
//!   ([`vector`], [`norms`]);
//! * compressed-sparse-row matrices with the dependency analysis needed to
//!   build the communication graph of a block-decomposed iterative solver
//!   ([`csr`]);
//! * a generator of banded matrices with a controlled Jacobi spectral radius,
//!   matching the paper's "sparse matrix designed to have a spectral radius
//!   less than one" ([`banded`]);
//! * small dense matrices with LU factorisation, used for block-diagonal
//!   inverses and the Newton corrections ([`dense`]);
//! * a restarted GMRES solver, the sequential inner solver of the
//!   multi-splitting Newton method ([`gmres`]);
//! * block-Jacobi preconditioning utilities ([`jacobi`]);
//! * one-dimensional block decompositions of index ranges over processors
//!   ([`decomp`]).
//!
//! Everything is pure, deterministic Rust with no external BLAS dependency so
//! the same code runs inside both the real threaded runtime and the
//! discrete-event grid simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banded;
pub mod csr;
pub mod decomp;
pub mod dense;
pub mod gmres;
pub mod jacobi;
pub mod norms;
pub mod operator;
pub mod vector;

pub use banded::{BandedSpec, ScatteredDiagonalsSpec};
pub use csr::CsrMatrix;
pub use decomp::Partition;
pub use dense::DenseMatrix;
pub use gmres::{Gmres, GmresOutcome, GmresParams};
pub use jacobi::BlockJacobi;
pub use norms::{l2_norm, max_norm, max_norm_diff};
pub use operator::LinearOperator;
