//! Cooperative per-job cancellation.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between the party that
//! owns a running solve (the service front end, a test harness) and the
//! runtime executing it. The runtime polls the token at sweep granularity —
//! a solve is a tight numeric loop, so preemption mid-sweep would buy
//! nothing and cost a branch per block — and winds down with
//! `premature_stop = true` in its [`crate::report::RunReport`] when it finds
//! the flag raised.
//!
//! The token is a single `AtomicBool` behind an `Arc`: raising it is
//! idempotent, observing it is wait-free, and dropping every clone releases
//! the allocation. There is no un-cancel — a raised token stays raised for
//! the lifetime of the job it belongs to, which keeps the protocol
//! monotonic and race-free by construction.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag for one job.
///
/// Clones observe the same flag. The default token starts lowered.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, lowered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        // ord: Release so that whatever the canceller wrote before raising
        // the flag (e.g. a reason recorded elsewhere) is visible to a
        // runtime that Acquire-loads the flag and stops.
        self.flag.store(true, Ordering::Release);
    }

    /// Returns `true` once [`CancelToken::cancel`] has been called on any
    /// clone of this token.
    pub fn is_cancelled(&self) -> bool {
        // ord: Acquire pairs with the Release store in `cancel` so the
        // cancellation edge orders the canceller's preceding writes before
        // the runtime's wind-down.
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_lowered_and_raises_idempotently() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let observer = token.clone();
        assert!(!observer.is_cancelled());
        token.cancel();
        assert!(observer.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn raise_is_visible_across_threads() {
        let token = CancelToken::new();
        let observer = token.clone();
        let handle = std::thread::spawn(move || {
            while !observer.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().unwrap());
    }
}
