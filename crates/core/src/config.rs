//! Run configuration.
//!
//! [`RunConfig`] gathers the knobs the paper's implementations expose: the
//! execution mode (synchronous SISC versus asynchronous AIAC), the residual
//! threshold of the stopping criterion, the number of consecutive
//! under-threshold iterations required before a processor believes its local
//! convergence (Section 4.3: "we count a specified number of iterations under
//! local convergence before assuming it has actually been reached"), and the
//! iteration limit guarding against non-convergent runs. The threaded
//! back-end additionally honours [`RunConfig::num_workers`], the size of the
//! worker pool blocks are multiplexed over.
//!
//! Validation comes in two flavours: [`RunConfig::try_validate`] returns a
//! [`ConfigError`] (what CLI front-ends want so a malformed configuration is
//! reported, not aborted on), and [`RunConfig::validate`] panics with the
//! same message (what the runtimes use on their internal invariants).

use crate::placement::PlacementPolicy;
use aiac_obs::TraceConfig;
use serde::{Deserialize, Serialize};

/// Synchronous (SISC) or asynchronous (AIAC) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Synchronous Iterations – Synchronous Communications: every processor
    /// runs the same iteration number and a global exchange/barrier separates
    /// iterations (Figure 1).
    Synchronous,
    /// Asynchronous Iterations – Asynchronous Communications: processors
    /// iterate at their own pace on whatever data is available (Figure 2).
    Asynchronous,
}

impl ExecutionMode {
    /// Short label used in reports and tables.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::Synchronous => "sync",
            ExecutionMode::Asynchronous => "async",
        }
    }
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the threaded back-end's asynchronous worker pool schedules ready
/// blocks (the synchronous mode runs a static partition and ignores this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StealPolicy {
    /// Per-worker Chase–Lev-style deques (LIFO owner pop) with randomized
    /// stealing (FIFO) and exponential-backoff parking for idle workers —
    /// the default, and the only policy the locality bias applies to.
    #[default]
    WorkStealing,
    /// Every ready block goes through one shared FIFO queue. This is the
    /// pre-work-stealing scheduler, kept as the comparison baseline the
    /// bench harness gates stealing against.
    SharedFifo,
}

impl StealPolicy {
    /// Both policies, in display order.
    pub const ALL: [StealPolicy; 2] = [StealPolicy::WorkStealing, StealPolicy::SharedFifo];

    /// Short label used in tables and CLIs.
    pub fn label(self) -> &'static str {
        match self {
            StealPolicy::WorkStealing => "stealing",
            StealPolicy::SharedFifo => "fifo",
        }
    }
}

impl std::fmt::Display for StealPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a [`RunConfig`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfigError {
    /// ε is not a positive finite number.
    NonPositiveEpsilon,
    /// The local-convergence streak is zero.
    ZeroStreak,
    /// The iteration limit is zero.
    ZeroMaxIterations,
    /// An explicit worker-pool size of zero was requested.
    ZeroWorkers,
    /// The locality bias was requested together with the shared-FIFO
    /// scheduler, which has no per-worker deque to bias towards.
    LocalityBiasWithoutStealing,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ConfigError::NonPositiveEpsilon => "epsilon must be positive and finite",
            ConfigError::ZeroStreak => "convergence_streak must be > 0",
            ConfigError::ZeroMaxIterations => "max_iterations must be > 0",
            ConfigError::ZeroWorkers => {
                "num_workers must be > 0 (leave it unset for the automatic default)"
            }
            ConfigError::LocalityBiasWithoutStealing => {
                "locality_bias requires steal_policy = work-stealing \
                 (the shared FIFO queue has no per-worker deques)"
            }
        })
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of one solver run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Residual threshold ε of the stopping criterion
    /// `||x_k − x_{k−1}||_∞ < ε`.
    pub epsilon: f64,
    /// Number of consecutive iterations a block must stay under `epsilon`
    /// before it declares local convergence (asynchronous mode only; the
    /// synchronous mode checks the global residual directly).
    pub convergence_streak: usize,
    /// Hard limit on the number of local iterations of any block, "in order
    /// to avoid infinite execution when the process does not converge".
    pub max_iterations: usize,
    /// Seed forwarded to any randomised component (kept in the config so a
    /// whole run is reproducible from this single value).
    pub seed: u64,
    /// Size of the threaded back-end's worker pool. `None` (the default)
    /// resolves to [`std::thread::available_parallelism`]; the pool is never
    /// larger than the number of blocks. The other back-ends ignore it.
    pub num_workers: Option<usize>,
    /// How the simulated runtime assigns blocks to hosts when blocks
    /// outnumber machines (the oversubscribed regime of Figure 3). The
    /// real-thread back-ends ignore it.
    pub placement: PlacementPolicy,
    /// How the threaded back-end's asynchronous pool schedules ready blocks:
    /// per-worker deques with randomized stealing (the default) or the
    /// shared FIFO queue kept as the comparison baseline. The synchronous
    /// mode and the other back-ends ignore it.
    pub steal_policy: StealPolicy,
    /// When true (the default under [`StealPolicy::WorkStealing`]), a block's
    /// publishes push its ready dependants onto the deque of the worker that
    /// ran the publisher, so the freshly produced payload is consumed where
    /// it is cache-hot. Invalid with [`StealPolicy::SharedFifo`].
    pub locality_bias: bool,
    /// Event-tracing knobs forwarded to the observability plane. Off by
    /// default, in which case every instrumentation site in the runtimes
    /// reduces to one relaxed atomic load and a branch.
    pub tracing: TraceConfig,
}

impl RunConfig {
    /// An asynchronous configuration with the given threshold.
    pub fn asynchronous(epsilon: f64) -> Self {
        Self {
            mode: ExecutionMode::Asynchronous,
            epsilon,
            convergence_streak: 3,
            max_iterations: 100_000,
            seed: 0,
            num_workers: None,
            placement: PlacementPolicy::RoundRobin,
            steal_policy: StealPolicy::WorkStealing,
            locality_bias: true,
            tracing: TraceConfig::off(),
        }
    }

    /// A synchronous configuration with the given threshold.
    pub fn synchronous(epsilon: f64) -> Self {
        Self {
            mode: ExecutionMode::Synchronous,
            epsilon,
            convergence_streak: 1,
            max_iterations: 100_000,
            seed: 0,
            num_workers: None,
            placement: PlacementPolicy::RoundRobin,
            steal_policy: StealPolicy::WorkStealing,
            locality_bias: true,
            tracing: TraceConfig::off(),
        }
    }

    /// Sets the iteration limit (builder style).
    pub fn with_max_iterations(mut self, max: usize) -> Self {
        self.max_iterations = max;
        self
    }

    /// Sets the convergence streak (builder style).
    pub fn with_streak(mut self, streak: usize) -> Self {
        self.convergence_streak = streak;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets an explicit worker-pool size for the threaded back-end
    /// (builder style).
    pub fn with_num_workers(mut self, workers: usize) -> Self {
        self.num_workers = Some(workers);
        self
    }

    /// Sets the block-to-host placement policy used by the simulated
    /// back-end (builder style).
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the threaded back-end's scheduling policy (builder style).
    /// Selecting the shared FIFO queue also clears the locality bias, which
    /// only makes sense with per-worker deques (an explicit
    /// [`RunConfig::with_locality_bias`] afterwards is rejected by
    /// validation).
    pub fn with_steal_policy(mut self, policy: StealPolicy) -> Self {
        self.steal_policy = policy;
        if policy == StealPolicy::SharedFifo {
            self.locality_bias = false;
        }
        self
    }

    /// Sets the dependency-aware placement bias of the work-stealing pool
    /// (builder style).
    pub fn with_locality_bias(mut self, bias: bool) -> Self {
        self.locality_bias = bias;
        self
    }

    /// Sets the tracing knobs (builder style). `TraceConfig::on()` makes the
    /// back-ends record per-worker (threaded) or per-host (simulated) event
    /// timelines exportable as Chrome trace JSON.
    pub fn with_tracing(mut self, tracing: TraceConfig) -> Self {
        self.tracing = tracing;
        self
    }

    /// The worker-pool size the threaded back-end actually uses for a problem
    /// of `num_blocks` blocks: the configured size (or the machine's
    /// available parallelism when unset), clamped to the block count.
    ///
    /// This is the **only** place a worker count is ever clamped. An explicit
    /// `num_workers == 0` is *not* silently promoted here — it is rejected
    /// up front by [`RunConfig::try_validate`] with
    /// [`ConfigError::ZeroWorkers`] (the runtimes validate before resolving
    /// the pool size, so this method never observes one).
    pub fn effective_num_workers(&self, num_blocks: usize) -> usize {
        debug_assert!(
            self.num_workers != Some(0),
            "validate the config before resolving the pool size"
        );
        let requested = self
            .num_workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .max(1);
        requested.min(num_blocks.max(1))
    }

    /// Checks the configuration is usable, reporting the first problem found
    /// instead of panicking (the entry point CLI front-ends should use).
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(ConfigError::NonPositiveEpsilon);
        }
        if self.convergence_streak == 0 {
            return Err(ConfigError::ZeroStreak);
        }
        if self.max_iterations == 0 {
            return Err(ConfigError::ZeroMaxIterations);
        }
        if self.num_workers == Some(0) {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.locality_bias && self.steal_policy == StealPolicy::SharedFifo {
            return Err(ConfigError::LocalityBiasWithoutStealing);
        }
        Ok(())
    }

    /// Checks the configuration is usable.
    ///
    /// # Panics
    /// Panics if ε is not a positive finite number, the streak is zero, the
    /// iteration limit is zero or an explicit worker count of zero was set
    /// (see [`RunConfig::try_validate`] for the non-panicking variant).
    pub fn validate(&self) {
        if let Err(err) = self.try_validate() {
            panic!("{err}");
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::asynchronous(1e-8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_the_mode() {
        assert_eq!(
            RunConfig::asynchronous(1e-6).mode,
            ExecutionMode::Asynchronous
        );
        assert_eq!(
            RunConfig::synchronous(1e-6).mode,
            ExecutionMode::Synchronous
        );
    }

    #[test]
    fn builder_methods_override_fields() {
        let c = RunConfig::asynchronous(1e-6)
            .with_max_iterations(500)
            .with_streak(7)
            .with_seed(42)
            .with_placement(PlacementPolicy::SpeedWeighted);
        assert_eq!(c.max_iterations, 500);
        assert_eq!(c.convergence_streak, 7);
        assert_eq!(c.seed, 42);
        assert_eq!(c.placement, PlacementPolicy::SpeedWeighted);
        c.validate();
    }

    #[test]
    fn default_placement_is_round_robin() {
        assert_eq!(
            RunConfig::asynchronous(1e-6).placement,
            PlacementPolicy::RoundRobin
        );
        assert_eq!(
            RunConfig::synchronous(1e-6).placement,
            PlacementPolicy::RoundRobin
        );
    }

    #[test]
    fn default_is_a_valid_async_config() {
        let c = RunConfig::default();
        assert_eq!(c.mode, ExecutionMode::Asynchronous);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_is_rejected() {
        RunConfig::asynchronous(0.0).validate();
    }

    #[test]
    #[should_panic(expected = "max_iterations must be > 0")]
    fn zero_iteration_limit_is_rejected() {
        RunConfig::asynchronous(1e-6)
            .with_max_iterations(0)
            .validate();
    }

    #[test]
    fn mode_labels_are_stable() {
        assert_eq!(ExecutionMode::Synchronous.label(), "sync");
        assert_eq!(format!("{}", ExecutionMode::Asynchronous), "async");
    }

    #[test]
    fn try_validate_reports_instead_of_panicking() {
        assert_eq!(
            RunConfig::asynchronous(0.0).try_validate(),
            Err(ConfigError::NonPositiveEpsilon)
        );
        assert_eq!(
            RunConfig::asynchronous(f64::NAN).try_validate(),
            Err(ConfigError::NonPositiveEpsilon)
        );
        assert_eq!(
            RunConfig::asynchronous(1e-6).with_streak(0).try_validate(),
            Err(ConfigError::ZeroStreak)
        );
        assert_eq!(
            RunConfig::asynchronous(1e-6)
                .with_max_iterations(0)
                .try_validate(),
            Err(ConfigError::ZeroMaxIterations)
        );
        assert!(RunConfig::asynchronous(1e-6).try_validate().is_ok());
    }

    #[test]
    fn zero_workers_is_rejected_but_unset_is_auto() {
        let explicit = RunConfig::asynchronous(1e-6).with_num_workers(0);
        assert_eq!(explicit.try_validate(), Err(ConfigError::ZeroWorkers));
        let auto = RunConfig::asynchronous(1e-6);
        assert_eq!(auto.num_workers, None);
        assert!(auto.try_validate().is_ok());
    }

    #[test]
    fn effective_workers_clamp_to_the_block_count() {
        // The clamp lives in effective_num_workers and nowhere else: an
        // oversized request passes validation (it is usable, just larger
        // than useful) and is resolved against the block count here.
        let c = RunConfig::asynchronous(1e-6).with_num_workers(8);
        assert!(c.try_validate().is_ok());
        assert_eq!(c.effective_num_workers(3), 3);
        assert_eq!(c.effective_num_workers(100), 8);
        let oversized = RunConfig::asynchronous(1e-6).with_num_workers(usize::MAX);
        assert!(oversized.try_validate().is_ok());
        assert_eq!(oversized.effective_num_workers(5), 5);
        // the automatic default is at least one worker, never more than the
        // number of blocks
        let auto = RunConfig::asynchronous(1e-6);
        assert_eq!(auto.effective_num_workers(1), 1);
        assert!(auto.effective_num_workers(1024) >= 1);
        assert!(auto.effective_num_workers(1024) <= 1024);
    }

    #[test]
    fn default_scheduler_is_work_stealing_with_locality_bias() {
        for c in [RunConfig::asynchronous(1e-6), RunConfig::synchronous(1e-6)] {
            assert_eq!(c.steal_policy, StealPolicy::WorkStealing);
            assert!(c.locality_bias);
            c.validate();
        }
    }

    #[test]
    fn shared_fifo_clears_the_locality_bias_but_an_explicit_bias_is_rejected() {
        let fifo = RunConfig::asynchronous(1e-6).with_steal_policy(StealPolicy::SharedFifo);
        assert!(!fifo.locality_bias);
        assert!(fifo.try_validate().is_ok());
        let contradictory = fifo.with_locality_bias(true);
        assert_eq!(
            contradictory.try_validate(),
            Err(ConfigError::LocalityBiasWithoutStealing)
        );
        assert!(contradictory
            .try_validate()
            .unwrap_err()
            .to_string()
            .contains("locality_bias"));
        // turning the bias off under work-stealing is always fine
        let unbiased = RunConfig::asynchronous(1e-6).with_locality_bias(false);
        assert!(unbiased.try_validate().is_ok());
    }

    #[test]
    fn tracing_defaults_off_and_the_builder_enables_it() {
        let c = RunConfig::asynchronous(1e-6);
        assert!(!c.tracing.enabled);
        let traced = c.with_tracing(TraceConfig::on().with_ring_capacity(1024));
        assert!(traced.tracing.enabled);
        assert_eq!(traced.tracing.ring_capacity, 1024);
        traced.validate();
    }

    #[test]
    fn steal_policy_labels_are_stable() {
        assert_eq!(StealPolicy::WorkStealing.label(), "stealing");
        assert_eq!(format!("{}", StealPolicy::SharedFifo), "fifo");
        assert_eq!(StealPolicy::default(), StealPolicy::WorkStealing);
        assert_eq!(StealPolicy::ALL.len(), 2);
    }

    #[test]
    fn config_error_messages_name_the_field() {
        assert_eq!(
            ConfigError::NonPositiveEpsilon.to_string(),
            "epsilon must be positive and finite"
        );
        assert!(ConfigError::ZeroWorkers.to_string().contains("num_workers"));
    }
}
