//! Run configuration.
//!
//! [`RunConfig`] gathers the knobs the paper's implementations expose: the
//! execution mode (synchronous SISC versus asynchronous AIAC), the residual
//! threshold of the stopping criterion, the number of consecutive
//! under-threshold iterations required before a processor believes its local
//! convergence (Section 4.3: "we count a specified number of iterations under
//! local convergence before assuming it has actually been reached"), and the
//! iteration limit guarding against non-convergent runs.

use serde::{Deserialize, Serialize};

/// Synchronous (SISC) or asynchronous (AIAC) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Synchronous Iterations – Synchronous Communications: every processor
    /// runs the same iteration number and a global exchange/barrier separates
    /// iterations (Figure 1).
    Synchronous,
    /// Asynchronous Iterations – Asynchronous Communications: processors
    /// iterate at their own pace on whatever data is available (Figure 2).
    Asynchronous,
}

impl ExecutionMode {
    /// Short label used in reports and tables.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::Synchronous => "sync",
            ExecutionMode::Asynchronous => "async",
        }
    }
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of one solver run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Residual threshold ε of the stopping criterion
    /// `||x_k − x_{k−1}||_∞ < ε`.
    pub epsilon: f64,
    /// Number of consecutive iterations a block must stay under `epsilon`
    /// before it declares local convergence (asynchronous mode only; the
    /// synchronous mode checks the global residual directly).
    pub convergence_streak: usize,
    /// Hard limit on the number of local iterations of any block, "in order
    /// to avoid infinite execution when the process does not converge".
    pub max_iterations: usize,
    /// Seed forwarded to any randomised component (kept in the config so a
    /// whole run is reproducible from this single value).
    pub seed: u64,
}

impl RunConfig {
    /// An asynchronous configuration with the given threshold.
    pub fn asynchronous(epsilon: f64) -> Self {
        Self {
            mode: ExecutionMode::Asynchronous,
            epsilon,
            convergence_streak: 3,
            max_iterations: 100_000,
            seed: 0,
        }
    }

    /// A synchronous configuration with the given threshold.
    pub fn synchronous(epsilon: f64) -> Self {
        Self {
            mode: ExecutionMode::Synchronous,
            epsilon,
            convergence_streak: 1,
            max_iterations: 100_000,
            seed: 0,
        }
    }

    /// Sets the iteration limit (builder style).
    pub fn with_max_iterations(mut self, max: usize) -> Self {
        self.max_iterations = max;
        self
    }

    /// Sets the convergence streak (builder style).
    pub fn with_streak(mut self, streak: usize) -> Self {
        self.convergence_streak = streak;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks the configuration is usable.
    ///
    /// # Panics
    /// Panics if ε is not a positive finite number, the streak is zero or the
    /// iteration limit is zero.
    pub fn validate(&self) {
        assert!(
            self.epsilon.is_finite() && self.epsilon > 0.0,
            "epsilon must be positive and finite"
        );
        assert!(
            self.convergence_streak > 0,
            "convergence_streak must be > 0"
        );
        assert!(self.max_iterations > 0, "max_iterations must be > 0");
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::asynchronous(1e-8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_the_mode() {
        assert_eq!(
            RunConfig::asynchronous(1e-6).mode,
            ExecutionMode::Asynchronous
        );
        assert_eq!(
            RunConfig::synchronous(1e-6).mode,
            ExecutionMode::Synchronous
        );
    }

    #[test]
    fn builder_methods_override_fields() {
        let c = RunConfig::asynchronous(1e-6)
            .with_max_iterations(500)
            .with_streak(7)
            .with_seed(42);
        assert_eq!(c.max_iterations, 500);
        assert_eq!(c.convergence_streak, 7);
        assert_eq!(c.seed, 42);
        c.validate();
    }

    #[test]
    fn default_is_a_valid_async_config() {
        let c = RunConfig::default();
        assert_eq!(c.mode, ExecutionMode::Asynchronous);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_is_rejected() {
        RunConfig::asynchronous(0.0).validate();
    }

    #[test]
    #[should_panic(expected = "max_iterations must be > 0")]
    fn zero_iteration_limit_is_rejected() {
        RunConfig::asynchronous(1e-6)
            .with_max_iterations(0)
            .validate();
    }

    #[test]
    fn mode_labels_are_stable() {
        assert_eq!(ExecutionMode::Synchronous.label(), "sync");
        assert_eq!(format!("{}", ExecutionMode::Asynchronous), "async");
    }
}
