//! Convergence detection and halting.
//!
//! The paper's algorithms stop through a two-level procedure (Section 4.3):
//!
//! * **local convergence** — a processor considers itself converged when the
//!   max-norm residual of its block has stayed under the threshold for a
//!   specified number of consecutive iterations (the streak guards against
//!   the oscillations that asynchronous data arrivals can cause);
//! * **global convergence** — a *centralized* detector (one designated
//!   processor) gathers the local states, which are only sent when they
//!   change, and broadcasts a stop signal once every processor is in local
//!   convergence at the same time.
//!
//! [`LocalConvergence`] implements the first level, [`GlobalDetector`] the
//! second. Both are plain deterministic state machines so the threaded and
//! simulated runtimes share them.

use serde::{Deserialize, Serialize};

/// Per-block local convergence tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalConvergence {
    epsilon: f64,
    required_streak: usize,
    current_streak: usize,
    converged: bool,
}

impl LocalConvergence {
    /// Creates a tracker declaring convergence after `required_streak`
    /// consecutive residuals strictly below `epsilon`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not positive or the streak is zero.
    pub fn new(epsilon: f64, required_streak: usize) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(required_streak > 0, "streak must be at least 1");
        Self {
            epsilon,
            required_streak,
            current_streak: 0,
            converged: false,
        }
    }

    /// Feeds the residual of one local iteration. Returns `true` when the
    /// local convergence state *changed* (so the caller knows it must send a
    /// state message to the detector, which the paper does "only when it
    /// changes" to avoid overloading the network).
    pub fn observe(&mut self, residual: f64) -> bool {
        self.observe_gated(residual, true)
    }

    /// Like [`LocalConvergence::observe`], but an under-threshold residual
    /// only advances the streak when `fresh_data` is true (i.e. the iteration
    /// incorporated at least one new dependency message, or the block has no
    /// dependencies at all).
    ///
    /// This gate protects the centralized detection against the premature
    /// terminations the paper warns about: a processor that is merely idling
    /// on stale data produces zero residuals, but those say nothing about the
    /// global state. Over-threshold residuals still cancel the streak
    /// regardless of freshness.
    pub fn observe_gated(&mut self, residual: f64, fresh_data: bool) -> bool {
        let was = self.converged;
        if residual < self.epsilon {
            if fresh_data {
                self.current_streak += 1;
                if self.current_streak >= self.required_streak {
                    self.converged = true;
                }
            }
        } else {
            self.current_streak = 0;
            self.converged = false;
        }
        self.converged != was
    }

    /// Whether the block currently believes it has converged.
    pub fn is_converged(&self) -> bool {
        self.converged
    }

    /// Length of the current under-threshold streak.
    pub fn streak(&self) -> usize {
        self.current_streak
    }

    /// Resets the tracker (used between time steps of the non-linear
    /// problem).
    pub fn reset(&mut self) {
        self.current_streak = 0;
        self.converged = false;
    }
}

/// Centralized global convergence detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalDetector {
    states: Vec<bool>,
    converged_count: usize,
    /// Number of state messages processed (exposed for the reports).
    reports_received: u64,
    decided: bool,
}

impl GlobalDetector {
    /// Creates a detector for `num_blocks` blocks, all initially
    /// non-converged.
    pub fn new(num_blocks: usize) -> Self {
        assert!(num_blocks > 0, "detector needs at least one block");
        Self {
            states: vec![false; num_blocks],
            converged_count: 0,
            reports_received: 0,
            decided: false,
        }
    }

    /// Processes a state report from a block. Returns `true` when this report
    /// makes the detector decide global convergence (i.e. the caller must now
    /// broadcast the stop signal). Reports received after the decision are
    /// ignored.
    pub fn report(&mut self, block: usize, converged: bool) -> bool {
        assert!(block < self.states.len(), "unknown block {block}");
        self.reports_received += 1;
        if self.decided {
            return false;
        }
        if self.states[block] != converged {
            self.states[block] = converged;
            if converged {
                self.converged_count += 1;
            } else {
                self.converged_count -= 1;
            }
        }
        if self.converged_count == self.states.len() {
            self.decided = true;
            true
        } else {
            false
        }
    }

    /// Whether global convergence has been decided.
    pub fn is_decided(&self) -> bool {
        self.decided
    }

    /// Number of blocks currently reporting local convergence.
    pub fn converged_blocks(&self) -> usize {
        self.converged_count
    }

    /// Number of state reports processed.
    pub fn reports_received(&self) -> u64 {
        self.reports_received
    }

    /// Resets the detector (used between time steps of the non-linear
    /// problem).
    pub fn reset(&mut self) {
        for s in self.states.iter_mut() {
            *s = false;
        }
        self.converged_count = 0;
        self.decided = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn local_convergence_requires_a_full_streak() {
        let mut lc = LocalConvergence::new(1e-6, 3);
        assert!(!lc.observe(1e-7));
        assert!(!lc.observe(1e-7));
        assert!(!lc.is_converged());
        // third consecutive small residual flips the state
        assert!(lc.observe(1e-7));
        assert!(lc.is_converged());
        // staying converged is not a change
        assert!(!lc.observe(1e-8));
    }

    #[test]
    fn large_residual_cancels_local_convergence() {
        let mut lc = LocalConvergence::new(1e-6, 2);
        lc.observe(1e-9);
        lc.observe(1e-9);
        assert!(lc.is_converged());
        // an asynchronously received update perturbs the block: oscillation
        assert!(lc.observe(1e-3), "cancellation is a state change");
        assert!(!lc.is_converged());
        assert_eq!(lc.streak(), 0);
    }

    #[test]
    fn streak_of_one_converges_immediately() {
        let mut lc = LocalConvergence::new(1e-6, 1);
        assert!(lc.observe(1e-7));
        assert!(lc.is_converged());
    }

    #[test]
    fn residual_equal_to_epsilon_does_not_count() {
        let mut lc = LocalConvergence::new(1e-6, 1);
        assert!(!lc.observe(1e-6));
        assert!(!lc.is_converged());
    }

    #[test]
    fn stale_iterations_do_not_advance_the_streak() {
        let mut lc = LocalConvergence::new(1e-6, 2);
        assert!(!lc.observe_gated(1e-9, true));
        // arbitrarily many quiet-but-stale iterations keep the streak frozen
        for _ in 0..100 {
            assert!(!lc.observe_gated(0.0, false));
        }
        assert!(!lc.is_converged());
        assert_eq!(lc.streak(), 1);
        // one more fresh quiet iteration completes the streak
        assert!(lc.observe_gated(1e-9, true));
        assert!(lc.is_converged());
    }

    #[test]
    fn large_residual_cancels_even_without_fresh_data() {
        let mut lc = LocalConvergence::new(1e-6, 1);
        lc.observe_gated(1e-9, true);
        assert!(lc.is_converged());
        assert!(lc.observe_gated(1.0, false));
        assert!(!lc.is_converged());
    }

    #[test]
    fn reset_clears_local_state() {
        let mut lc = LocalConvergence::new(1e-6, 1);
        lc.observe(0.0);
        assert!(lc.is_converged());
        lc.reset();
        assert!(!lc.is_converged());
        assert_eq!(lc.streak(), 0);
    }

    #[test]
    fn detector_decides_only_when_all_blocks_converge() {
        let mut det = GlobalDetector::new(3);
        assert!(!det.report(0, true));
        assert!(!det.report(1, true));
        assert_eq!(det.converged_blocks(), 2);
        assert!(!det.is_decided());
        assert!(det.report(2, true));
        assert!(det.is_decided());
    }

    #[test]
    fn detector_handles_cancellations() {
        let mut det = GlobalDetector::new(2);
        det.report(0, true);
        det.report(1, false);
        // block 0 oscillates back out of convergence
        det.report(0, false);
        assert_eq!(det.converged_blocks(), 0);
        det.report(1, true);
        assert!(!det.is_decided());
        assert!(det.report(0, true));
    }

    #[test]
    fn duplicate_reports_do_not_double_count() {
        let mut det = GlobalDetector::new(2);
        det.report(0, true);
        det.report(0, true);
        assert_eq!(det.converged_blocks(), 1);
        assert!(!det.is_decided());
    }

    #[test]
    fn reports_after_decision_are_ignored() {
        let mut det = GlobalDetector::new(1);
        assert!(det.report(0, true));
        assert!(!det.report(0, false), "decision is final");
        assert!(det.is_decided());
        assert_eq!(det.reports_received(), 2);
    }

    #[test]
    fn reset_restarts_the_detector() {
        let mut det = GlobalDetector::new(2);
        det.report(0, true);
        det.report(1, true);
        assert!(det.is_decided());
        det.reset();
        assert!(!det.is_decided());
        assert_eq!(det.converged_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn unknown_block_is_rejected() {
        GlobalDetector::new(2).report(5, true);
    }

    proptest! {
        /// The detector decides if and only if, after its last processed
        /// report, every block's most recent report said "converged".
        #[test]
        fn prop_detector_matches_reference_semantics(
            reports in proptest::collection::vec((0usize..4, proptest::bool::ANY), 1..60)
        ) {
            let mut det = GlobalDetector::new(4);
            let mut latest = [false; 4];
            let mut decided_ref = false;
            for &(b, c) in &reports {
                let fired = det.report(b, c);
                if !decided_ref {
                    latest[b] = c;
                    if latest.iter().all(|&x| x) {
                        decided_ref = true;
                        prop_assert!(fired);
                    } else {
                        prop_assert!(!fired);
                    }
                } else {
                    prop_assert!(!fired);
                }
            }
            prop_assert_eq!(det.is_decided(), decided_ref);
        }

        /// Local convergence is declared exactly when the last `streak`
        /// residuals were all below epsilon.
        #[test]
        fn prop_local_convergence_matches_window_rule(
            residuals in proptest::collection::vec(0.0f64..2e-6, 1..50),
            streak in 1usize..5,
        ) {
            let eps = 1e-6;
            let mut lc = LocalConvergence::new(eps, streak);
            for r in &residuals {
                lc.observe(*r);
            }
            // Reference rule: converged iff the trailing run of
            // under-threshold residuals is at least `streak` long (any larger
            // residual cancels an earlier streak, so only the tail matters).
            let expected = residuals.iter().rev().take_while(|r| **r < eps).count() >= streak;
            prop_assert_eq!(lc.is_converged(), expected);
        }
    }
}
