//! Run reports.
//!
//! Every runtime returns a [`RunReport`]: the timing measure appropriate to
//! the back-end (wall-clock seconds for the threaded runtime, virtual seconds
//! for the simulated one), per-block iteration counts, message statistics,
//! the assembled solution and whether the run converged. The benchmark
//! harness turns collections of reports into the rows of Tables 2 and 3 and
//! the series of Figure 3, so the report also knows how to compute the
//! paper's "speed ratio" (synchronous time divided by asynchronous time).

use crate::config::ExecutionMode;
use serde::{Deserialize, Serialize};

/// The outcome of one solver run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Execution mode of the run.
    pub mode: ExecutionMode,
    /// Label of the environment / back-end that produced the run
    /// (e.g. `"async PM2"`, `"threaded"`, `"sequential"`).
    pub backend: String,
    /// Execution time in seconds. Wall-clock for real back-ends, virtual time
    /// for the simulated one.
    pub elapsed_secs: f64,
    /// Number of local iterations performed by each block.
    pub iterations: Vec<u64>,
    /// Number of data messages sent.
    pub data_messages: u64,
    /// Number of control (state / stop) messages sent.
    pub control_messages: u64,
    /// Total application payload bytes carried by data messages.
    pub data_bytes: u64,
    /// Whether the run stopped because global convergence was detected
    /// (`false` = iteration limit hit).
    pub converged: bool,
    /// The assembled solution vector (concatenation of the blocks).
    pub solution: Vec<f64>,
    /// Residual of the worst block when the run stopped.
    pub final_residual: f64,
}

impl RunReport {
    /// Mean number of iterations per block.
    pub fn mean_iterations(&self) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        self.iterations.iter().sum::<u64>() as f64 / self.iterations.len() as f64
    }

    /// Largest number of iterations performed by any block.
    pub fn max_iterations(&self) -> u64 {
        self.iterations.iter().copied().max().unwrap_or(0)
    }

    /// Smallest number of iterations performed by any block.
    pub fn min_iterations(&self) -> u64 {
        self.iterations.iter().copied().min().unwrap_or(0)
    }

    /// Imbalance ratio between the most and least active blocks
    /// (1.0 = perfectly balanced; asynchronous runs on heterogeneous grids
    /// are expected to be well above 1).
    pub fn iteration_imbalance(&self) -> f64 {
        let min = self.min_iterations();
        if min == 0 {
            return f64::INFINITY;
        }
        self.max_iterations() as f64 / min as f64
    }

    /// The paper's "speed ratio": the reference (synchronous) time divided by
    /// this run's time.
    pub fn speed_ratio_vs(&self, reference: &RunReport) -> f64 {
        assert!(self.elapsed_secs > 0.0, "elapsed time must be positive");
        reference.elapsed_secs / self.elapsed_secs
    }

    /// Total number of messages (data + control).
    pub fn total_messages(&self) -> u64 {
        self.data_messages + self.control_messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(mode: ExecutionMode, secs: f64, iters: Vec<u64>) -> RunReport {
        RunReport {
            mode,
            backend: "test".to_string(),
            elapsed_secs: secs,
            iterations: iters,
            data_messages: 10,
            control_messages: 4,
            data_bytes: 1_000,
            converged: true,
            solution: vec![0.0],
            final_residual: 1e-9,
        }
    }

    #[test]
    fn iteration_statistics() {
        let r = report(ExecutionMode::Asynchronous, 2.0, vec![10, 20, 30]);
        assert_eq!(r.mean_iterations(), 20.0);
        assert_eq!(r.max_iterations(), 30);
        assert_eq!(r.min_iterations(), 10);
        assert_eq!(r.iteration_imbalance(), 3.0);
        assert_eq!(r.total_messages(), 14);
    }

    #[test]
    fn empty_iteration_vector_is_handled() {
        let r = report(ExecutionMode::Synchronous, 1.0, vec![]);
        assert_eq!(r.mean_iterations(), 0.0);
        assert_eq!(r.max_iterations(), 0);
    }

    #[test]
    fn zero_iteration_block_gives_infinite_imbalance() {
        let r = report(ExecutionMode::Asynchronous, 1.0, vec![0, 5]);
        assert!(r.iteration_imbalance().is_infinite());
    }

    #[test]
    fn speed_ratio_matches_paper_definition() {
        let sync = report(ExecutionMode::Synchronous, 914.0, vec![100]);
        let async_run = report(ExecutionMode::Asynchronous, 507.0, vec![120]);
        let ratio = async_run.speed_ratio_vs(&sync);
        assert!((ratio - 914.0 / 507.0).abs() < 1e-12);
        // the synchronous run compared to itself has ratio 1
        assert!((sync.speed_ratio_vs(&sync) - 1.0).abs() < 1e-12);
    }
}
