//! Run reports.
//!
//! Every runtime returns a [`RunReport`]: the timing measure appropriate to
//! the back-end (wall-clock seconds for the threaded runtime, virtual seconds
//! for the simulated one), per-block iteration counts, message statistics,
//! the assembled solution and whether the run converged. The benchmark
//! harness turns collections of reports into the rows of Tables 2 and 3 and
//! the series of Figure 3, so the report also knows how to compute the
//! paper's "speed ratio" (synchronous time divided by asynchronous time).

use aiac_obs::{MetricDirection, MetricsRegistry};
use serde::{Deserialize, Serialize};

use crate::config::{ConfigError, ExecutionMode};

/// Why a run could not produce a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunError {
    /// The run configuration failed validation before any work started.
    InvalidConfig(ConfigError),
    /// The executor's workers exited without delivering results for these
    /// blocks (sorted ascending) — a worker died or was torn down early.
    MissingResults {
        /// The block indices with no result.
        missing: Vec<usize>,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidConfig(err) => write!(f, "invalid run configuration: {err}"),
            RunError::MissingResults { missing } => write!(
                f,
                "workers exited without delivering results for {} of the blocks: {missing:?}",
                missing.len()
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::InvalidConfig(err) => Some(err),
            RunError::MissingResults { .. } => None,
        }
    }
}

impl From<ConfigError> for RunError {
    fn from(err: ConfigError) -> Self {
        RunError::InvalidConfig(err)
    }
}

/// The outcome of one solver run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Execution mode of the run.
    pub mode: ExecutionMode,
    /// Label of the environment / back-end that produced the run
    /// (e.g. `"async PM2"`, `"threaded"`, `"sequential"`).
    pub backend: String,
    /// Execution time in seconds. Wall-clock for real back-ends, virtual time
    /// for the simulated one.
    pub elapsed_secs: f64,
    /// Number of local iterations performed by each block.
    pub iterations: Vec<u64>,
    /// Number of data messages sent.
    pub data_messages: u64,
    /// Number of control (state / stop) messages sent.
    pub control_messages: u64,
    /// Total application payload bytes carried by data messages.
    pub data_bytes: u64,
    /// Number of data payloads superseded by a newer iterate before the
    /// destination consumed them. Non-zero only for back-ends with coalescing
    /// mailboxes (the threaded executor); queue-based and simulated back-ends
    /// report 0.
    pub coalesced_messages: u64,
    /// Peak number of simultaneously buffered data payloads. For the threaded
    /// executor this is the mailbox high-water mark, bounded by the
    /// dependency-edge count; back-ends without mailboxes report 0.
    pub peak_mailbox_occupancy: u64,
    /// Times an iteration fell back to the copying `update_block` path
    /// instead of the in-place `update_block_into`. A kernel with a native
    /// in-place update runs the whole data plane zero-copy, so this is
    /// structurally 0 regardless of scheduling — which makes it a
    /// *deterministic* gateable metric even on the threaded back-end.
    pub payload_clones: u64,
    /// Payload bytes copied by those fallback iterations (8 bytes per `f64`).
    pub bytes_copied: u64,
    /// Blocks an idle worker took from another worker's deque (successful
    /// steals). Non-zero only for the threaded executor's asynchronous
    /// work-stealing pool; the synchronous mode runs a static partition and
    /// reports a *structural* 0, as do the shared-FIFO policy and the other
    /// back-ends.
    pub steals: u64,
    /// Steal attempts that found the victim empty or lost the claiming race.
    /// Same structural-zero rule as [`RunReport::steals`].
    pub failed_steal_attempts: u64,
    /// Publishes whose ready dependants were pushed onto the publishing
    /// worker's own deque (the locality bias keeping the fresh payload
    /// cache-hot). Same structural-zero rule as [`RunReport::steals`].
    pub local_pushes: u64,
    /// Times a worker exhausted its pop → steal sweep → overflow queue →
    /// steal-with-backoff sequence and parked on the pool's condition
    /// variable. Same structural-zero rule as [`RunReport::steals`].
    pub queue_wait_events: u64,
    /// Total virtual seconds that compute phases and message receptions
    /// spent waiting for a free CPU core on their host. Non-zero only for
    /// the simulated back-end when blocks outnumber cores (oversubscribed
    /// placements); the real back-ends report 0.
    pub cpu_queue_secs: f64,
    /// Whether the run stopped because global convergence was detected *and*
    /// the final assembled state actually satisfied the threshold
    /// (`false` = iteration limit hit, or a premature stop — see
    /// [`RunReport::premature_stop`]).
    pub converged: bool,
    /// True when the centralized detector broadcast the stop order while a
    /// de-convergence report was still in flight: the run halted with a
    /// final residual at or above ε. Such a run is *not* reported as
    /// converged.
    pub premature_stop: bool,
    /// The assembled solution vector (concatenation of the blocks).
    pub solution: Vec<f64>,
    /// Residual of the worst block when the run stopped.
    pub final_residual: f64,
}

impl RunReport {
    /// Mean number of iterations per block.
    pub fn mean_iterations(&self) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        self.iterations.iter().sum::<u64>() as f64 / self.iterations.len() as f64
    }

    /// Largest number of iterations performed by any block.
    pub fn max_iterations(&self) -> u64 {
        self.iterations.iter().copied().max().unwrap_or(0)
    }

    /// Smallest number of iterations performed by any block.
    pub fn min_iterations(&self) -> u64 {
        self.iterations.iter().copied().min().unwrap_or(0)
    }

    /// Imbalance ratio between the most and least active blocks
    /// (1.0 = perfectly balanced; asynchronous runs on heterogeneous grids
    /// are expected to be well above 1).
    pub fn iteration_imbalance(&self) -> f64 {
        let min = self.min_iterations();
        if min == 0 {
            return f64::INFINITY;
        }
        self.max_iterations() as f64 / min as f64
    }

    /// The paper's "speed ratio": the reference (synchronous) time divided by
    /// this run's time.
    pub fn speed_ratio_vs(&self, reference: &RunReport) -> f64 {
        assert!(self.elapsed_secs > 0.0, "elapsed time must be positive");
        reference.elapsed_secs / self.elapsed_secs
    }

    /// Total number of messages (data + control).
    pub fn total_messages(&self) -> u64 {
        self.data_messages + self.control_messages
    }

    /// The report's counters as a [`MetricsRegistry`] — the one list the
    /// bench harness renders metric samples from, so a new counter becomes
    /// a bench metric by being registered here.
    ///
    /// `scheduler_deterministic` marks the four scheduler counters
    /// (`steals`, `failed_steal_attempts`, `local_pushes`,
    /// `queue_wait_events`) gateable. On the synchronous static partition
    /// they are structural zeros on any machine, so the harness passes
    /// `true` there; asynchronous counts depend on the thread interleaving
    /// and stay informational. The traffic counters are always
    /// interleaving-dependent on the threaded back-end; the two zero-copy
    /// counters are structural (a kernel either overrides the in-place
    /// update or it does not) and therefore always gateable.
    pub fn metrics_registry(&self, scheduler_deterministic: bool) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        for (name, value) in [
            ("total_iterations", self.iterations.iter().sum::<u64>()),
            ("data_messages", self.data_messages),
            ("coalesced_messages", self.coalesced_messages),
            ("peak_mailbox_occupancy", self.peak_mailbox_occupancy),
        ] {
            registry.counter(name, value, false, MetricDirection::Informational);
        }
        registry.counter(
            "payload_clones",
            self.payload_clones,
            true,
            MetricDirection::LowerIsBetter,
        );
        registry.counter(
            "bytes_copied",
            self.bytes_copied,
            true,
            MetricDirection::LowerIsBetter,
        );
        for (name, value) in [
            ("steals", self.steals),
            ("failed_steal_attempts", self.failed_steal_attempts),
            ("local_pushes", self.local_pushes),
            ("queue_wait_events", self.queue_wait_events),
        ] {
            let direction = if scheduler_deterministic {
                MetricDirection::LowerIsBetter
            } else {
                MetricDirection::Informational
            };
            registry.counter(name, value, scheduler_deterministic, direction);
        }
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(mode: ExecutionMode, secs: f64, iters: Vec<u64>) -> RunReport {
        RunReport {
            mode,
            backend: "test".to_string(),
            elapsed_secs: secs,
            iterations: iters,
            data_messages: 10,
            control_messages: 4,
            data_bytes: 1_000,
            coalesced_messages: 0,
            peak_mailbox_occupancy: 0,
            payload_clones: 0,
            bytes_copied: 0,
            steals: 0,
            failed_steal_attempts: 0,
            local_pushes: 0,
            queue_wait_events: 0,
            cpu_queue_secs: 0.0,
            converged: true,
            premature_stop: false,
            solution: vec![0.0],
            final_residual: 1e-9,
        }
    }

    #[test]
    fn iteration_statistics() {
        let r = report(ExecutionMode::Asynchronous, 2.0, vec![10, 20, 30]);
        assert_eq!(r.mean_iterations(), 20.0);
        assert_eq!(r.max_iterations(), 30);
        assert_eq!(r.min_iterations(), 10);
        assert_eq!(r.iteration_imbalance(), 3.0);
        assert_eq!(r.total_messages(), 14);
    }

    #[test]
    fn empty_iteration_vector_is_handled() {
        let r = report(ExecutionMode::Synchronous, 1.0, vec![]);
        assert_eq!(r.mean_iterations(), 0.0);
        assert_eq!(r.max_iterations(), 0);
    }

    #[test]
    fn zero_iteration_block_gives_infinite_imbalance() {
        let r = report(ExecutionMode::Asynchronous, 1.0, vec![0, 5]);
        assert!(r.iteration_imbalance().is_infinite());
    }

    #[test]
    fn run_error_display_names_the_missing_blocks() {
        let err = RunError::MissingResults {
            missing: vec![2, 5],
        };
        let text = err.to_string();
        assert!(text.contains("2 of the blocks"), "{text}");
        assert!(text.contains("[2, 5]"), "{text}");

        let config = RunError::from(ConfigError::ZeroWorkers);
        assert!(config.to_string().contains("num_workers"));
        assert!(std::error::Error::source(&config).is_some());
    }

    #[test]
    fn the_metrics_registry_flags_scheduler_counters_by_mode() {
        let mut r = report(ExecutionMode::Asynchronous, 1.0, vec![3, 4]);
        r.steals = 7;
        let by_interleaving = r.metrics_registry(false);
        assert_eq!(by_interleaving.get("total_iterations").unwrap().value, 7.0);
        assert!(!by_interleaving.get("steals").unwrap().deterministic);
        assert!(by_interleaving.get("payload_clones").unwrap().deterministic);

        let structural = r.metrics_registry(true);
        assert!(structural.get("steals").unwrap().deterministic);
        assert_eq!(structural.get("steals").unwrap().value, 7.0);
        // Names are committed in bench baselines: the full list, in order.
        let names: Vec<&str> = structural.snapshot().iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            [
                "total_iterations",
                "data_messages",
                "coalesced_messages",
                "peak_mailbox_occupancy",
                "payload_clones",
                "bytes_copied",
                "steals",
                "failed_steal_attempts",
                "local_pushes",
                "queue_wait_events",
            ]
        );
    }

    #[test]
    fn speed_ratio_matches_paper_definition() {
        let sync = report(ExecutionMode::Synchronous, 914.0, vec![100]);
        let async_run = report(ExecutionMode::Asynchronous, 507.0, vec![120]);
        let ratio = async_run.speed_ratio_vs(&sync);
        assert!((ratio - 914.0 / 507.0).abs() < 1e-12);
        // the synchronous run compared to itself has ratio 1
        assert!((sync.speed_ratio_vs(&sync) - 1.0).abs() < 1e-12);
    }
}
