//! The block dependency graph.
//!
//! Section 1.1 of the paper describes the communications of a block-iterative
//! algorithm "by means of a directed graph called the dependency graph".
//! [`DependencyGraph`] materialises that graph from an
//! [`crate::kernel::IterativeKernel`]: for each block it records both the
//! blocks it *reads from* (in-neighbours) and the blocks it must *send to*
//! (out-neighbours, the inverse relation), which is what the runtimes use to
//! route data messages.

use crate::kernel::IterativeKernel;
use serde::{Deserialize, Serialize};

/// The dependency graph of a block-decomposed problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyGraph {
    /// `in_neighbours[i]` = blocks whose data block `i` needs.
    in_neighbours: Vec<Vec<usize>>,
    /// `out_neighbours[i]` = blocks that need block `i`'s data.
    out_neighbours: Vec<Vec<usize>>,
}

impl DependencyGraph {
    /// Builds the graph by querying the kernel's
    /// [`IterativeKernel::dependencies`] for every block — the analogue of the
    /// first step of the paper's sparse-linear algorithm where every processor
    /// computes its dependency list and communicates it to the others.
    pub fn from_kernel(kernel: &dyn IterativeKernel) -> Self {
        let n = kernel.num_blocks();
        let mut in_neighbours = Vec::with_capacity(n);
        let mut out_neighbours = vec![Vec::new(); n];
        for i in 0..n {
            let mut deps = kernel.dependencies(i);
            deps.retain(|&d| d != i);
            deps.sort_unstable();
            deps.dedup();
            for &d in &deps {
                assert!(d < n, "block {i} depends on unknown block {d}");
                out_neighbours[d].push(i);
            }
            in_neighbours.push(deps);
        }
        for o in out_neighbours.iter_mut() {
            o.sort_unstable();
        }
        Self {
            in_neighbours,
            out_neighbours,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.in_neighbours.len()
    }

    /// Blocks whose data block `i` needs.
    pub fn in_neighbours(&self, i: usize) -> &[usize] {
        &self.in_neighbours[i]
    }

    /// Blocks that need block `i`'s data (where block `i` sends updates).
    pub fn out_neighbours(&self, i: usize) -> &[usize] {
        &self.out_neighbours[i]
    }

    /// Total number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.in_neighbours.iter().map(|v| v.len()).sum()
    }

    /// Maximum out-degree — the largest number of destinations any block
    /// sends to each iteration (drives the benefit of multiple sending
    /// threads).
    pub fn max_out_degree(&self) -> usize {
        self.out_neighbours
            .iter()
            .map(|v| v.len())
            .max()
            .unwrap_or(0)
    }

    /// True when every pair of distinct blocks is connected in both
    /// directions (the all-to-all pattern of the sparse linear problem with a
    /// dense dependency structure).
    pub fn is_all_to_all(&self) -> bool {
        let n = self.num_blocks();
        n > 0 && self.in_neighbours.iter().all(|v| v.len() == n - 1)
    }

    /// True when the graph is symmetric (i depends on j ⇔ j depends on i),
    /// which holds for both benchmark problems.
    pub fn is_symmetric(&self) -> bool {
        for (i, deps) in self.in_neighbours.iter().enumerate() {
            for &j in deps {
                if !self.in_neighbours[j].contains(&i) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::{Diverging, RingContraction};
    use crate::kernel::{BlockUpdate, DependencyView};

    #[test]
    fn ring_kernel_builds_a_ring_graph() {
        let g = DependencyGraph::from_kernel(&RingContraction::new(5));
        assert_eq!(g.num_blocks(), 5);
        assert_eq!(g.in_neighbours(0), &[1, 4]);
        assert_eq!(g.out_neighbours(0), &[1, 4]);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.max_out_degree(), 2);
        assert!(g.is_symmetric());
        assert!(!g.is_all_to_all());
    }

    #[test]
    fn independent_blocks_have_no_edges() {
        let g = DependencyGraph::from_kernel(&Diverging { blocks: 3 });
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_out_degree(), 0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn three_block_ring_is_all_to_all() {
        // with 3 blocks, left and right neighbours cover everyone else
        let g = DependencyGraph::from_kernel(&RingContraction::new(3));
        assert!(g.is_all_to_all());
    }

    /// A kernel whose declared dependencies contain duplicates and
    /// self-references; the graph must clean them up.
    struct Messy;

    impl IterativeKernel for Messy {
        fn num_blocks(&self) -> usize {
            3
        }
        fn block_len(&self, _b: usize) -> usize {
            1
        }
        fn initial_block(&self, _b: usize) -> Vec<f64> {
            vec![0.0]
        }
        fn dependencies(&self, b: usize) -> Vec<usize> {
            vec![b, 0, 0, 2]
        }
        fn update_block(&self, _b: usize, local: &[f64], _o: &DependencyView) -> BlockUpdate {
            BlockUpdate {
                values: local.to_vec(),
                residual: 0.0,
            }
        }
    }

    #[test]
    fn duplicates_and_self_dependencies_are_removed() {
        let g = DependencyGraph::from_kernel(&Messy);
        assert_eq!(g.in_neighbours(0), &[2]);
        assert_eq!(g.in_neighbours(1), &[0, 2]);
        assert_eq!(g.in_neighbours(2), &[0]);
        assert_eq!(g.out_neighbours(0), &[1, 2]);
    }
}
