//! Messages exchanged by the AIAC runtimes.
//!
//! The paper's algorithms exchange three kinds of messages (Section 4.3):
//! block data updates (sent asynchronously after each local iteration), local
//! convergence *state* messages sent to the central detector only when the
//! state changes, and the final *stop* signal broadcast by the detector once
//! global convergence is reached. Both the threaded and the simulated
//! runtimes use this single message type so their behaviour can be compared
//! directly.

use crate::kernel::Payload;
use serde::{Deserialize, Serialize};

/// A message flowing between processors (or between a processor and the
/// central convergence detector).
///
/// Data payloads are shared [`Payload`]s: cloning a message (as the simulated
/// network does when fanning an update out to several receivers) bumps a
/// refcount instead of copying the values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// New values of a block, sent to every processor that depends on it.
    Data {
        /// Sending block.
        from: usize,
        /// Local iteration number at which these values were produced.
        iteration: u64,
        /// The block values (shared, not copied, between in-process senders
        /// and receivers).
        values: Payload,
    },
    /// Local convergence state report to the central detector; sent only when
    /// the state changes to limit network load.
    State {
        /// Reporting block.
        from: usize,
        /// Whether that block currently believes it has locally converged.
        converged: bool,
    },
    /// Order to stop computing, broadcast by the detector once every block is
    /// in local convergence.
    Stop,
}

impl Message {
    /// The block this message originates from, when applicable.
    pub fn sender(&self) -> Option<usize> {
        match self {
            Message::Data { from, .. } | Message::State { from, .. } => Some(*from),
            Message::Stop => None,
        }
    }

    /// Fixed wire header every message variant pays: an 8-byte variant tag.
    /// All variants are modelled uniformly as this header plus their fields,
    /// so the transfer-time model charges consistent sizes across message
    /// kinds.
    pub const HEADER_BYTES: u64 = 8;

    /// Wire size of a [`Message::Data`] carrying `num_values` f64 values:
    /// the common header, the sender id (8 bytes), the iteration tag
    /// (8 bytes) and the payload itself. Exposed separately so executors can
    /// account for data traffic without materialising a `Message`.
    pub fn data_payload_bytes(num_values: usize) -> u64 {
        Self::HEADER_BYTES + 16 + (num_values * std::mem::size_of::<f64>()) as u64
    }

    /// Application wire size in bytes — header plus fields, uniformly across
    /// the variants — used for the transfer-time model (data values dominate;
    /// control messages are a few bytes).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Message::Data { values, .. } => Self::data_payload_bytes(values.len()),
            // sender id (8 bytes) + the convergence flag (1 byte)
            Message::State { .. } => Self::HEADER_BYTES + 9,
            // the stop order carries no fields at all
            Message::Stop => Self::HEADER_BYTES,
        }
    }

    /// True for data-update messages.
    pub fn is_data(&self) -> bool {
        matches!(self, Message::Data { .. })
    }

    /// True for control (state / stop) messages.
    pub fn is_control(&self) -> bool {
        !self.is_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_message_size_scales_with_values() {
        let small = Message::Data {
            from: 0,
            iteration: 1,
            values: vec![0.0; 10].into(),
        };
        let large = Message::Data {
            from: 0,
            iteration: 1,
            values: vec![0.0; 1000].into(),
        };
        // header (8) + from (8) + iteration (8) + 10 × 8 payload bytes
        assert_eq!(small.payload_bytes(), 104);
        assert_eq!(large.payload_bytes() - small.payload_bytes(), 990 * 8);
    }

    #[test]
    fn every_variant_pays_the_same_header() {
        let empty = Message::Data {
            from: 0,
            iteration: 0,
            values: vec![].into(),
        };
        assert_eq!(empty.payload_bytes(), Message::HEADER_BYTES + 16);
        assert_eq!(empty.payload_bytes(), Message::data_payload_bytes(0));
        let state = Message::State {
            from: 0,
            converged: false,
        };
        assert_eq!(state.payload_bytes(), Message::HEADER_BYTES + 9);
        assert_eq!(Message::Stop.payload_bytes(), Message::HEADER_BYTES);
    }

    #[test]
    fn control_messages_are_small() {
        let state = Message::State {
            from: 3,
            converged: true,
        };
        assert!(state.payload_bytes() <= 24);
        assert!(Message::Stop.payload_bytes() <= 24);
        assert!(state.is_control());
        assert!(Message::Stop.is_control());
    }

    #[test]
    fn sender_is_reported_for_data_and_state() {
        let data = Message::Data {
            from: 2,
            iteration: 0,
            values: vec![].into(),
        };
        assert_eq!(data.sender(), Some(2));
        assert!(data.is_data());
        let state = Message::State {
            from: 7,
            converged: false,
        };
        assert_eq!(state.sender(), Some(7));
        assert_eq!(Message::Stop.sender(), None);
    }
}
