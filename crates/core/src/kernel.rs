//! The [`IterativeKernel`] trait — how a problem is presented to the runtime.
//!
//! Following the block formulation of Section 1 of the paper, a problem is a
//! fixed-point iteration `X_{k+1} = G(X_k)` whose unknown vector is split into
//! `m` block-components, one per processor. The runtime only needs to know:
//!
//! * how many blocks there are and how long each one is;
//! * which other blocks each block depends on (the dependency graph);
//! * how to update one block given the current local values and whatever
//!   versions of the dependency blocks happen to be available — this is the
//!   `G_i` of Algorithm 1, and the fact that the "whatever versions" may be
//!   stale is precisely what makes the iteration asynchronous;
//! * (for the simulated runtime only) how expensive one local update is and
//!   how many bytes a data message carries.
//!
//! Both benchmark problems of the paper implement this trait in
//! `aiac-solvers`, and the test-suite adds several synthetic kernels.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A block iterate as it travels through the data plane.
///
/// Payloads are immutable and reference-counted: publishing one on a
/// dependency edge, storing it in a [`DependencyView`] or handing it to a
/// consumer clones the `Arc` (a refcount bump), never the `f64` data. The
/// only places a payload's numbers are ever copied are the one-time
/// conversion of the final block values into the assembled solution and the
/// compatibility fallback of [`IterativeKernel::update_block_into`] — both
/// tracked by the `payload_clones` / `bytes_copied` counters of
/// [`crate::report::RunReport`].
pub type Payload = Arc<[f64]>;

/// The most recent block values a processor has received from the blocks it
/// depends on (plus, trivially, its own block).
///
/// Entries for blocks the processor does not depend on may be absent; the
/// initial values are used until a first message arrives. The entries are
/// shared [`Payload`]s: replacing one drops a reference, it does not copy or
/// free the data other processors may still be reading.
#[derive(Debug, Clone)]
pub struct DependencyView {
    blocks: Vec<Option<Payload>>,
}

impl DependencyView {
    /// Creates a view over `num_blocks` blocks with no data yet.
    pub fn new(num_blocks: usize) -> Self {
        Self {
            blocks: vec![None; num_blocks],
        }
    }

    /// Creates a view pre-filled with every block's initial values — the state
    /// every processor starts from ("only the first iteration begins at the
    /// same time on all the processors").
    pub fn from_initial(kernel: &dyn IterativeKernel) -> Self {
        let mut view = Self::new(kernel.num_blocks());
        for b in 0..kernel.num_blocks() {
            view.set(b, kernel.initial_block(b));
        }
        view
    }

    /// Number of block slots in the view.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Stores the latest values of block `id`. Accepts an existing
    /// [`Payload`] (stored by reference, zero copy) or a `Vec<f64>`
    /// (converted into a fresh payload).
    pub fn set(&mut self, id: usize, values: impl Into<Payload>) {
        assert!(
            id < self.blocks.len(),
            "DependencyView::set: block out of range"
        );
        self.blocks[id] = Some(values.into());
    }

    /// The latest values of block `id`, if any version has been stored.
    pub fn get(&self, id: usize) -> Option<&[f64]> {
        self.blocks.get(id).and_then(|b| b.as_deref())
    }

    /// The latest values of block `id`.
    ///
    /// # Panics
    /// Panics if no version of that block is available; kernels should only
    /// request blocks they declared as dependencies (which the runtimes always
    /// pre-fill with the initial values).
    pub fn expect(&self, id: usize) -> &[f64] {
        self.get(id)
            .unwrap_or_else(|| panic!("no data available for block {id}"))
    }

    /// True when at least one version of block `id` is available.
    pub fn has(&self, id: usize) -> bool {
        self.get(id).is_some()
    }
}

/// The result of one local block update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockUpdate {
    /// The new values of the block.
    pub values: Vec<f64>,
    /// The local residual `||X_i^t − X_i^{t−1}||_∞` used by the convergence
    /// detection (Section 1.2).
    pub residual: f64,
}

/// The result of one *in-place* local block update
/// (see [`IterativeKernel::update_block_into`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InPlaceUpdate {
    /// The local residual `||X_i^t − X_i^{t−1}||_∞`.
    pub residual: f64,
    /// True when the kernel fell back to the allocating
    /// [`IterativeKernel::update_block`] path and the new values were deep
    /// copied into the output buffer; false when the kernel wrote them
    /// directly. The runtimes surface this through the `payload_clones`
    /// counter so the zero-copy property is observable (and gateable).
    pub copied: bool,
}

/// A block-decomposed fixed-point problem.
pub trait IterativeKernel: Send + Sync {
    /// Number of block-components `m` (one per processor).
    fn num_blocks(&self) -> usize;

    /// Length (number of scalar unknowns) of block `block`.
    fn block_len(&self, block: usize) -> usize;

    /// Initial values `X_i^0` of block `block`.
    fn initial_block(&self, block: usize) -> Vec<f64>;

    /// The blocks whose data block `block` needs to compute its update
    /// (in-neighbours of `block` in the dependency graph, excluding itself).
    fn dependencies(&self, block: usize) -> Vec<usize>;

    /// Computes `G_i` for block `block`: one local iteration from the current
    /// local values and the latest available dependency data.
    fn update_block(&self, block: usize, local: &[f64], others: &DependencyView) -> BlockUpdate;

    /// Computes `G_i` for block `block` directly into `out` (which the
    /// runtimes hand over as the back buffer of the double-buffered block
    /// state), returning the residual.
    ///
    /// The default implementation calls [`IterativeKernel::update_block`] and
    /// copies the resulting vector — correct for every kernel, but it is a
    /// deep copy on the hot path and is reported as such via
    /// [`InPlaceUpdate::copied`]. Kernels on the benchmark path override this
    /// to write `out` directly (and should keep `update_block` delegating to
    /// it so both entry points stay bit-identical).
    ///
    /// # Panics
    /// Panics if `out.len() != block_len(block)` (the runtimes always size
    /// the buffer correctly).
    fn update_block_into(
        &self,
        block: usize,
        local: &[f64],
        others: &DependencyView,
        out: &mut [f64],
    ) -> InPlaceUpdate {
        let update = self.update_block(block, local, others);
        assert_eq!(
            out.len(),
            update.values.len(),
            "update_block_into: output buffer length mismatch"
        );
        out.copy_from_slice(&update.values);
        InPlaceUpdate {
            residual: update.residual,
            copied: true,
        }
    }

    /// Estimated cost of one local update of `block`, in seconds on the
    /// reference machine. Only the *relative* magnitudes matter; the simulated
    /// runtime multiplies this by the host speed factor. The default assumes
    /// one microsecond per unknown.
    fn iteration_cost(&self, block: usize) -> f64 {
        self.block_len(block) as f64 * 1e-6
    }

    /// Payload size, in bytes, of a data message from block `from` to block
    /// `to`. The default sends the whole block as f64 values, which is what
    /// the paper's implementations do for the values the destination depends
    /// on.
    fn message_bytes(&self, from: usize, to: usize) -> u64 {
        let _ = to;
        (self.block_len(from) * std::mem::size_of::<f64>()) as u64
    }

    /// Distance between two versions of a block, in the same units as the
    /// residual returned by [`IterativeKernel::update_block`].
    ///
    /// The default is the max norm of the difference; kernels whose residual
    /// is scaled (e.g. the chemical problem, which weights its two species by
    /// their 10⁶ / 10¹² magnitudes) must override it consistently, because
    /// the asynchronous runtimes compare this distance against the same ε as
    /// the residual when tracking local convergence.
    fn residual_between(&self, block: usize, a: &[f64], b: &[f64]) -> f64 {
        let _ = block;
        aiac_linalg::norms::max_norm_diff(a, b)
    }

    /// Number of synchronisation points (global collective exchanges) one
    /// iteration of the *synchronous* version of the algorithm requires.
    ///
    /// Most fixed-point kernels need exactly one (the end-of-iteration
    /// exchange plus convergence test). The paper's synchronous baseline for
    /// the non-linear problem, however, applies Newton to the *entire*
    /// system and synchronises inside the parallel linear solver at every
    /// inner iteration; kernels can override this to let the simulated SISC
    /// runtime charge those extra collectives.
    fn sync_collectives_per_iteration(&self) -> usize {
        1
    }

    /// Total problem size (sum of the block lengths).
    fn total_len(&self) -> usize {
        (0..self.num_blocks()).map(|b| self.block_len(b)).sum()
    }

    /// Assembles a full solution vector from per-block values, in block order.
    fn assemble(&self, blocks: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(
            blocks.len(),
            self.num_blocks(),
            "assemble: block count mismatch"
        );
        let mut out = Vec::with_capacity(self.total_len());
        for (b, values) in blocks.iter().enumerate() {
            assert_eq!(
                values.len(),
                self.block_len(b),
                "assemble: block {b} length mismatch"
            );
            out.extend_from_slice(values);
        }
        out
    }
}

#[cfg(test)]
pub(crate) mod test_kernels {
    //! Small synthetic kernels shared by the runtime tests.

    use super::*;

    /// A linear contraction `x ← a·x_left + b·x_self + c·x_right + d`
    /// distributed over `blocks` scalar blocks arranged in a ring. With
    /// `|a| + |b| + |c| < 1` it converges from any starting point, both
    /// synchronously and asynchronously.
    #[derive(Debug, Clone)]
    pub struct RingContraction {
        pub blocks: usize,
        pub a: f64,
        pub b: f64,
        pub c: f64,
        pub d: f64,
        /// Virtual cost of one local iteration on the reference machine, in
        /// seconds. Kept comparable to (or larger than) wide-area message
        /// latencies so asynchronous runs keep receiving fresh data, as in the
        /// paper's compute-bound workloads.
        pub cost_secs: f64,
        /// Artificial CPU work per real (threaded) iteration, so real-thread
        /// tests also run in a regime where communication keeps up with
        /// computation.
        pub spin: usize,
    }

    impl RingContraction {
        pub fn new(blocks: usize) -> Self {
            Self {
                blocks,
                a: 0.2,
                b: 0.3,
                c: 0.2,
                d: 1.0,
                cost_secs: 0.02,
                spin: 2000,
            }
        }

        /// The exact fixed point: every component equals d / (1 - a - b - c).
        pub fn fixed_point(&self) -> f64 {
            self.d / (1.0 - self.a - self.b - self.c)
        }
    }

    impl IterativeKernel for RingContraction {
        fn num_blocks(&self) -> usize {
            self.blocks
        }

        fn block_len(&self, _block: usize) -> usize {
            1
        }

        fn initial_block(&self, _block: usize) -> Vec<f64> {
            vec![0.0]
        }

        fn dependencies(&self, block: usize) -> Vec<usize> {
            if self.blocks == 1 {
                return Vec::new();
            }
            let left = (block + self.blocks - 1) % self.blocks;
            let right = (block + 1) % self.blocks;
            if left == right {
                vec![left]
            } else {
                vec![left, right]
            }
        }

        fn update_block(
            &self,
            block: usize,
            local: &[f64],
            others: &DependencyView,
        ) -> BlockUpdate {
            let mut values = vec![0.0; local.len()];
            let update = self.update_block_into(block, local, others, &mut values);
            BlockUpdate {
                values,
                residual: update.residual,
            }
        }

        fn update_block_into(
            &self,
            block: usize,
            local: &[f64],
            others: &DependencyView,
            out: &mut [f64],
        ) -> InPlaceUpdate {
            let left = (block + self.blocks - 1) % self.blocks;
            let right = (block + 1) % self.blocks;
            let xl = others.get(left).map_or(0.0, |v| v[0]);
            let xr = others.get(right).map_or(0.0, |v| v[0]);
            // Burn a controlled amount of CPU so real-thread iterations are
            // slower than channel deliveries (keeps the AIAC tests in the
            // compute-bound regime the paper studies).
            let mut noise = 0.0f64;
            for k in 0..self.spin {
                noise += (k as f64 * 1e-3).sin();
            }
            let new = self.a * xl + self.b * local[0] + self.c * xr + self.d + noise * 0.0;
            out[0] = new;
            InPlaceUpdate {
                residual: (new - local[0]).abs(),
                copied: false,
            }
        }

        fn iteration_cost(&self, _block: usize) -> f64 {
            self.cost_secs
        }
    }

    /// A deliberately non-convergent kernel (expansion by a factor 2) used to
    /// exercise the iteration limits.
    #[derive(Debug, Clone)]
    pub struct Diverging {
        pub blocks: usize,
    }

    impl IterativeKernel for Diverging {
        fn num_blocks(&self) -> usize {
            self.blocks
        }

        fn block_len(&self, _block: usize) -> usize {
            1
        }

        fn initial_block(&self, _block: usize) -> Vec<f64> {
            vec![1.0]
        }

        fn dependencies(&self, _block: usize) -> Vec<usize> {
            Vec::new()
        }

        fn update_block(
            &self,
            _block: usize,
            local: &[f64],
            _others: &DependencyView,
        ) -> BlockUpdate {
            let new = local[0] * 2.0;
            BlockUpdate {
                residual: (new - local[0]).abs(),
                values: vec![new],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_kernels::*;
    use super::*;

    #[test]
    fn dependency_view_stores_and_returns_blocks() {
        let mut view = DependencyView::new(3);
        assert!(!view.has(1));
        view.set(1, vec![1.0, 2.0]);
        assert!(view.has(1));
        assert_eq!(view.expect(1), &[1.0, 2.0]);
        assert_eq!(view.get(0), None);
        assert_eq!(view.num_blocks(), 3);
    }

    #[test]
    #[should_panic(expected = "no data available")]
    fn expect_panics_on_missing_block() {
        DependencyView::new(2).expect(0);
    }

    #[test]
    fn from_initial_prefills_every_block() {
        let kernel = RingContraction::new(4);
        let view = DependencyView::from_initial(&kernel);
        for b in 0..4 {
            assert_eq!(view.expect(b), &[0.0]);
        }
    }

    #[test]
    fn ring_contraction_dependencies_are_neighbours() {
        let kernel = RingContraction::new(5);
        assert_eq!(kernel.dependencies(0), vec![4, 1]);
        assert_eq!(kernel.dependencies(2), vec![1, 3]);
        let two = RingContraction::new(2);
        assert_eq!(two.dependencies(0), vec![1]);
    }

    #[test]
    fn ring_contraction_converges_sequentially_to_fixed_point() {
        let kernel = RingContraction::new(4);
        let mut view = DependencyView::from_initial(&kernel);
        let mut blocks: Vec<Vec<f64>> = (0..4).map(|b| kernel.initial_block(b)).collect();
        for _ in 0..200 {
            for (b, block) in blocks.iter_mut().enumerate() {
                let update = kernel.update_block(b, block, &view);
                *block = update.values.clone();
                view.set(b, update.values);
            }
        }
        let expected = kernel.fixed_point();
        for block in &blocks {
            assert!((block[0] - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn default_cost_and_message_size_scale_with_block_length() {
        let kernel = RingContraction::new(3);
        assert_eq!(kernel.block_len(0), 1);
        assert_eq!(kernel.message_bytes(0, 1), 8);
        assert!(kernel.iteration_cost(0) > 0.0);
        assert_eq!(kernel.total_len(), 3);
    }

    #[test]
    fn assemble_concatenates_blocks_in_order() {
        let kernel = RingContraction::new(3);
        let full = kernel.assemble(&[vec![1.0], vec![2.0], vec![3.0]]);
        assert_eq!(full, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn diverging_kernel_grows_without_bound() {
        let kernel = Diverging { blocks: 1 };
        let view = DependencyView::from_initial(&kernel);
        let mut x = kernel.initial_block(0);
        for _ in 0..10 {
            x = kernel.update_block(0, &x, &view).values;
        }
        assert!(x[0] > 1000.0);
    }
}
