//! Block-to-host placement.
//!
//! The paper's decomposition experiments (Figure 3) hinge on what happens
//! when the problem is cut into more blocks than there are machines. Where a
//! block lands then matters twice: co-located blocks share the host's cores
//! (their compute phases are serialised by
//! [`aiac_netsim::sched::HostScheduler`]), and messages between co-located
//! blocks skip the network entirely. [`Placement`] computes a deterministic
//! block → host assignment under one of three [`PlacementPolicy`] rules:
//!
//! * **round-robin** — block `b` on host `b mod H`; the historical default,
//!   spreads neighbouring blocks across hosts;
//! * **site-packed** — contiguous chunks of blocks on hosts ordered by site,
//!   keeping neighbouring blocks on the same host/site so their traffic
//!   stays off the inter-site links;
//! * **speed-weighted** — hosts receive block counts proportional to their
//!   relative speed, so a Duron 800 is not asked to do the work of a
//!   Pentium IV 2.4 (the paper's heterogeneous cluster is exactly this
//!   situation).

use aiac_netsim::host::HostId;
use aiac_netsim::topology::GridTopology;
use serde::{Deserialize, Serialize};

/// How blocks are assigned to hosts when they outnumber them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Block `b` runs on host `b mod num_hosts`.
    #[default]
    RoundRobin,
    /// Contiguous chunks of blocks on hosts ordered by site.
    SitePacked,
    /// Per-host block counts proportional to host speed.
    SpeedWeighted,
}

impl PlacementPolicy {
    /// Every policy, in display order.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::SitePacked,
        PlacementPolicy::SpeedWeighted,
    ];

    /// Short label used in tables and CLIs.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::SitePacked => "site-packed",
            PlacementPolicy::SpeedWeighted => "speed-weighted",
        }
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for PlacementPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "rr" | "round-robin" | "round_robin" => Ok(PlacementPolicy::RoundRobin),
            "packed" | "site-packed" | "site_packed" => Ok(PlacementPolicy::SitePacked),
            "speed" | "speed-weighted" | "speed_weighted" => Ok(PlacementPolicy::SpeedWeighted),
            other => Err(format!(
                "unknown placement policy {other:?} \
                 (expected round-robin, site-packed or speed-weighted)"
            )),
        }
    }
}

/// A concrete block → host assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    policy: PlacementPolicy,
    assignment: Vec<HostId>,
    num_hosts: usize,
}

impl Placement {
    /// Computes the assignment of `num_blocks` blocks onto the hosts of
    /// `topology` under `policy`. Deterministic: the same inputs always give
    /// the same assignment.
    ///
    /// # Panics
    /// Panics if the topology has no hosts.
    pub fn compute(policy: PlacementPolicy, num_blocks: usize, topology: &GridTopology) -> Self {
        let hosts = topology.num_hosts();
        assert!(hosts > 0, "placement needs at least one host");
        let assignment = match policy {
            PlacementPolicy::RoundRobin => (0..num_blocks).map(|b| HostId(b % hosts)).collect(),
            PlacementPolicy::SitePacked => {
                // Hosts ordered by (site, id); block chunks stay contiguous so
                // neighbouring blocks share a host, then a site.
                let mut order: Vec<HostId> = topology.hosts().iter().map(|h| h.id).collect();
                order.sort_by_key(|id| (topology.host(*id).site, *id));
                let base = num_blocks / hosts;
                let extra = num_blocks % hosts;
                let mut assignment = Vec::with_capacity(num_blocks);
                for (rank, host) in order.iter().enumerate() {
                    let count = base + usize::from(rank < extra);
                    assignment.extend(std::iter::repeat_n(*host, count));
                }
                assignment
            }
            PlacementPolicy::SpeedWeighted => {
                // Greedy apportionment: each block goes to the host whose
                // per-speed load would stay lowest, which converges to counts
                // proportional to speed (ties break towards the lowest id).
                let speeds = topology.speed_vector();
                let mut counts = vec![0usize; hosts];
                let mut assignment = Vec::with_capacity(num_blocks);
                for _ in 0..num_blocks {
                    let host = (0..hosts)
                        .min_by(|&a, &b| {
                            let la = (counts[a] + 1) as f64 / speeds[a];
                            let lb = (counts[b] + 1) as f64 / speeds[b];
                            la.partial_cmp(&lb).expect("speeds are positive")
                        })
                        .expect("at least one host");
                    counts[host] += 1;
                    assignment.push(HostId(host));
                }
                assignment
            }
        };
        Self {
            policy,
            assignment,
            num_hosts: hosts,
        }
    }

    /// The policy that produced this assignment.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Number of blocks placed.
    pub fn num_blocks(&self) -> usize {
        self.assignment.len()
    }

    /// The host block `block` runs on.
    ///
    /// # Panics
    /// Panics when the block index is out of range.
    pub fn host_of(&self, block: usize) -> HostId {
        self.assignment[block]
    }

    /// Number of blocks placed on each host, in host order.
    pub fn blocks_per_host(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_hosts];
        for host in &self.assignment {
            counts[host.0] += 1;
        }
        counts
    }

    /// Largest number of blocks sharing one host (1 = no oversubscription).
    pub fn max_colocation(&self) -> usize {
        self.blocks_per_host().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_robin_matches_the_modulo_rule() {
        let topo = GridTopology::homogeneous_cluster(4);
        let p = Placement::compute(PlacementPolicy::RoundRobin, 10, &topo);
        for b in 0..10 {
            assert_eq!(p.host_of(b), HostId(b % 4));
        }
        assert_eq!(p.blocks_per_host(), vec![3, 3, 2, 2]);
        assert_eq!(p.max_colocation(), 3);
    }

    #[test]
    fn site_packed_keeps_blocks_contiguous_and_grouped_by_site() {
        // 6 hosts over 3 sites (round-robin host→site in the preset).
        let topo = GridTopology::ethernet_3_sites(6);
        let p = Placement::compute(PlacementPolicy::SitePacked, 12, &topo);
        // Every host gets exactly two consecutive blocks.
        assert_eq!(p.blocks_per_host(), vec![2; 6]);
        for pair in 0..6 {
            assert_eq!(p.host_of(2 * pair), p.host_of(2 * pair + 1));
        }
        // Consecutive chunks never jump back to an earlier site.
        let mut last_site = 0;
        for b in 0..12 {
            let site = topo.host(p.host_of(b)).site.0;
            assert!(site >= last_site, "block {b} went back to site {site}");
            last_site = site;
        }
    }

    #[test]
    fn speed_weighted_gives_fast_hosts_more_blocks() {
        let topo = GridTopology::local_hetero_cluster(6);
        let p = Placement::compute(PlacementPolicy::SpeedWeighted, 24, &topo);
        let counts = p.blocks_per_host();
        let speeds = topo.speed_vector();
        // The P4 2.4 hosts (speed 1.0) must carry strictly more blocks than
        // the Duron hosts (speed 1/3), roughly in proportion.
        for h in 0..6 {
            for g in 0..6 {
                if speeds[h] > speeds[g] {
                    assert!(
                        counts[h] >= counts[g],
                        "slower host {g} got more blocks: {counts:?}"
                    );
                }
            }
        }
        let duron = counts[0];
        let p4 = counts[2];
        assert!(p4 >= 2 * duron, "expected ~3x ratio, got {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 24);
    }

    #[test]
    fn fewer_blocks_than_hosts_prefers_the_fast_hosts() {
        let topo = GridTopology::local_hetero_cluster(6);
        let p = Placement::compute(PlacementPolicy::SpeedWeighted, 2, &topo);
        // Hosts 2 and 5 are the P4 2.4 machines.
        assert_eq!(p.host_of(0), HostId(2));
        assert_eq!(p.host_of(1), HostId(5));
    }

    #[test]
    fn policy_labels_round_trip_through_fromstr() {
        for policy in PlacementPolicy::ALL {
            let parsed: PlacementPolicy = policy.label().parse().unwrap();
            assert_eq!(parsed, policy);
        }
        assert_eq!(
            "rr".parse::<PlacementPolicy>().unwrap(),
            PlacementPolicy::RoundRobin
        );
        assert_eq!(
            "speed".parse::<PlacementPolicy>().unwrap(),
            PlacementPolicy::SpeedWeighted
        );
        assert!("nope".parse::<PlacementPolicy>().is_err());
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::RoundRobin);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every policy places every block on a valid host and never leaves a
        /// host overloaded by more than the unavoidable ceiling (for the
        /// balanced policies on a homogeneous platform).
        #[test]
        fn prop_placements_are_valid_and_balanced(
            blocks in 1usize..96,
            hosts in 1usize..12,
        ) {
            let topo = GridTopology::homogeneous_cluster(hosts);
            let ceiling = blocks.div_ceil(hosts);
            for policy in PlacementPolicy::ALL {
                let p = Placement::compute(policy, blocks, &topo);
                prop_assert_eq!(p.num_blocks(), blocks);
                for b in 0..blocks {
                    prop_assert!(p.host_of(b).0 < hosts);
                }
                prop_assert_eq!(p.blocks_per_host().iter().sum::<usize>(), blocks);
                // On equal-speed hosts every policy degenerates to a balanced
                // split.
                prop_assert!(
                    p.max_colocation() <= ceiling,
                    "{}: colocation {} > ceiling {}",
                    policy.label(), p.max_colocation(), ceiling
                );
            }
        }

        /// Placements are deterministic.
        #[test]
        fn prop_placements_are_deterministic(blocks in 1usize..64, hosts in 1usize..10) {
            let topo = GridTopology::local_hetero_cluster(hosts);
            for policy in PlacementPolicy::ALL {
                let a = Placement::compute(policy, blocks, &topo);
                let b = Placement::compute(policy, blocks, &topo);
                prop_assert_eq!(a, b);
            }
        }
    }
}
