//! Per-processor block state.
//!
//! [`BlockState`] bundles everything one processor tracks while iterating:
//! its own current values, the freshest version of every dependency block it
//! has received so far (with the iteration tag it was produced at, i.e. the
//! `s_j^i(t)` of the asynchronous model in Section 1.2), its iteration
//! counter and its last residual. Both runtimes use it, which keeps their
//! iteration logic symmetrical.
//!
//! Since the zero-copy data plane, the current values are a shared
//! [`Payload`] (`Arc<[f64]>`) and the state is *double-buffered*: the kernel
//! writes the next iterate into a private back buffer while the front buffer
//! stays readable by anyone still holding a reference (the mailbox, a
//! neighbour's dependency view). When the back buffer is uniquely owned it is
//! reused in place; otherwise a fresh allocation replaces it — either way no
//! payload bytes are copied on the native in-place path.

use crate::kernel::{DependencyView, IterativeKernel, Payload};
use aiac_linalg::norms::max_norm_diff;
use std::sync::Arc;

/// The mutable state of one block (one simulated or real processor).
#[derive(Debug, Clone)]
pub struct BlockState {
    /// Block index.
    pub id: usize,
    /// Current local values `X_i^t` (the front buffer). Shared by reference:
    /// publishing or snapshotting this payload bumps a refcount, never copies.
    pub values: Payload,
    /// Latest received versions of the other blocks.
    pub view: DependencyView,
    /// Iteration tag of the latest received version of each block
    /// (`None` = still the initial values).
    pub received_iteration: Vec<Option<u64>>,
    /// Number of local iterations performed.
    pub iteration: u64,
    /// Residual of the last local iteration.
    pub residual: f64,
    /// Number of data messages incorporated so far.
    pub messages_incorporated: u64,
    /// Times a kernel fell back to the copying `update_block` path
    /// (i.e. `update_block_into` reported `copied == true`).
    pub payload_clones: u64,
    /// Payload bytes copied by those fallbacks.
    pub bytes_copied: u64,
    /// Back buffer the next iterate is written into before the front/back
    /// swap. Reused in place whenever it is uniquely owned.
    back: Payload,
    /// Snapshot of the values at the start of the current local-convergence
    /// observation window (see [`BlockState::drift_from_anchor`]).
    anchor: Vec<f64>,
}

impl BlockState {
    /// Initialises the state of block `id` from the kernel's initial values,
    /// with the dependency view pre-filled with every block's initial values
    /// (all processors start the first iteration from the same global state).
    pub fn new(kernel: &dyn IterativeKernel, id: usize) -> Self {
        assert!(id < kernel.num_blocks(), "block id out of range");
        let values = kernel.initial_block(id);
        Self {
            id,
            anchor: values.clone(),
            back: vec![0.0; values.len()].into(),
            values: values.into(),
            view: DependencyView::from_initial(kernel),
            received_iteration: vec![None; kernel.num_blocks()],
            iteration: 0,
            residual: f64::INFINITY,
            messages_incorporated: 0,
            payload_clones: 0,
            bytes_copied: 0,
        }
    }

    /// Total change of the block values since the anchor snapshot was last
    /// reset, `||X_i^t − X_i^anchor||_∞`.
    ///
    /// The asynchronous runtimes use this *cumulative* drift — rather than
    /// the per-iteration residual — as the quantity compared against ε for
    /// local convergence: when a round of dependency updates arrives spread
    /// over many cheap iterations, each individual iteration only moves the
    /// block a little, and a per-iteration measure would under-estimate how
    /// much the block is still changing.
    pub fn drift_from_anchor(&self) -> f64 {
        max_norm_diff(&self.values, &self.anchor)
    }

    /// Resets the anchor snapshot to the current values (called whenever the
    /// drift exceeded ε, i.e. the observation window restarts).
    pub fn reset_anchor(&mut self) {
        self.anchor.copy_from_slice(&self.values);
    }

    /// The anchor snapshot itself, for kernels that measure the drift in
    /// their own (e.g. scaled) units.
    pub fn anchor(&self) -> &[f64] {
        &self.anchor
    }

    /// Incorporates a received data message from block `from`, produced at the
    /// sender's iteration `iteration`.
    ///
    /// Stale messages (older than what is already stored) are ignored, which
    /// mirrors the paper's implementations where the newest received values
    /// overwrite previous ones. Accepts either an owned `Vec<f64>` or an
    /// already-shared [`Payload`]; the latter is stored by reference.
    pub fn incorporate(&mut self, from: usize, iteration: u64, values: impl Into<Payload>) -> bool {
        if let Some(prev) = self.received_iteration[from] {
            if iteration < prev {
                return false;
            }
        }
        self.view.set(from, values);
        self.received_iteration[from] = Some(iteration);
        self.messages_incorporated += 1;
        true
    }

    /// Runs one local iteration through the kernel and stores the result.
    /// Returns the residual of the update.
    ///
    /// The kernel writes into the back buffer, then front and back swap: the
    /// old front buffer (possibly still referenced by the mailbox or a
    /// neighbour's view) becomes the new back buffer and is only mutated once
    /// every other reference to it has been dropped.
    pub fn iterate(&mut self, kernel: &dyn IterativeKernel) -> f64 {
        let mut back = std::mem::take(&mut self.back);
        let len = self.values.len();
        let out = match Arc::get_mut(&mut back) {
            Some(slice) if slice.len() == len => slice,
            _ => {
                // Someone still reads the old back buffer (or the block size
                // changed): retire it and start a fresh allocation. This is
                // an allocation, not a payload copy.
                back = vec![0.0; len].into();
                Arc::get_mut(&mut back).expect("freshly allocated Arc is unique")
            }
        };
        let update = kernel.update_block_into(self.id, &self.values, &self.view, out);
        if update.copied {
            self.payload_clones += 1;
            self.bytes_copied += (len * std::mem::size_of::<f64>()) as u64;
        }
        self.residual = update.residual;
        self.iteration += 1;
        self.back = std::mem::replace(&mut self.values, back);
        // A processor always has the freshest version of its own block
        // (a refcount bump, not a copy).
        self.view.set(self.id, self.values.clone());
        self.residual
    }

    /// The delay (in sender iterations) of the stored version of block `from`
    /// relative to `latest`, i.e. how stale the data is. Returns `None` when
    /// nothing has been received yet.
    pub fn staleness(&self, from: usize, latest: u64) -> Option<u64> {
        self.received_iteration[from].map(|tag| latest.saturating_sub(tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::RingContraction;

    #[test]
    fn new_block_starts_from_kernel_initial_values() {
        let kernel = RingContraction::new(3);
        let st = BlockState::new(&kernel, 1);
        assert_eq!(&*st.values, &[0.0]);
        assert_eq!(st.iteration, 0);
        assert!(st.view.has(0) && st.view.has(2));
    }

    #[test]
    fn iterate_updates_values_and_counters() {
        let kernel = RingContraction::new(3);
        let mut st = BlockState::new(&kernel, 0);
        let r = st.iterate(&kernel);
        assert_eq!(st.iteration, 1);
        assert_eq!(&*st.values, &[1.0]); // 0.2*0 + 0.3*0 + 0.2*0 + 1.0
        assert_eq!(r, 1.0);
        assert_eq!(st.view.expect(0), &[1.0]);
    }

    #[test]
    fn incorporate_keeps_newest_version() {
        let kernel = RingContraction::new(3);
        let mut st = BlockState::new(&kernel, 0);
        assert!(st.incorporate(1, 5, vec![5.0]));
        assert_eq!(st.view.expect(1), &[5.0]);
        // an older message is discarded
        assert!(!st.incorporate(1, 3, vec![3.0]));
        assert_eq!(st.view.expect(1), &[5.0]);
        // an equal-or-newer message replaces the data
        assert!(st.incorporate(1, 5, vec![6.0]));
        assert_eq!(st.view.expect(1), &[6.0]);
        assert_eq!(st.messages_incorporated, 2);
    }

    #[test]
    fn drift_accumulates_across_iterations_until_reset() {
        let kernel = RingContraction::new(2);
        let mut st = BlockState::new(&kernel, 0);
        assert_eq!(st.drift_from_anchor(), 0.0);
        st.iterate(&kernel); // 0 -> 1.0
        let d1 = st.drift_from_anchor();
        assert!(d1 > 0.0);
        st.iterate(&kernel); // keeps moving towards the fixed point
        assert!(st.drift_from_anchor() > d1, "drift is cumulative");
        st.reset_anchor();
        assert_eq!(st.drift_from_anchor(), 0.0);
    }

    #[test]
    fn staleness_tracks_received_iteration_tags() {
        let kernel = RingContraction::new(2);
        let mut st = BlockState::new(&kernel, 0);
        assert_eq!(st.staleness(1, 10), None);
        st.incorporate(1, 7, vec![1.0]);
        assert_eq!(st.staleness(1, 10), Some(3));
        assert_eq!(st.staleness(1, 7), Some(0));
    }

    #[test]
    fn repeated_iterations_converge_with_fresh_neighbour_data() {
        let kernel = RingContraction::new(2);
        let mut a = BlockState::new(&kernel, 0);
        let mut b = BlockState::new(&kernel, 1);
        for _ in 0..200 {
            a.iterate(&kernel);
            b.iterate(&kernel);
            let av = a.values.clone();
            let bv = b.values.clone();
            a.incorporate(1, b.iteration, bv);
            b.incorporate(0, a.iteration, av);
        }
        // fixed point of x = 0.2 x_other + 0.3 x + 0.2 x_other + 1 is
        // symmetric: x = 1 / (1 - 0.7)
        let fp = kernel.fixed_point();
        assert!((a.values[0] - fp).abs() < 1e-9);
        assert!((b.values[0] - fp).abs() < 1e-9);
    }

    #[test]
    fn native_in_place_kernels_never_copy_payload_bytes() {
        // RingContraction overrides update_block_into, so iterating through
        // the double buffer must not count any payload clones — even while a
        // neighbour's view still holds the previous front buffer.
        let kernel = RingContraction::new(2);
        let mut st = BlockState::new(&kernel, 0);
        let mut leaked: Vec<Payload> = Vec::new();
        for _ in 0..8 {
            leaked.push(st.values.clone()); // keep every front buffer alive
            st.iterate(&kernel);
        }
        assert_eq!(st.payload_clones, 0);
        assert_eq!(st.bytes_copied, 0);
        assert_eq!(st.iteration, 8);
    }
}
