//! `aiac-core` — the AIAC runtime.
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! runtime for **Asynchronous Iterations, Asynchronous Communications**
//! parallel iterative algorithms, together with the synchronous (SISC)
//! baseline it is compared against.
//!
//! The runtime is organised around a small number of concepts:
//!
//! * a problem is expressed as an [`kernel::IterativeKernel`]: a block-decomposed
//!   fixed-point iteration where each block can be updated from (possibly
//!   stale) copies of the other blocks;
//! * [`config::RunConfig`] selects the execution mode
//!   ([`config::ExecutionMode::Synchronous`] or
//!   [`config::ExecutionMode::Asynchronous`]), the convergence threshold, the
//!   local-convergence streak length and the iteration limits — the knobs the
//!   paper describes in Section 4.3;
//! * [`convergence`] implements the per-block residual tracking and the
//!   centralized global convergence detection / halting procedure;
//! * [`placement`] decides which host every block runs on when blocks
//!   outnumber machines (round-robin, site-packed or speed-weighted), which
//!   the simulated runtime combines with per-host CPU scheduling to model
//!   oversubscribed runs honestly;
//! * [`runtime::threaded`] executes the kernel with real OS threads — a
//!   fixed-size worker pool multiplexing all blocks, with newest-wins
//!   coalescing mailboxes ([`runtime::mailbox`]) for the asynchronous
//!   exchanges — this is what a downstream user runs on a multicore machine;
//! * [`runtime::simulated`] executes the kernel in virtual time over
//!   `aiac-netsim` grids and `aiac-envs` environment models — this is what the
//!   benchmark harness uses to reproduce the paper's grid experiments;
//! * [`runtime::sequential`] runs the same kernel as a plain sequential
//!   fixed-point loop, providing the reference solutions used by tests;
//! * [`report::RunReport`] collects execution time, per-processor iteration
//!   counts, message counts and the residual history of a run.

// Deny rather than forbid: the lock-free mailbox data plane
// (`runtime::mailbox`) owns the crate's only `unsafe` blocks — the
// box-leak/box-reclaim pair around its atomic slot swap — and scopes its own
// allow with the safety argument. Everything else stays safe code, and the CI
// sanitizer job (ThreadSanitizer + Miri) checks the exception.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod cancel;
pub mod config;
pub mod convergence;
pub mod depgraph;
pub mod kernel;
pub mod message;
pub mod placement;
pub mod report;
pub mod runtime;

pub use cancel::CancelToken;
pub use config::{ConfigError, ExecutionMode, RunConfig, StealPolicy};
pub use kernel::{BlockUpdate, IterativeKernel};
pub use placement::{Placement, PlacementPolicy};
pub use report::{RunError, RunReport};
