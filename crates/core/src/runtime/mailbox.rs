//! Newest-wins coalescing mailboxes for the threaded executor.
//!
//! The AIAC model (Section 1.2 of the paper) only ever consumes the *newest*
//! available version of a dependency block: whenever several updates of the
//! same block are pending at a receiver, all but the latest are dead weight
//! that [`crate::block::BlockState::incorporate`] would overwrite anyway.
//! Shipping every iterate through an unbounded queue therefore lets a fast
//! producer grow a slow consumer's inbox without bound.
//!
//! [`CoalescingMailboxes`] exploits the model instead of fighting it: each
//! directed dependency edge `(src, dst)` owns exactly **one** slot holding
//! the latest published iterate. A publish into an occupied slot *coalesces*
//! — the stale envelope is dropped — so the total in-flight data storage is
//! bounded by the number of edges of the dependency graph, independent of
//! how far producers run ahead of consumers.
//!
//! The data plane is **zero-copy and lock-free**: payloads are shared
//! [`Payload`]s (`Arc<[f64]>`), so a publish clones a refcount, never the
//! data, and each slot is a cache-line-aligned `AtomicPtr<Envelope>` swapped
//! with a single atomic instruction on both the publish and the take path.
//! This works because the executor guarantees *at most one worker runs a
//! given block at a time*, which makes every edge single-producer
//! single-consumer: the only contention on a slot is one writer racing one
//! reader, and a `swap` resolves it without a lock in either direction.
//! Occupancy and coalescing counters are tracked so runs can report (and
//! tests can assert) the O(edges) bound.

// The only unsafe code in the crate: every `unsafe` block below reclaims a
// `Box<Envelope>` previously leaked into a slot with `Box::into_raw`, after an
// atomic swap (or `&mut self` in `Drop`) has made that pointer unreachable to
// every other thread. The CI sanitizer job runs these paths under
// ThreadSanitizer and Miri.
#![allow(unsafe_code)]

use crate::depgraph::DependencyGraph;
use crate::kernel::Payload;
// Atomics come from the sync facade, never from std directly: under
// `--cfg aiac_check` they resolve to the bounded model checker's
// instrumented types (enforced by `cargo xtask analyze`).
use crate::runtime::sync::{AtomicI64, AtomicPtr, AtomicU64, Ordering};
use std::ptr;

/// The latest iterate published on one dependency edge.
struct Envelope {
    /// Sender-side iteration number the values were produced at.
    iteration: u64,
    /// The block values, shared by refcount with the producer's front buffer.
    values: Payload,
}

/// One lock-free newest-wins cell. Padded to a cache line so two slots never
/// share one: a publish on edge `(a, b)` must not invalidate the line a take
/// on the unrelated edge `(c, d)` is spinning on (false sharing).
#[repr(align(64))]
struct Slot {
    /// Null = empty. Non-null = a `Box<Envelope>` leaked into the slot,
    /// owned by whichever side swaps it out next (or by `Drop` at teardown).
    ptr: AtomicPtr<Envelope>,
}

impl Slot {
    fn empty() -> Self {
        Self {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

/// One slot per dependency edge, holding only the newest iterate.
pub struct CoalescingMailboxes {
    /// `slots[dst][k]` is the slot of the edge `in_neighbours(dst)[k] → dst`.
    slots: Vec<Vec<Slot>>,
    /// `sources[dst][k]` = the source block of `slots[dst][k]`.
    sources: Vec<Vec<usize>>,
    /// `routes[src]` = every `(dst, k)` such that `slots[dst][k]` carries
    /// data from `src` (the out-edges of `src`, resolved to slot indices).
    routes: Vec<Vec<(usize, usize)>>,
    /// Total number of publishes (one per out-edge per publishing iterate).
    publishes: AtomicU64,
    /// Publishes that replaced a not-yet-consumed payload (newest wins).
    coalesced: AtomicU64,
    /// Number of currently occupied slots, maintained so it *lags the true
    /// count from below*: a publisher increments only **after** filling an
    /// empty slot, and the consumer decrements **before** its emptying swap
    /// (see `take_for`). At every instant `occupancy ≤ #occupied slots ≤
    /// capacity` — the bounded model checker verifies this exhaustively.
    /// Signed defensively: if the discipline were ever broken (e.g. a take
    /// racing a slot it does not own), an unsigned counter would wrap and
    /// poison the peak forever; a signed one just reads as "in flux".
    occupancy: AtomicI64,
    /// High-water mark of `occupancy`, updated only on the publish side.
    /// Because `occupancy` never overcounts (see above), the recorded peak
    /// can never exceed the edge-count capacity. (An earlier scheme
    /// decremented *after* the consumer's swap; the model checker found the
    /// two-op window in which a racing publish then inflates the peak past
    /// the capacity — exactly the schedule the seeded proptests never hit.)
    peak_occupancy: AtomicU64,
}

/// Counters of a [`CoalescingMailboxes`] instance, snapshot at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MailboxStats {
    /// Total number of per-edge publishes.
    pub publishes: u64,
    /// Publishes that overwrote an unconsumed payload.
    pub coalesced: u64,
    /// Number of slots occupied right now.
    pub occupancy: u64,
    /// Highest number of simultaneously occupied slots observed.
    pub peak_occupancy: u64,
    /// Number of slots in existence — the dependency-edge count, and the hard
    /// bound every occupancy value stays under.
    pub capacity: u64,
}

impl CoalescingMailboxes {
    /// Creates one empty slot per directed edge of the dependency graph.
    pub fn new(graph: &DependencyGraph) -> Self {
        let m = graph.num_blocks();
        let mut slots = Vec::with_capacity(m);
        let mut sources = Vec::with_capacity(m);
        let mut routes = vec![Vec::new(); m];
        for dst in 0..m {
            let deps = graph.in_neighbours(dst);
            for (k, &src) in deps.iter().enumerate() {
                routes[src].push((dst, k));
            }
            slots.push(deps.iter().map(|_| Slot::empty()).collect());
            // copy: construction-time edge-list copy, never on a publish/take path
            sources.push(deps.to_vec());
        }
        Self {
            slots,
            sources,
            routes,
            publishes: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            occupancy: AtomicI64::new(0),
            peak_occupancy: AtomicU64::new(0),
        }
    }

    /// Number of slots (= directed dependency edges).
    pub fn capacity(&self) -> u64 {
        self.slots.iter().map(|s| s.len() as u64).sum()
    }

    /// Records that a previously empty slot became occupied.
    fn note_occupied(&self) {
        // ord: stat counter — occupancy is advisory telemetry, read at quiescence
        let now = self.occupancy.fetch_add(1, Ordering::Relaxed) + 1;
        if now > 0 {
            // ord: stat counter — peak high-water mark, never synchronizes data
            self.peak_occupancy.fetch_max(now as u64, Ordering::Relaxed);
        }
    }

    /// Publishes `values` (produced at the sender's `iteration`) on every
    /// out-edge of `src`, then calls `on_deliver(dst)` for each destination
    /// so the caller can wake it. Each edge receives a refcounted clone of
    /// the payload — no data is copied. An older iterate already sitting in
    /// a slot is dropped (newest wins); a *newer* one — possible only with
    /// out-of-order publishers, which real workers never are — is kept.
    pub fn publish_from(
        &self,
        src: usize,
        iteration: u64,
        values: &Payload,
        mut on_deliver: impl FnMut(usize),
    ) {
        for &(dst, k) in &self.routes[src] {
            // ord: stat counter — publish count is telemetry only
            self.publishes.fetch_add(1, Ordering::Relaxed);
            let slot = &self.slots[dst][k];
            let fresh = Box::into_raw(Box::new(Envelope {
                iteration,
                // copy: refcount bump on the shared payload, not a data copy
                values: values.clone(),
            }));
            // ord: AcqRel — Release publishes our envelope's contents to the
            // consumer; Acquire pairs with the previous publisher's Release so
            // the displaced envelope is fully visible before we free it.
            let displaced = slot.ptr.swap(fresh, Ordering::AcqRel);
            if displaced.is_null() {
                self.note_occupied();
            } else {
                // ord: stat counter — coalesce count is telemetry only
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                // SAFETY: a non-null pointer swapped out of a slot is a
                // `Box::into_raw` that no other thread can reach any more
                // (the swap removed the only shared path to it).
                let displaced = unsafe { Box::from_raw(displaced) };
                if displaced.iteration > iteration {
                    // Out-of-order publish: the slot held something newer, so
                    // put it back. Under the single-producer-per-edge
                    // invariant nobody else can publish on this edge
                    // concurrently, so the second swap only races the
                    // consumer's take.
                    // ord: AcqRel — same pairing as the first swap: Release
                    // republishes the newer envelope, Acquire lets us free
                    // whatever we displaced.
                    let ours = slot.ptr.swap(Box::into_raw(displaced), Ordering::AcqRel);
                    if ours.is_null() {
                        // The consumer drained the slot between our two
                        // swaps; re-filling it re-occupies the slot.
                        self.note_occupied();
                    } else {
                        // SAFETY: same ownership argument as above.
                        drop(unsafe { Box::from_raw(ours) });
                    }
                }
            }
            on_deliver(dst);
        }
    }

    /// Drains every occupied in-edge slot of `dst`, handing each payload to
    /// `consume(src, iteration, values)` (newest version only, by
    /// construction). The payload is the producer's shared [`Payload`] —
    /// moved out of the slot, never copied; the consumer typically stores it
    /// in its dependency view with a refcount bump.
    pub fn take_for(&self, dst: usize, mut consume: impl FnMut(usize, u64, Payload)) {
        for (k, slot) in self.slots[dst].iter().enumerate() {
            // ord: Acquire — peek pairs with the publisher's Release. A null
            // peek skips the slot with a plain load, keeping the common
            // empty-poll path free of read-modify-write traffic.
            if slot.ptr.load(Ordering::Acquire).is_null() {
                continue;
            }
            // ord: stat counter — decrement *before* the emptying swap, so
            // occupancy lags the true occupied count from below and the
            // publish-side peak can never record a value above capacity.
            // Sound because only this consumer empties the slot: between the
            // non-null peek and the swap the slot stays occupied.
            self.occupancy.fetch_sub(1, Ordering::Relaxed);
            // ord: Acquire — pairs with the publisher's Release so the
            // envelope's contents are visible before we read them; the write
            // side only installs null, which publishes nothing.
            let taken = slot.ptr.swap(ptr::null_mut(), Ordering::Acquire);
            if taken.is_null() {
                // Unreachable under the single-consumer-per-destination
                // invariant (publishers never empty a slot); restore the
                // counter defensively rather than assume it.
                // ord: stat counter — undo the advance decrement
                self.occupancy.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // SAFETY: non-null pointers in a slot are leaked boxes, and
            // the swap made this one unreachable to every other thread.
            let env = unsafe { Box::from_raw(taken) };
            consume(self.sources[dst][k], env.iteration, env.values);
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> MailboxStats {
        MailboxStats {
            // ord: stat counter — snapshot reads of telemetry counters
            publishes: self.publishes.load(Ordering::Relaxed),
            // ord: stat counter — snapshot read
            coalesced: self.coalesced.load(Ordering::Relaxed),
            // ord: stat counter — snapshot read; may transiently undercount
            occupancy: self.occupancy.load(Ordering::Relaxed).max(0) as u64,
            // ord: stat counter — snapshot read
            peak_occupancy: self.peak_occupancy.load(Ordering::Relaxed),
            capacity: self.capacity(),
        }
    }
}

impl Drop for CoalescingMailboxes {
    fn drop(&mut self) {
        for row in &mut self.slots {
            for slot in row {
                let p = *slot.ptr.get_mut();
                if !p.is_null() {
                    // SAFETY: `&mut self` proves no other thread holds the
                    // mailboxes; any leftover pointer is a leaked box whose
                    // ownership reverts to us.
                    drop(unsafe { Box::from_raw(p) });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::RingContraction;
    use std::sync::Arc;

    fn ring(blocks: usize) -> CoalescingMailboxes {
        CoalescingMailboxes::new(&DependencyGraph::from_kernel(&RingContraction::new(blocks)))
    }

    fn payload(values: &[f64]) -> Payload {
        values.to_vec().into()
    }

    #[test]
    fn capacity_equals_the_edge_count() {
        let boxes = ring(5);
        assert_eq!(boxes.capacity(), 10); // 2 out-neighbours per block
        assert_eq!(boxes.stats().capacity, 10);
        assert_eq!(ring(1).capacity(), 0);
    }

    #[test]
    fn publish_reaches_every_out_neighbour() {
        let boxes = ring(4);
        let mut delivered = Vec::new();
        boxes.publish_from(0, 1, &payload(&[7.0]), |dst| delivered.push(dst));
        delivered.sort_unstable();
        assert_eq!(delivered, vec![1, 3]);

        let mut received = Vec::new();
        boxes.take_for(1, |src, iter, values| {
            received.push((src, iter, values.to_vec()));
        });
        assert_eq!(received, vec![(0, 1, vec![7.0])]);
    }

    #[test]
    fn take_hands_back_the_published_allocation_without_copying() {
        let boxes = ring(3);
        let sent = payload(&[1.0, 2.0]);
        boxes.publish_from(0, 1, &sent, |_| {});
        let mut seen = 0;
        boxes.take_for(1, |_, _, values| {
            assert!(
                Arc::ptr_eq(&sent, &values),
                "the consumer must receive the producer's allocation"
            );
            seen += 1;
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn newest_wins_and_memory_stays_bounded() {
        let boxes = ring(3);
        // Block 0 runs five iterations ahead of its consumers; only the last
        // iterate survives and the occupancy never exceeds its two out-edges.
        for iteration in 1..=5 {
            boxes.publish_from(0, iteration, &payload(&[iteration as f64]), |_| {});
        }
        let stats = boxes.stats();
        assert_eq!(stats.publishes, 10);
        assert_eq!(stats.coalesced, 8, "4 of 5 publishes coalesce, per edge");
        assert_eq!(stats.occupancy, 2);
        assert_eq!(stats.peak_occupancy, 2);
        assert!(stats.peak_occupancy <= stats.capacity);

        let mut received = Vec::new();
        boxes.take_for(1, |src, iter, values| {
            received.push((src, iter, values.to_vec()));
        });
        assert_eq!(received, vec![(0, 5, vec![5.0])]);
    }

    #[test]
    fn out_of_order_publish_keeps_the_newer_iterate() {
        let boxes = ring(3);
        boxes.publish_from(0, 9, &payload(&[9.0]), |_| {});
        boxes.publish_from(0, 4, &payload(&[4.0]), |_| {});
        let mut received = Vec::new();
        boxes.take_for(1, |_, iter, values| received.push((iter, values.to_vec())));
        assert_eq!(received, vec![(9, vec![9.0])]);
    }

    #[test]
    fn take_empties_the_slots_and_occupancy_returns_to_zero() {
        let boxes = ring(4);
        for b in 0..4 {
            boxes.publish_from(b, 1, &payload(&[b as f64]), |_| {});
        }
        assert_eq!(boxes.stats().occupancy, 8);
        for b in 0..4 {
            boxes.take_for(b, |_, _, _| {});
        }
        let stats = boxes.stats();
        assert_eq!(stats.occupancy, 0);
        assert_eq!(stats.peak_occupancy, 8);
        // a second drain finds nothing
        let mut count = 0;
        boxes.take_for(0, |_, _, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn dropping_with_unconsumed_envelopes_frees_them() {
        // Leaves the slots of block 2 occupied; `Drop` must reclaim the
        // leaked boxes (Miri/LeakSanitizer would flag them otherwise).
        let boxes = ring(3);
        boxes.publish_from(0, 3, &payload(&[0.5; 16]), |_| {});
        boxes.publish_from(1, 2, &payload(&[0.25; 16]), |_| {});
        drop(boxes);
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Seeded-schedule check of the lock-free slot swap: one writer
        /// publishes constant-fill payloads `[i, i, …]` for iterations
        /// `1..=iters` with seed-derived pauses while the reader drains the
        /// edge with its own seed-derived backoff. No interleaving may
        /// produce a torn payload (mixed fills), a non-monotone iteration
        /// sequence (newest-wins), or an occupancy above the edge count.
        #[test]
        #[cfg_attr(miri, ignore)] // real-thread schedule fuzzing is far too slow under miri
        fn prop_concurrent_publish_and_take_never_tear_payloads(
            seed in 0u64..u64::MAX,
            len in 1usize..9,
            iters in 8u64..48,
        ) {
            let boxes = Arc::new(ring(3));
            let writer = {
                let boxes = Arc::clone(&boxes);
                let mut rng = seed;
                std::thread::spawn(move || {
                    for iteration in 1..=iters {
                        let p = payload(&vec![iteration as f64; len]);
                        boxes.publish_from(0, iteration, &p, |_| {});
                        for _ in 0..(splitmix64(&mut rng) % 64) {
                            std::hint::spin_loop();
                        }
                    }
                })
            };

            let mut rng = seed ^ 0xD6E8_FEB8_6659_FD93;
            let mut last_seen = 0u64;
            loop {
                let mut reached_final = false;
                boxes.take_for(1, |src, iteration, values| {
                    assert_eq!(src, 0);
                    assert!(
                        iteration > last_seen,
                        "newest-wins must hand out strictly newer iterates \
                         (got {iteration} after {last_seen})"
                    );
                    last_seen = iteration;
                    assert_eq!(values.len(), len);
                    assert!(
                        values.iter().all(|&v| v == iteration as f64),
                        "torn payload at iteration {iteration}: {values:?}"
                    );
                    reached_final = iteration == iters;
                });
                let stats = boxes.stats();
                assert!(stats.occupancy <= stats.capacity);
                assert!(stats.peak_occupancy <= stats.capacity);
                if reached_final {
                    break;
                }
                if splitmix64(&mut rng).is_multiple_of(3) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            writer.join().unwrap();
            // The edge 0 → 2 was never drained: `Drop` reclaims it.
        }
    }
}
