//! Newest-wins coalescing mailboxes for the threaded executor.
//!
//! The AIAC model (Section 1.2 of the paper) only ever consumes the *newest*
//! available version of a dependency block: whenever several updates of the
//! same block are pending at a receiver, all but the latest are dead weight
//! that [`crate::block::BlockState::incorporate`] would overwrite anyway.
//! Shipping every iterate through an unbounded queue therefore lets a fast
//! producer grow a slow consumer's inbox without bound.
//!
//! [`CoalescingMailboxes`] exploits the model instead of fighting it: each
//! directed dependency edge `(src, dst)` owns exactly **one** slot holding the
//! latest published iterate (a `Mutex<Option<(iteration, values)>>`). A
//! publish into an occupied slot *coalesces* — it replaces the stale payload
//! in place, reusing its allocation — so the total in-flight data storage is
//! bounded by the number of edges of the dependency graph, independent of how
//! far producers run ahead of consumers. Occupancy and coalescing counters
//! are tracked so runs can report (and tests can assert) the bound.

use crate::depgraph::DependencyGraph;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The latest iterate published on one dependency edge.
struct Envelope {
    /// Sender-side iteration number the values were produced at.
    iteration: u64,
    /// The block values.
    values: Vec<f64>,
}

/// One slot per dependency edge, holding only the newest iterate.
pub struct CoalescingMailboxes {
    /// `slots[dst][k]` is the slot of the edge `in_neighbours(dst)[k] → dst`.
    slots: Vec<Vec<Mutex<Option<Envelope>>>>,
    /// `sources[dst][k]` = the source block of `slots[dst][k]`.
    sources: Vec<Vec<usize>>,
    /// `routes[src]` = every `(dst, k)` such that `slots[dst][k]` carries
    /// data from `src` (the out-edges of `src`, resolved to slot indices).
    routes: Vec<Vec<(usize, usize)>>,
    /// Total number of publishes (one per out-edge per publishing iterate).
    publishes: AtomicU64,
    /// Publishes that replaced a not-yet-consumed payload (newest wins).
    coalesced: AtomicU64,
    /// Number of currently occupied slots.
    occupancy: AtomicU64,
    /// High-water mark of `occupancy`.
    peak_occupancy: AtomicU64,
}

/// Counters of a [`CoalescingMailboxes`] instance, snapshot at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MailboxStats {
    /// Total number of per-edge publishes.
    pub publishes: u64,
    /// Publishes that overwrote an unconsumed payload.
    pub coalesced: u64,
    /// Number of slots occupied right now.
    pub occupancy: u64,
    /// Highest number of simultaneously occupied slots observed.
    pub peak_occupancy: u64,
    /// Number of slots in existence — the dependency-edge count, and the hard
    /// bound every occupancy value stays under.
    pub capacity: u64,
}

impl CoalescingMailboxes {
    /// Creates one empty slot per directed edge of the dependency graph.
    pub fn new(graph: &DependencyGraph) -> Self {
        let m = graph.num_blocks();
        let mut slots = Vec::with_capacity(m);
        let mut sources = Vec::with_capacity(m);
        let mut routes = vec![Vec::new(); m];
        for dst in 0..m {
            let deps = graph.in_neighbours(dst);
            for (k, &src) in deps.iter().enumerate() {
                routes[src].push((dst, k));
            }
            slots.push(deps.iter().map(|_| Mutex::new(None)).collect());
            sources.push(deps.to_vec());
        }
        Self {
            slots,
            sources,
            routes,
            publishes: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            occupancy: AtomicU64::new(0),
            peak_occupancy: AtomicU64::new(0),
        }
    }

    /// Number of slots (= directed dependency edges).
    pub fn capacity(&self) -> u64 {
        self.slots.iter().map(|s| s.len() as u64).sum()
    }

    /// Publishes `values` (produced at the sender's `iteration`) on every
    /// out-edge of `src`, then calls `on_deliver(dst)` for each destination so
    /// the caller can wake it. An older iterate already sitting in a slot is
    /// replaced in place (its allocation is reused); a *newer* one — possible
    /// only with out-of-order publishers — is kept, since the newest wins.
    pub fn publish_from(
        &self,
        src: usize,
        iteration: u64,
        values: &[f64],
        mut on_deliver: impl FnMut(usize),
    ) {
        for &(dst, k) in &self.routes[src] {
            self.publishes.fetch_add(1, Ordering::Relaxed);
            {
                let mut slot = self.slots[dst][k].lock().unwrap();
                match slot.as_mut() {
                    Some(env) if env.iteration > iteration => {
                        // Stale publish: the slot already holds something newer.
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(env) => {
                        env.iteration = iteration;
                        env.values.clear();
                        env.values.extend_from_slice(values);
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        *slot = Some(Envelope {
                            iteration,
                            values: values.to_vec(),
                        });
                        let now = self.occupancy.fetch_add(1, Ordering::Relaxed) + 1;
                        self.peak_occupancy.fetch_max(now, Ordering::Relaxed);
                    }
                }
            }
            on_deliver(dst);
        }
    }

    /// Drains every occupied in-edge slot of `dst`, handing each payload to
    /// `consume(src, iteration, values)` (newest version only, by
    /// construction).
    pub fn take_for(&self, dst: usize, mut consume: impl FnMut(usize, u64, Vec<f64>)) {
        for (k, slot) in self.slots[dst].iter().enumerate() {
            let taken = {
                let mut guard = slot.lock().unwrap();
                let env = guard.take();
                // Decrement while still holding the slot lock (mirroring the
                // publish side) so a concurrent publish into the just-emptied
                // slot cannot observe an inflated occupancy and push the peak
                // above the edge-count capacity.
                if env.is_some() {
                    self.occupancy.fetch_sub(1, Ordering::Relaxed);
                }
                env
            };
            if let Some(env) = taken {
                consume(self.sources[dst][k], env.iteration, env.values);
            }
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> MailboxStats {
        MailboxStats {
            publishes: self.publishes.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            occupancy: self.occupancy.load(Ordering::Relaxed),
            peak_occupancy: self.peak_occupancy.load(Ordering::Relaxed),
            capacity: self.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::RingContraction;

    fn ring(blocks: usize) -> CoalescingMailboxes {
        CoalescingMailboxes::new(&DependencyGraph::from_kernel(&RingContraction::new(blocks)))
    }

    #[test]
    fn capacity_equals_the_edge_count() {
        let boxes = ring(5);
        assert_eq!(boxes.capacity(), 10); // 2 out-neighbours per block
        assert_eq!(boxes.stats().capacity, 10);
        assert_eq!(ring(1).capacity(), 0);
    }

    #[test]
    fn publish_reaches_every_out_neighbour() {
        let boxes = ring(4);
        let mut delivered = Vec::new();
        boxes.publish_from(0, 1, &[7.0], |dst| delivered.push(dst));
        delivered.sort_unstable();
        assert_eq!(delivered, vec![1, 3]);

        let mut received = Vec::new();
        boxes.take_for(1, |src, iter, values| received.push((src, iter, values)));
        assert_eq!(received, vec![(0, 1, vec![7.0])]);
    }

    #[test]
    fn newest_wins_and_memory_stays_bounded() {
        let boxes = ring(3);
        // Block 0 runs five iterations ahead of its consumers; only the last
        // iterate survives and the occupancy never exceeds its two out-edges.
        for iteration in 1..=5 {
            boxes.publish_from(0, iteration, &[iteration as f64], |_| {});
        }
        let stats = boxes.stats();
        assert_eq!(stats.publishes, 10);
        assert_eq!(stats.coalesced, 8, "4 of 5 publishes coalesce, per edge");
        assert_eq!(stats.occupancy, 2);
        assert_eq!(stats.peak_occupancy, 2);
        assert!(stats.peak_occupancy <= stats.capacity);

        let mut received = Vec::new();
        boxes.take_for(1, |src, iter, values| received.push((src, iter, values)));
        assert_eq!(received, vec![(0, 5, vec![5.0])]);
    }

    #[test]
    fn out_of_order_publish_keeps_the_newer_iterate() {
        let boxes = ring(3);
        boxes.publish_from(0, 9, &[9.0], |_| {});
        boxes.publish_from(0, 4, &[4.0], |_| {});
        let mut received = Vec::new();
        boxes.take_for(1, |_, iter, values| received.push((iter, values)));
        assert_eq!(received, vec![(9, vec![9.0])]);
    }

    #[test]
    fn take_empties_the_slots_and_occupancy_returns_to_zero() {
        let boxes = ring(4);
        for b in 0..4 {
            boxes.publish_from(b, 1, &[b as f64], |_| {});
        }
        assert_eq!(boxes.stats().occupancy, 8);
        for b in 0..4 {
            boxes.take_for(b, |_, _, _| {});
        }
        let stats = boxes.stats();
        assert_eq!(stats.occupancy, 0);
        assert_eq!(stats.peak_occupancy, 8);
        // a second drain finds nothing
        let mut count = 0;
        boxes.take_for(0, |_, _, _| count += 1);
        assert_eq!(count, 0);
    }
}
