//! Execution back-ends.
//!
//! Three back-ends run the same [`crate::kernel::IterativeKernel`]:
//!
//! * [`sequential`] — a single-threaded fixed-point loop used as the
//!   correctness reference;
//! * [`threaded`] — one OS thread per block with crossbeam channels; the
//!   synchronous mode inserts a barrier and a global exchange between
//!   iterations (SISC), the asynchronous mode lets every thread run free
//!   (AIAC). This back-end is what a downstream user runs on a multicore
//!   machine.
//! * [`simulated`] — a virtual-time execution over an `aiac-netsim` grid and
//!   an `aiac-envs` environment model; this is the back-end the benchmark
//!   harness uses to reproduce the paper's grid experiments, since 40
//!   heterogeneous machines behind 10 Mb Ethernet and ADSL links cannot be
//!   conjured on a development box.

pub mod sequential;
pub mod simulated;
pub mod threaded;

pub use sequential::SequentialRuntime;
pub use simulated::{SimulatedRuntime, SimulationOutcome};
pub use threaded::ThreadedRuntime;
