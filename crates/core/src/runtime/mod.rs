//! Execution back-ends.
//!
//! Three back-ends run the same [`crate::kernel::IterativeKernel`]:
//!
//! * [`sequential`] — a single-threaded fixed-point loop used as the
//!   correctness reference;
//! * [`threaded`] — a fixed-size worker pool multiplexing all blocks, with
//!   newest-wins [`mailbox`] slots (one per dependency edge) for the data
//!   exchanges; the synchronous mode runs barrier-separated supersteps
//!   (SISC), the asynchronous mode lets every block run at its own pace
//!   (AIAC). This back-end is what a downstream user runs on a multicore
//!   machine.
//! * [`simulated`] — a virtual-time execution over an `aiac-netsim` grid and
//!   an `aiac-envs` environment model; this is the back-end the benchmark
//!   harness uses to reproduce the paper's grid experiments, since 40
//!   heterogeneous machines behind 10 Mb Ethernet and ADSL links cannot be
//!   conjured on a development box.

pub mod deque;
pub mod mailbox;
pub mod sequential;
pub mod simulated;
pub mod sync;
pub mod threaded;

pub use deque::{PushError, Steal, StealDeque};
pub use mailbox::{CoalescingMailboxes, MailboxStats};
pub use sequential::SequentialRuntime;
pub use simulated::{SimulatedRuntime, SimulationOutcome};
pub use threaded::ThreadedRuntime;
