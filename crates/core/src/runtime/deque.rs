//! Per-worker work-stealing deques for the threaded executor.
//!
//! The asynchronous worker pool used to funnel every ready block through one
//! `Mutex<VecDeque>` guarded by a condition variable — a single contention
//! point that every publish and every dispatch crossed, and one that is
//! blind to locality: the worker that produced a block's freshest dependency
//! payload had no better claim on running that block than any other. At high
//! core counts the scheduler, not the data plane, becomes the bottleneck
//! (the lesson of the Cilk / Charm++ / ParalleX many-tasking comparison),
//! and the proven fix is the same everywhere: give every worker its own
//! deque, let the owner push and pop at one end in LIFO order (newest work
//! is cache-hottest), and let idle workers *steal* from the other end in
//! FIFO order (oldest work has the least locality left to lose).
//!
//! [`StealDeque`] is a bounded Chase–Lev-style deque specialised to the
//! executor's needs:
//!
//! * **Elements are block indices** (`usize`), so the buffer can be a slice
//!   of `AtomicUsize` slots — every access is an atomic load or store and
//!   the whole module stays inside the crate's `deny(unsafe_code)` rule
//!   with **no** scoped allow (unlike the mailbox, which has to juggle
//!   `Box::into_raw`). A racy slot read is *harmless* here, not UB: the
//!   value only becomes the thief's when the `top` CAS that guards it
//!   succeeds, and the CAS fails whenever the slot could have been reused.
//! * **Bounded capacity, no growth.** The executor enqueues every block at
//!   most once (a global `queued` bit per block), so no deque can ever hold
//!   more than `num_blocks` entries; [`StealDeque::new`] rounds that up to
//!   a power of two and [`StealDeque::push`] reports [`PushError::Full`]
//!   instead of reallocating — the pool falls back to its shared overflow
//!   queue, keeping the owner's fast path allocation-free.
//! * **All-`SeqCst` memory ordering.** The classic Chase–Lev algorithm
//!   threads a `SeqCst` fence between the owner's `bottom` update and its
//!   `top` read; using sequentially consistent accesses throughout buys the
//!   same Dekker-style guarantee (owner and thief cannot both miss each
//!   other on the last element) at a cost that is irrelevant next to a
//!   block iteration, and it keeps the proof — and the TSan/Miri runs in CI
//!   — straightforward.
//!
//! Ownership discipline: exactly one thread (the owner) calls
//! [`StealDeque::push`] / [`StealDeque::pop`]; any thread may call
//! [`StealDeque::steal`]. The discipline is a *performance* contract, not a
//! safety one — every slot access is atomic, so even a misuse cannot tear —
//! but the single-owner invariant is what makes the last-element race the
//! only race, and the executor upholds it by construction (deque `w`
//! belongs to worker `w`; the coordinator routes cross-thread work through
//! the pool's overflow queue instead).

// Atomics come from the sync facade so the bounded model checker can
// instrument them under `--cfg aiac_check` (enforced by `cargo xtask
// analyze`).
// ord: SeqCst — single all-SeqCst import by design; see the module docs for
// why sequential consistency replaces the classic Chase–Lev fence.
use crate::runtime::sync::{AtomicIsize, AtomicUsize, Ordering::SeqCst};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The deque already holds `capacity` entries; the caller must route the
    /// item elsewhere (the executor's overflow queue).
    Full,
}

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Another thread (the owner, or a competing thief) won the race for the
    /// observed element; the caller may retry.
    Retry,
    /// One element, taken from the FIFO (oldest) end.
    Success(usize),
}

/// A bounded lock-free work-stealing deque of block indices.
///
/// Owner end: [`push`](Self::push) / [`pop`](Self::pop) (LIFO). Thief end:
/// [`steal`](Self::steal) (FIFO). See the module docs for the discipline.
pub struct StealDeque {
    /// Next slot the owner writes (grows on push, shrinks on pop).
    bottom: AtomicIsize,
    /// Oldest live slot (grows on steal). `top > bottom` never holds for
    /// longer than the owner's transient decrement inside `pop`.
    top: AtomicIsize,
    /// Power-of-two ring buffer; `index & mask` maps a counter to a slot.
    buffer: Box<[AtomicUsize]>,
    mask: usize,
}

impl StealDeque {
    /// A deque that can hold at least `capacity` elements (rounded up to a
    /// power of two, minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        Self {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.buffer.len()
    }

    /// Snapshot of the current length (exact when quiescent, a hint under
    /// concurrency).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(SeqCst);
        let t = self.top.load(SeqCst);
        b.saturating_sub(t).max(0) as usize
    }

    /// True when the deque is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: pushes `item` onto the LIFO end.
    pub fn push(&self, item: usize) -> Result<(), PushError> {
        let b = self.bottom.load(SeqCst);
        let t = self.top.load(SeqCst);
        if b.wrapping_sub(t) >= self.buffer.len() as isize {
            return Err(PushError::Full);
        }
        self.buffer[(b as usize) & self.mask].store(item, SeqCst);
        self.bottom.store(b.wrapping_add(1), SeqCst);
        Ok(())
    }

    /// Owner-only: pops the most recently pushed element (LIFO), racing
    /// thieves only when a single element remains.
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(SeqCst).wrapping_sub(1);
        // Reserve the bottom slot first; thieves that read the decremented
        // value will treat the deque as one element shorter.
        self.bottom.store(b, SeqCst);
        let t = self.top.load(SeqCst);
        if t > b {
            // Already empty: undo the reservation.
            self.bottom.store(b.wrapping_add(1), SeqCst);
            return None;
        }
        let item = self.buffer[(b as usize) & self.mask].load(SeqCst);
        if t == b {
            // Last element: whoever moves `top` first owns it.
            let won = self
                .top
                .compare_exchange(t, t.wrapping_add(1), SeqCst, SeqCst)
                .is_ok();
            self.bottom.store(b.wrapping_add(1), SeqCst);
            return won.then_some(item);
        }
        Some(item)
    }

    /// Any thread: tries to take the oldest element (FIFO end).
    ///
    /// The slot is read *before* the claiming CAS, which is what makes the
    /// atomic-slot representation load-bearing: if the owner wrapped around
    /// and reused the slot in the meantime, `top` must have moved too, the
    /// CAS fails, and the stale read is discarded.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(SeqCst);
        let b = self.bottom.load(SeqCst);
        if b.wrapping_sub(t) <= 0 {
            return Steal::Empty;
        }
        let item = self.buffer[(t as usize) & self.mask].load(SeqCst);
        match self
            .top
            .compare_exchange(t, t.wrapping_add(1), SeqCst, SeqCst)
        {
            Ok(_) => Steal::Success(item),
            Err(_) => Steal::Retry,
        }
    }
}

impl std::fmt::Debug for StealDeque {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealDeque")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    #[test]
    fn owner_pop_is_lifo() {
        let dq = StealDeque::new(8);
        for i in 0..5 {
            dq.push(i).unwrap();
        }
        assert_eq!(dq.len(), 5);
        for i in (0..5).rev() {
            assert_eq!(dq.pop(), Some(i));
        }
        assert_eq!(dq.pop(), None);
        assert!(dq.is_empty());
    }

    #[test]
    fn steal_is_fifo() {
        let dq = StealDeque::new(8);
        for i in 10..14 {
            dq.push(i).unwrap();
        }
        assert_eq!(dq.steal(), Steal::Success(10));
        assert_eq!(dq.steal(), Steal::Success(11));
        assert_eq!(dq.pop(), Some(13));
        assert_eq!(dq.steal(), Steal::Success(12));
        assert_eq!(dq.steal(), Steal::Empty);
        assert_eq!(dq.pop(), None);
    }

    #[test]
    fn capacity_rounds_up_and_push_reports_full() {
        let dq = StealDeque::new(3);
        assert_eq!(dq.capacity(), 4);
        for i in 0..4 {
            dq.push(i).unwrap();
        }
        assert_eq!(dq.push(99), Err(PushError::Full));
        // draining one slot re-opens the deque, wrapping the ring
        assert_eq!(dq.steal(), Steal::Success(0));
        dq.push(99).unwrap();
        assert_eq!(dq.pop(), Some(99));
    }

    #[test]
    fn zero_capacity_still_holds_one_element() {
        let dq = StealDeque::new(0);
        assert_eq!(dq.capacity(), 1);
        dq.push(7).unwrap();
        assert_eq!(dq.push(8), Err(PushError::Full));
        assert_eq!(dq.pop(), Some(7));
    }

    /// Two threads contend for a single element: exactly one side wins.
    /// Small and deterministic enough to run under Miri, covering the
    /// last-element CAS race from both ends.
    #[test]
    fn last_element_goes_to_exactly_one_side() {
        for _round in 0..16 {
            let dq = Arc::new(StealDeque::new(2));
            dq.push(42).unwrap();
            let thief = {
                let dq = Arc::clone(&dq);
                std::thread::spawn(move || match dq.steal() {
                    Steal::Success(v) => Some(v),
                    _ => None,
                })
            };
            let popped = dq.pop();
            let stolen = thief.join().unwrap();
            match (popped, stolen) {
                (Some(42), None) | (None, Some(42)) => {}
                other => panic!("the element must go to exactly one side, got {other:?}"),
            }
            assert_eq!(dq.pop(), None);
            assert_eq!(dq.steal(), Steal::Empty);
        }
    }

    /// The threaded executor's fairness valve has the owner take from its
    /// *own* deque's FIFO end — an owner-side `steal`, legal Chase–Lev usage
    /// — every `FAIRNESS_INTERVAL`-th lap. Deterministic two-thread version
    /// of the model-checked harness (`crates/check/tests/deque_model.rs`),
    /// small enough for Miri's weak-memory exploration: owner-steal,
    /// thief-steal, and owner-pop must hand out every element exactly once.
    #[test]
    fn fairness_valve_owner_side_steal_vs_thief() {
        for _round in 0..8 {
            let dq = Arc::new(StealDeque::new(4));
            for i in 0..3 {
                dq.push(i).unwrap();
            }
            let thief = {
                let dq = Arc::clone(&dq);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..3 {
                        if let Steal::Success(v) = dq.steal() {
                            got.push(v);
                        }
                    }
                    got
                })
            };
            let mut kept = Vec::new();
            // Valve lap: drain the own FIFO end, like `stealing_worker`.
            if let Steal::Success(v) = dq.steal() {
                kept.push(v);
            }
            // Ordinary laps: LIFO pops.
            while let Some(v) = dq.pop() {
                kept.push(v);
            }
            let mut all: Vec<usize> = kept.into_iter().chain(thief.join().unwrap()).collect();
            while let Some(v) = dq.pop() {
                all.push(v);
            }
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2], "an element was lost or duplicated");
            assert!(dq.is_empty());
            assert_eq!(dq.steal(), Steal::Empty);
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Seeded-schedule check mirroring the mailbox's concurrency
        /// property: the owner pushes `0..items` (popping some back with
        /// seed-derived pauses) while `thieves` threads steal with their own
        /// seed-derived backoff. Across every interleaving the union of
        /// popped and stolen elements must be exactly `{0, …, items−1}` —
        /// nothing lost, nothing duplicated — and the deque must end empty.
        #[test]
        #[cfg_attr(miri, ignore)] // real-thread schedule fuzzing is far too slow under miri
        fn prop_no_element_is_lost_or_duplicated(
            seed in 0u64..u64::MAX,
            items in 16usize..128,
            thieves in 1usize..4,
        ) {
            let dq = Arc::new(StealDeque::new(items));
            let done = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..thieves)
                .map(|thief| {
                    let dq = Arc::clone(&dq);
                    let done = Arc::clone(&done);
                    let mut rng = seed ^ (thief as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match dq.steal() {
                                Steal::Success(v) => got.push(v),
                                Steal::Retry => std::hint::spin_loop(),
                                Steal::Empty => {
                                    if done.load(SeqCst) == 1 && dq.is_empty() {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                            for _ in 0..(splitmix64(&mut rng) % 32) {
                                std::hint::spin_loop();
                            }
                        }
                        got
                    })
                })
                .collect();

            let mut rng = seed;
            let mut kept = Vec::new();
            for item in 0..items {
                dq.push(item).unwrap();
                let roll = splitmix64(&mut rng);
                if roll.is_multiple_of(3) {
                    if let Some(v) = dq.pop() {
                        kept.push(v);
                    }
                }
                for _ in 0..(roll % 16) {
                    std::hint::spin_loop();
                }
            }
            while let Some(v) = dq.pop() {
                kept.push(v);
            }
            done.store(1, SeqCst);

            let mut seen: Vec<usize> = kept;
            for handle in handles {
                seen.extend(handle.join().unwrap());
            }
            prop_assert_eq!(seen.len(), items, "an element was lost or duplicated");
            let unique: BTreeSet<usize> = seen.iter().copied().collect();
            prop_assert_eq!(unique.len(), items, "a duplicate element was observed");
            prop_assert!(seen.iter().all(|&v| v < items));
            prop_assert!(dq.is_empty());
        }
    }
}
