//! Atomic-type facade for the lock-free data plane.
//!
//! Every atomic in `runtime::mailbox`, `runtime::deque`, and
//! `runtime::threaded` is imported from here rather than from
//! `std::sync::atomic` (the `xtask analyze` lint enforces it). Normally the
//! re-exports below *are* the `std` types — zero cost, same codegen. Built
//! with `RUSTFLAGS="--cfg aiac_check"`, they switch to `aiac-check`'s
//! instrumented atomics: identical API, but inside a model execution every
//! operation becomes a scheduling point of the bounded model checker, and
//! `AtomicPtr` carries the release-tag metadata behind the checker's
//! cross-thread visibility rule. Outside a model execution the instrumented
//! types fall through to raw `std` operations, so an `aiac_check` build of
//! the runtime still behaves normally under ordinary tests.
//!
//! The facade deliberately re-exports only what the data plane uses: the
//! atomic types, `Ordering`, and `fence`. Widening it is fine — add the
//! type to `aiac-check::sync::atomic` first so both cfg arms stay in sync.

#[cfg(not(aiac_check))]
pub use std::sync::atomic::{
    fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize, Ordering,
};

#[cfg(aiac_check)]
pub use aiac_check::sync::atomic::{
    fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize, Ordering,
};
