//! The sequential reference runtime.
//!
//! Runs the block iteration exactly as equation (2) of the paper describes it
//! for a single processor: every iteration updates every block from the
//! values of the *previous* iteration (Jacobi-style sweep), so the iterates
//! are identical to those of the synchronous parallel algorithm. The result
//! is used throughout the test-suite as the ground truth the parallel and
//! asynchronous back-ends must agree with.

use crate::block::BlockState;
use crate::cancel::CancelToken;
use crate::config::{ExecutionMode, RunConfig};
use crate::kernel::{IterativeKernel, Payload};
use crate::report::RunReport;
use std::time::Instant;

/// Single-threaded reference executor.
#[derive(Debug, Clone, Default)]
pub struct SequentialRuntime {
    _private: (),
}

impl SequentialRuntime {
    /// Creates the runtime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the kernel to convergence (or to the iteration limit).
    ///
    /// The `mode` field of the configuration is ignored — a sequential sweep
    /// is by construction synchronous — but the threshold and iteration limit
    /// are honoured.
    pub fn run(&self, kernel: &dyn IterativeKernel, config: &RunConfig) -> RunReport {
        self.run_with_cancel(kernel, config, None)
    }

    /// Runs the kernel like [`SequentialRuntime::run`], additionally polling
    /// `cancel` between sweeps.
    ///
    /// A raised token stops the loop at the next sweep boundary; the report
    /// then carries `converged = false` and `premature_stop = true`, with the
    /// partial iterate as its solution. Passing `None` is identical to
    /// [`SequentialRuntime::run`].
    pub fn run_with_cancel(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
        cancel: Option<&CancelToken>,
    ) -> RunReport {
        config.validate();
        let started = Instant::now();
        let m = kernel.num_blocks();
        let mut blocks: Vec<BlockState> = (0..m).map(|b| BlockState::new(kernel, b)).collect();

        let mut iterations = 0u64;
        let mut converged = false;
        let mut cancelled = false;
        let mut worst_residual = f64::INFINITY;

        while iterations < config.max_iterations as u64 {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                cancelled = true;
                break;
            }
            // Jacobi sweep: every block reads the previous iteration's values,
            // so updates within one sweep do not see each other. The snapshot
            // is a refcount bump per block, not a copy.
            let snapshot: Vec<Payload> = blocks.iter().map(|b| b.values.clone()).collect();
            for state in blocks.iter_mut() {
                for dep in kernel.dependencies(state.id) {
                    state.view.set(dep, snapshot[dep].clone());
                }
            }
            worst_residual = 0.0f64;
            for state in blocks.iter_mut() {
                let r = state.iterate(kernel);
                worst_residual = worst_residual.max(r);
            }
            iterations += 1;
            if worst_residual < config.epsilon {
                converged = true;
                break;
            }
        }

        let values: Vec<Vec<f64>> = blocks.iter().map(|b| b.values.to_vec()).collect();
        RunReport {
            mode: ExecutionMode::Synchronous,
            backend: "sequential".to_string(),
            elapsed_secs: started.elapsed().as_secs_f64(),
            iterations: vec![iterations; m],
            data_messages: 0,
            control_messages: 0,
            data_bytes: 0,
            coalesced_messages: 0,
            peak_mailbox_occupancy: 0,
            payload_clones: blocks.iter().map(|b| b.payload_clones).sum(),
            bytes_copied: blocks.iter().map(|b| b.bytes_copied).sum(),
            steals: 0,
            failed_steal_attempts: 0,
            local_pushes: 0,
            queue_wait_events: 0,
            cpu_queue_secs: 0.0,
            converged,
            premature_stop: cancelled,
            solution: kernel.assemble(&values),
            final_residual: worst_residual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::{Diverging, RingContraction};

    #[test]
    fn converges_to_the_known_fixed_point() {
        let kernel = RingContraction::new(6);
        let report = SequentialRuntime::new().run(&kernel, &RunConfig::synchronous(1e-12));
        assert!(report.converged);
        let fp = kernel.fixed_point();
        for v in &report.solution {
            assert!((v - fp).abs() < 1e-9, "value {v} vs fixed point {fp}");
        }
        assert_eq!(report.solution.len(), 6);
        assert!(report.final_residual < 1e-12);
    }

    #[test]
    fn iteration_limit_stops_diverging_problems() {
        let kernel = Diverging { blocks: 2 };
        let config = RunConfig::synchronous(1e-10).with_max_iterations(25);
        let report = SequentialRuntime::new().run(&kernel, &config);
        assert!(!report.converged);
        assert_eq!(report.iterations, vec![25, 25]);
    }

    #[test]
    fn report_counts_no_messages_for_sequential_runs() {
        let kernel = RingContraction::new(3);
        let report = SequentialRuntime::new().run(&kernel, &RunConfig::synchronous(1e-8));
        assert_eq!(report.data_messages, 0);
        assert_eq!(report.total_messages(), 0);
        assert_eq!(report.backend, "sequential");
    }

    #[test]
    fn single_block_problem_is_solved() {
        let kernel = RingContraction::new(1);
        let report = SequentialRuntime::new().run(&kernel, &RunConfig::synchronous(1e-12));
        assert!(report.converged);
        assert!((report.solution[0] - kernel.fixed_point()).abs() < 1e-9);
    }

    #[test]
    fn pre_raised_cancel_token_stops_before_the_first_sweep() {
        let kernel = RingContraction::new(4);
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let report = SequentialRuntime::new().run_with_cancel(
            &kernel,
            &RunConfig::synchronous(1e-12),
            Some(&token),
        );
        assert!(!report.converged);
        assert!(report.premature_stop);
        assert_eq!(report.iterations, vec![0, 0, 0, 0]);
    }

    #[test]
    fn absent_token_matches_plain_run() {
        let kernel = RingContraction::new(5);
        let config = RunConfig::synchronous(1e-10);
        let plain = SequentialRuntime::new().run(&kernel, &config);
        let with_none = SequentialRuntime::new().run_with_cancel(&kernel, &config, None);
        assert_eq!(plain.iterations, with_none.iterations);
        assert_eq!(plain.solution, with_none.solution);
        assert!(!with_none.premature_stop);
    }

    #[test]
    fn looser_tolerance_needs_fewer_iterations() {
        let kernel = RingContraction::new(4);
        let loose = SequentialRuntime::new().run(&kernel, &RunConfig::synchronous(1e-3));
        let tight = SequentialRuntime::new().run(&kernel, &RunConfig::synchronous(1e-12));
        assert!(loose.iterations[0] < tight.iterations[0]);
    }
}
