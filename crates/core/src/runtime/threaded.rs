//! The threaded runtime: a fixed-size worker pool multiplexing all blocks.
//!
//! This back-end is the library's "production" executor on a multicore
//! machine. Earlier revisions mapped every block to its own OS thread and
//! shipped every iterate through unbounded channels; past a few hundred
//! blocks that collapses twice over — the machine drowns in oversubscribed
//! threads, and a fast producer floods a slow consumer's queue with stale
//! payloads the drain loop immediately overwrites, so memory grows without
//! bound. The executor now follows the asynchronous many-tasking recipe
//! instead:
//!
//! * **Worker pool** — `RunConfig::num_workers` OS threads (default: the
//!   machine's available parallelism, never more than the block count)
//!   multiplex the `m` blocks as lightweight tasks pulled from a shared run
//!   queue. Idle workers *park* on a condition variable instead of
//!   busy-spinning.
//! * **Coalescing mailboxes** — block data travels through
//!   [`super::mailbox::CoalescingMailboxes`]: one newest-wins slot per
//!   dependency edge, so in-flight data storage is O(edges) regardless of how
//!   far any producer runs ahead. This is exactly the AIAC model's semantics
//!   ("the newest received values overwrite previous ones") enforced at the
//!   transport layer.
//! * **Control plane** — unchanged from the paper's centralized halting
//!   procedure (Section 4.3): workers report local-convergence *state
//!   changes* over a channel to the coordinator on the main thread, and the
//!   coordinator broadcasts the stop order (here: a shared flag plus a
//!   wake-everyone on the run queue) once every block is locally converged.
//!
//! The two execution modes keep their semantics:
//!
//! * **Synchronous mode (SISC)** — the pool runs barrier-separated
//!   supersteps: every block is iterated (a Jacobi sweep reading the previous
//!   iteration's values), the new iterates are exchanged through the
//!   mailboxes, and block 0's owner evaluates the true global residual. The
//!   iterates are bit-identical to the sequential sweep; the barrier idle
//!   time is exactly the white space of Figure 1.
//! * **Asynchronous mode (AIAC)** — blocks never wait: when a worker picks a
//!   block it drains the block's mailboxes, iterates on whatever data it has,
//!   publishes its new values and requeues itself, as in Figure 2. A locally
//!   converged block goes *dormant* instead of spinning and is woken by the
//!   next publish from one of its dependencies (or by the stop broadcast).

use crate::block::BlockState;
use crate::config::{ExecutionMode, RunConfig};
use crate::convergence::{GlobalDetector, LocalConvergence};
use crate::depgraph::DependencyGraph;
use crate::kernel::IterativeKernel;
use crate::message::Message;
use crate::report::{RunError, RunReport};
use crate::runtime::mailbox::{CoalescingMailboxes, MailboxStats};
use crossbeam::channel::{unbounded, Sender};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Condvar, Mutex};
use std::time::Instant;

/// What a worker tells the coordinator.
enum CoordEvent {
    /// A block's local convergence state changed.
    StateChange { block: usize, converged: bool },
    /// A block finished (stop received or iteration limit reached).
    Finished,
}

/// Final per-block result, filled in when the block finishes.
struct BlockOutcome {
    values: Vec<f64>,
    iterations: u64,
    residual: f64,
    payload_clones: u64,
    bytes_copied: u64,
}

/// The shared run queue blocks are scheduled on.
///
/// Each block is enqueued at most once (`queued` flags); workers with nothing
/// to do park on the condition variable until a publish, a broadcast or the
/// final close wakes them.
struct Scheduler {
    state: Mutex<SchedQueue>,
    ready: Condvar,
}

struct SchedQueue {
    queue: VecDeque<usize>,
    queued: Vec<bool>,
    closed: bool,
}

impl Scheduler {
    fn new(num_blocks: usize) -> Self {
        Self {
            state: Mutex::new(SchedQueue {
                queue: VecDeque::with_capacity(num_blocks),
                queued: vec![false; num_blocks],
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Schedules `block` unless it is already queued; wakes one parked worker.
    fn enqueue(&self, block: usize) {
        let mut st = self.state.lock().unwrap();
        if !st.closed && !st.queued[block] {
            st.queued[block] = true;
            st.queue.push_back(block);
            self.ready.notify_one();
        }
    }

    /// Schedules every block (the stop/drain broadcast); wakes all workers.
    fn enqueue_all(&self) {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return;
        }
        for block in 0..st.queued.len() {
            if !st.queued[block] {
                st.queued[block] = true;
                st.queue.push_back(block);
            }
        }
        self.ready.notify_all();
    }

    /// The next block to process, parking the calling worker while the queue
    /// is empty. Returns `None` once the scheduler is closed.
    fn next(&self) -> Option<usize> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(block) = st.queue.pop_front() {
                st.queued[block] = false;
                return Some(block);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    /// Shuts the queue down and releases every parked worker.
    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// Closes the scheduler when a worker unwinds, so the remaining workers and
/// the coordinator are released instead of parking forever behind a panic.
struct PanicGuard<'a>(&'a Scheduler);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.close();
        }
    }
}

/// Multi-threaded executor (fixed worker pool over all blocks).
#[derive(Debug, Clone, Default)]
pub struct ThreadedRuntime {
    _private: (),
}

impl ThreadedRuntime {
    /// Creates the runtime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the kernel with the requested mode and returns the report.
    ///
    /// # Panics
    /// Panics on an invalid configuration or if a worker exits without
    /// delivering its block results (see [`ThreadedRuntime::try_run`] for the
    /// non-panicking variant).
    pub fn run(&self, kernel: &dyn IterativeKernel, config: &RunConfig) -> RunReport {
        self.try_run(kernel, config)
            .unwrap_or_else(|err| panic!("ThreadedRuntime::run failed: {err}"))
    }

    /// Runs the kernel, reporting configuration and worker failures as a
    /// [`RunError`] instead of panicking.
    pub fn try_run(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
    ) -> Result<RunReport, RunError> {
        config.try_validate()?;
        match config.mode {
            ExecutionMode::Synchronous => self.run_synchronous(kernel, config),
            ExecutionMode::Asynchronous => self.run_asynchronous(kernel, config),
        }
    }

    fn run_synchronous(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
    ) -> Result<RunReport, RunError> {
        let m = kernel.num_blocks();
        let graph = DependencyGraph::from_kernel(kernel);
        let started = Instant::now();
        let workers = config.effective_num_workers(m);

        let mailboxes = CoalescingMailboxes::new(&graph);
        let barrier = Barrier::new(workers);
        let residuals: Vec<AtomicU64> = (0..m).map(|_| AtomicU64::new(0)).collect();
        let stop = AtomicBool::new(false);
        let data_messages = AtomicU64::new(0);
        let data_bytes = AtomicU64::new(0);
        let results: Vec<Mutex<Option<BlockOutcome>>> = (0..m).map(|_| Mutex::new(None)).collect();

        crossbeam::scope(|scope| {
            for worker in 0..workers {
                let graph = &graph;
                let mailboxes = &mailboxes;
                let barrier = &barrier;
                let residuals = &residuals;
                let stop = &stop;
                let data_messages = &data_messages;
                let data_bytes = &data_bytes;
                let results = &results;
                scope.spawn(move |_| {
                    sync_worker(
                        kernel,
                        config,
                        worker,
                        workers,
                        graph,
                        mailboxes,
                        barrier,
                        residuals,
                        stop,
                        data_messages,
                        data_bytes,
                        results,
                    );
                });
            }
        })
        .expect("a synchronous worker thread panicked");

        let converged = stop.load(Ordering::SeqCst);
        finalize_report(
            kernel,
            ExecutionMode::Synchronous,
            "threaded sync",
            started,
            results
                .into_iter()
                .map(|r| r.into_inner().unwrap())
                .collect(),
            data_messages.load(Ordering::SeqCst),
            0,
            data_bytes.load(Ordering::SeqCst),
            converged,
            mailboxes.stats(),
        )
    }

    fn run_asynchronous(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
    ) -> Result<RunReport, RunError> {
        let m = kernel.num_blocks();
        let graph = DependencyGraph::from_kernel(kernel);
        let started = Instant::now();
        let workers = config.effective_num_workers(m);

        let pool = AsyncPool {
            kernel,
            config,
            graph: &graph,
            mailboxes: CoalescingMailboxes::new(&graph),
            sched: Scheduler::new(m),
            tasks: (0..m)
                .map(|b| {
                    Mutex::new(AsyncTask {
                        state: BlockState::new(kernel, b),
                        local: LocalConvergence::new(config.epsilon, config.convergence_streak),
                        done: false,
                    })
                })
                .collect(),
            results: (0..m).map(|_| Mutex::new(None)).collect(),
            stop: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            finished_blocks: AtomicUsize::new(0),
            data_messages: AtomicU64::new(0),
            control_messages: AtomicU64::new(0),
            data_bytes: AtomicU64::new(0),
        };
        // Every block starts runnable ("only the first iteration begins at
        // the same time on all the processors").
        for block in 0..m {
            pool.sched.enqueue(block);
        }

        let (coord_tx, coord_rx) = unbounded::<CoordEvent>();
        let mut detector = GlobalDetector::new(m);

        crossbeam::scope(|scope| {
            for _ in 0..workers {
                let pool = &pool;
                let coord_tx = coord_tx.clone();
                scope.spawn(move |_| {
                    let _guard = PanicGuard(&pool.sched);
                    while let Some(block) = pool.sched.next() {
                        pool.process(block, &coord_tx);
                    }
                });
            }
            drop(coord_tx);

            // The main thread plays the role of the paper's central node: it
            // gathers state messages and broadcasts the stop order.
            let mut finished = 0usize;
            while finished < m {
                match coord_rx.recv() {
                    Ok(CoordEvent::StateChange { block, converged }) => {
                        if detector.report(block, converged) {
                            pool.stop.store(true, Ordering::SeqCst);
                            // The stop broadcast: wake every parked worker and
                            // dormant block so each one observes the flag and
                            // finishes (the paper's halting procedure).
                            pool.sched.enqueue_all();
                        }
                    }
                    Ok(CoordEvent::Finished) => finished += 1,
                    Err(_) => break,
                }
            }
        })
        .expect("an asynchronous worker thread panicked");

        let stats = pool.mailboxes.stats();
        finalize_report(
            kernel,
            ExecutionMode::Asynchronous,
            "threaded async",
            started,
            pool.results
                .into_iter()
                .map(|r| r.into_inner().unwrap())
                .collect(),
            pool.data_messages.load(Ordering::SeqCst),
            pool.control_messages.load(Ordering::SeqCst),
            pool.data_bytes.load(Ordering::SeqCst),
            detector.is_decided(),
            stats,
        )
    }
}

/// Per-block task of the asynchronous pool. The scheduler's
/// at-most-once-queued invariant means at most one worker processes a block
/// at any time, so the mutex is uncontended in practice.
struct AsyncTask {
    state: BlockState,
    local: LocalConvergence,
    done: bool,
}

/// Everything the asynchronous pool's workers share.
struct AsyncPool<'a> {
    kernel: &'a dyn IterativeKernel,
    config: &'a RunConfig,
    graph: &'a DependencyGraph,
    mailboxes: CoalescingMailboxes,
    sched: Scheduler,
    tasks: Vec<Mutex<AsyncTask>>,
    results: Vec<Mutex<Option<BlockOutcome>>>,
    /// Global stop order from the coordinator.
    stop: AtomicBool,
    /// Set when some block exhausts its iteration limit before global
    /// convergence: the stop order may now never come, so converged blocks
    /// must stop parking and run out their own limits (the per-thread
    /// semantics of the paper's implementations).
    drain: AtomicBool,
    finished_blocks: AtomicUsize,
    data_messages: AtomicU64,
    control_messages: AtomicU64,
    data_bytes: AtomicU64,
}

impl AsyncPool<'_> {
    /// Runs one scheduling slice of `block`: drain its mailboxes, iterate
    /// once, publish, and decide whether to requeue, park or finish.
    fn process(&self, block: usize, coord_tx: &Sender<CoordEvent>) {
        let mut task = self.tasks[block].lock().unwrap();
        if task.done {
            return;
        }

        // Receive whatever has arrived (the newest version per edge, by
        // construction of the coalescing mailboxes).
        let mut fresh_data = false;
        self.mailboxes.take_for(block, |src, iteration, values| {
            fresh_data |= task.state.incorporate(src, iteration, values);
        });

        let max_iter = self.config.max_iterations as u64;
        if self.stop.load(Ordering::SeqCst) || task.state.iteration >= max_iter {
            self.finish(block, &mut task, coord_tx);
            return;
        }

        task.state.iterate(self.kernel);

        // Local convergence is judged on the cumulative drift since the last
        // window anchor, so that a round of updates split over many cheap
        // iterations is not under-measured. Quiet iterations on stale data do
        // not advance the streak; reports go out only when the state changes.
        let drift = self
            .kernel
            .residual_between(block, &task.state.values, task.state.anchor());
        if drift >= self.config.epsilon {
            task.state.reset_anchor();
        }
        let has_dependencies = !self.graph.in_neighbours(block).is_empty();
        if task
            .local
            .observe_gated(drift, fresh_data || !has_dependencies)
        {
            self.control_messages.fetch_add(1, Ordering::Relaxed);
            let _ = coord_tx.send(CoordEvent::StateChange {
                block,
                converged: task.local.is_converged(),
            });
        }

        // Publish the fresh values on every out-edge, waking the dependants.
        let out_degree = self.graph.out_neighbours(block).len() as u64;
        if out_degree > 0 {
            self.mailboxes
                .publish_from(block, task.state.iteration, &task.state.values, |dst| {
                    self.sched.enqueue(dst)
                });
            self.data_messages.fetch_add(out_degree, Ordering::Relaxed);
            self.data_bytes.fetch_add(
                out_degree * Message::data_payload_bytes(task.state.values.len()),
                Ordering::Relaxed,
            );
        }

        if self.stop.load(Ordering::SeqCst) || task.state.iteration >= max_iter {
            self.finish(block, &mut task, coord_tx);
        } else if task.local.is_converged() && !self.drain.load(Ordering::SeqCst) {
            // Dormant: stay off the run queue until a dependency publishes
            // fresh data or the stop/drain broadcast re-enqueues everything.
            // This replaces the old executor's yield_now busy-spin.
        } else {
            self.sched.enqueue(block);
        }
    }

    /// Retires `block`: records its result, reports to the coordinator and
    /// closes the scheduler when it was the last one.
    fn finish(&self, block: usize, task: &mut AsyncTask, coord_tx: &Sender<CoordEvent>) {
        task.done = true;
        *self.results[block].lock().unwrap() = Some(BlockOutcome {
            // One copy per block at retirement, off the hot path (the shared
            // payload may still be referenced by the mailboxes).
            values: task.state.values.to_vec(),
            iterations: task.state.iteration,
            residual: task.state.residual,
            payload_clones: task.state.payload_clones,
            bytes_copied: task.state.bytes_copied,
        });
        if !self.stop.load(Ordering::SeqCst) {
            // Iteration-limit exit before any stop order: global convergence
            // may never be decided now, so make sure no block parks forever.
            self.drain.store(true, Ordering::SeqCst);
            self.sched.enqueue_all();
        }
        let _ = coord_tx.send(CoordEvent::Finished);
        if self.finished_blocks.fetch_add(1, Ordering::SeqCst) + 1 == self.tasks.len() {
            self.sched.close();
        }
    }
}

/// One synchronous pool worker: owns the blocks `worker, worker + workers,
/// worker + 2·workers, …` and runs them through barrier-separated supersteps.
/// The static partition keeps every block's floating-point trajectory
/// identical to the sequential Jacobi sweep regardless of the pool size.
#[allow(clippy::too_many_arguments)]
fn sync_worker(
    kernel: &dyn IterativeKernel,
    config: &RunConfig,
    worker: usize,
    workers: usize,
    graph: &DependencyGraph,
    mailboxes: &CoalescingMailboxes,
    barrier: &Barrier,
    residuals: &[AtomicU64],
    stop: &AtomicBool,
    data_messages: &AtomicU64,
    data_bytes: &AtomicU64,
    results: &[Mutex<Option<BlockOutcome>>],
) {
    let m = kernel.num_blocks();
    let mut states: Vec<BlockState> = (worker..m)
        .step_by(workers.max(1))
        .map(|b| BlockState::new(kernel, b))
        .collect();
    let max_iter = config.max_iterations as u64;
    let mut iterations = 0u64;

    while iterations < max_iter {
        // Compute + exchange phase: iterate every owned block (reading the
        // dependency values delivered for the previous iteration — a Jacobi
        // sweep) and publish the new iterates to the dependants' mailboxes.
        for state in states.iter_mut() {
            let residual = state.iterate(kernel);
            residuals[state.id].store(residual.to_bits(), Ordering::SeqCst);
            let out_degree = graph.out_neighbours(state.id).len() as u64;
            if out_degree > 0 {
                mailboxes.publish_from(state.id, state.iteration, &state.values, |_| {});
                data_messages.fetch_add(out_degree, Ordering::Relaxed);
                data_bytes.fetch_add(
                    out_degree * Message::data_payload_bytes(state.values.len()),
                    Ordering::Relaxed,
                );
            }
        }
        iterations += 1;
        // Barrier A: all publishes of this iteration are visible.
        barrier.wait();
        // Delivery phase: incorporate everything received for this iteration.
        for state in states.iter_mut() {
            mailboxes.take_for(state.id, |src, iteration, values| {
                state.incorporate(src, iteration, values);
            });
        }
        // The first worker evaluates the global stopping criterion (the
        // synchronous algorithm checks the true global residual).
        if worker == 0 {
            let worst = residuals
                .iter()
                .map(|r| f64::from_bits(r.load(Ordering::SeqCst)))
                .fold(0.0f64, f64::max);
            if worst < config.epsilon {
                stop.store(true, Ordering::SeqCst);
            }
        }
        // Barrier B: everyone sees the decision for this iteration.
        barrier.wait();
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }

    for state in states {
        *results[state.id].lock().unwrap() = Some(BlockOutcome {
            iterations: state.iteration,
            residual: state.residual,
            payload_clones: state.payload_clones,
            bytes_copied: state.bytes_copied,
            values: state.values.to_vec(),
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn finalize_report(
    kernel: &dyn IterativeKernel,
    mode: ExecutionMode,
    backend: &str,
    started: Instant,
    outcomes: Vec<Option<BlockOutcome>>,
    data_messages: u64,
    control_messages: u64,
    data_bytes: u64,
    converged: bool,
    mailbox_stats: MailboxStats,
) -> Result<RunReport, RunError> {
    let m = kernel.num_blocks();
    let missing: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter_map(|(block, r)| r.is_none().then_some(block))
        .collect();
    if outcomes.len() != m || !missing.is_empty() {
        return Err(RunError::MissingResults { missing });
    }
    let mut values = Vec::with_capacity(m);
    let mut iterations = Vec::with_capacity(m);
    let mut final_residual = 0.0f64;
    let mut payload_clones = 0u64;
    let mut bytes_copied = 0u64;
    for outcome in outcomes.into_iter().flatten() {
        final_residual = final_residual.max(outcome.residual);
        iterations.push(outcome.iterations);
        payload_clones += outcome.payload_clones;
        bytes_copied += outcome.bytes_copied;
        values.push(outcome.values);
    }
    Ok(RunReport {
        mode,
        backend: backend.to_string(),
        elapsed_secs: started.elapsed().as_secs_f64(),
        iterations,
        data_messages,
        control_messages,
        data_bytes,
        coalesced_messages: mailbox_stats.coalesced,
        peak_mailbox_occupancy: mailbox_stats.peak_occupancy,
        payload_clones,
        bytes_copied,
        cpu_queue_secs: 0.0,
        converged,
        premature_stop: false,
        solution: kernel.assemble(&values),
        final_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigError;
    use crate::kernel::test_kernels::{Diverging, RingContraction};
    use crate::runtime::sequential::SequentialRuntime;

    #[test]
    fn synchronous_threaded_matches_sequential_exactly() {
        let kernel = RingContraction::new(4);
        let config = RunConfig::synchronous(1e-10);
        let seq = SequentialRuntime::new().run(&kernel, &config);
        let par = ThreadedRuntime::new().run(&kernel, &config);
        assert!(par.converged);
        assert_eq!(par.iterations[0], seq.iterations[0]);
        for (a, b) in par.solution.iter().zip(&seq.solution) {
            assert_eq!(a, b, "synchronous iterates must be identical");
        }
    }

    #[test]
    fn synchronous_pool_is_bit_identical_for_every_pool_size() {
        let kernel = RingContraction::new(6);
        let seq = SequentialRuntime::new().run(&kernel, &RunConfig::synchronous(1e-10));
        for workers in 1..=6 {
            let config = RunConfig::synchronous(1e-10).with_num_workers(workers);
            let par = ThreadedRuntime::new().run(&kernel, &config);
            assert!(par.converged, "{workers} workers");
            assert_eq!(par.iterations, seq.iterations, "{workers} workers");
            for (a, b) in par.solution.iter().zip(&seq.solution) {
                assert_eq!(a, b, "{workers} workers: iterates must be identical");
            }
        }
    }

    #[test]
    fn asynchronous_threaded_converges_to_the_fixed_point() {
        let kernel = RingContraction::new(6);
        let config = RunConfig::asynchronous(1e-10).with_streak(5);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert!(
            report.converged,
            "AIAC run should detect global convergence"
        );
        let fp = kernel.fixed_point();
        for v in &report.solution {
            assert!((v - fp).abs() < 1e-6, "value {v} vs fixed point {fp}");
        }
        assert!(report.data_messages > 0);
        assert!(report.control_messages > 0);
    }

    #[test]
    fn asynchronous_workers_may_run_different_iteration_counts() {
        let kernel = RingContraction::new(4);
        let config = RunConfig::asynchronous(1e-12);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert_eq!(report.iterations.len(), 4);
        assert!(report.iterations.iter().all(|&i| i > 0));
    }

    #[test]
    fn pool_smaller_than_the_block_count_still_converges() {
        // 12 blocks over at most 2 workers: the old executor would have
        // spawned 12 threads; the pool must multiplex without deadlocking.
        let kernel = RingContraction::new(12);
        let config = RunConfig::asynchronous(1e-10)
            .with_streak(4)
            .with_num_workers(2);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert!(report.converged);
        let fp = kernel.fixed_point();
        for v in &report.solution {
            assert!((v - fp).abs() < 1e-6, "value {v} vs fixed point {fp}");
        }
    }

    #[test]
    fn in_flight_data_is_bounded_by_the_edge_count() {
        let kernel = RingContraction::new(8);
        let graph = DependencyGraph::from_kernel(&kernel);
        for config in [
            RunConfig::synchronous(1e-8).with_num_workers(3),
            RunConfig::asynchronous(1e-8).with_num_workers(3),
        ] {
            let report = ThreadedRuntime::new().run(&kernel, &config);
            assert!(
                report.peak_mailbox_occupancy <= graph.num_edges() as u64,
                "{:?}: peak {} must stay under the edge count {}",
                config.mode,
                report.peak_mailbox_occupancy,
                graph.num_edges()
            );
        }
    }

    #[test]
    fn diverging_problem_hits_the_iteration_limit_in_both_modes() {
        let kernel = Diverging { blocks: 3 };
        for config in [
            RunConfig::synchronous(1e-10).with_max_iterations(50),
            RunConfig::asynchronous(1e-10).with_max_iterations(50),
        ] {
            let report = ThreadedRuntime::new().run(&kernel, &config);
            assert!(!report.converged, "{:?} must not converge", config.mode);
            assert!(report.iterations.iter().all(|&i| i <= 50));
        }
    }

    #[test]
    fn single_block_async_run_works() {
        let kernel = RingContraction::new(1);
        let report = ThreadedRuntime::new().run(&kernel, &RunConfig::asynchronous(1e-10));
        assert!(report.converged);
        assert!((report.solution[0] - kernel.fixed_point()).abs() < 1e-6);
    }

    #[test]
    fn sync_mode_counts_messages_along_ring_edges() {
        let kernel = RingContraction::new(5);
        let config = RunConfig::synchronous(1e-8);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        // 2 out-neighbours per block, 5 blocks, one message per edge per iteration
        assert_eq!(
            report.data_messages,
            10 * report.iterations[0],
            "each iteration sends one message per directed edge"
        );
    }

    #[test]
    fn native_in_place_kernel_runs_zero_copy_in_both_modes() {
        // RingContraction overrides `update_block_into`, so the data plane
        // must never fall back to the copying path: payloads travel only by
        // Arc refcount through the mailboxes and dependency views.
        let kernel = RingContraction::new(6);
        for config in [
            RunConfig::synchronous(1e-10).with_num_workers(3),
            RunConfig::asynchronous(1e-10)
                .with_streak(4)
                .with_num_workers(3),
        ] {
            let report = ThreadedRuntime::new().run(&kernel, &config);
            assert_eq!(report.payload_clones, 0, "{:?}", config.mode);
            assert_eq!(report.bytes_copied, 0, "{:?}", config.mode);
        }
    }

    #[test]
    fn try_run_reports_invalid_configurations() {
        let kernel = RingContraction::new(2);
        let bad = RunConfig::asynchronous(1e-8).with_num_workers(0);
        let err = ThreadedRuntime::new().try_run(&kernel, &bad).unwrap_err();
        assert_eq!(err, RunError::InvalidConfig(ConfigError::ZeroWorkers));
    }

    #[test]
    fn finalize_report_names_the_blocks_without_results() {
        // Regression test: a worker dying used to surface as a bare
        // `assert_eq!(collected, m)` with no hint of what was lost.
        let kernel = RingContraction::new(4);
        let outcome = |v: f64| {
            Some(BlockOutcome {
                values: vec![v],
                iterations: 1,
                residual: 0.0,
                payload_clones: 0,
                bytes_copied: 0,
            })
        };
        let err = finalize_report(
            &kernel,
            ExecutionMode::Asynchronous,
            "threaded async",
            Instant::now(),
            vec![outcome(0.0), None, outcome(2.0), None],
            0,
            0,
            0,
            false,
            MailboxStats::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RunError::MissingResults {
                missing: vec![1, 3]
            }
        );
        assert!(err.to_string().contains("[1, 3]"), "{err}");
    }
}
