//! The threaded runtime: a fixed-size worker pool multiplexing all blocks.
//!
//! This back-end is the library's "production" executor on a multicore
//! machine. Earlier revisions mapped every block to its own OS thread and
//! shipped every iterate through unbounded channels; past a few hundred
//! blocks that collapses twice over — the machine drowns in oversubscribed
//! threads, and a fast producer floods a slow consumer's queue with stale
//! payloads the drain loop immediately overwrites, so memory grows without
//! bound. The executor now follows the asynchronous many-tasking recipe
//! instead:
//!
//! * **Work-stealing worker pool** — `RunConfig::num_workers` OS threads
//!   (default: the machine's available parallelism, never more than the
//!   block count) multiplex the `m` blocks as lightweight tasks. Each worker
//!   owns a bounded Chase–Lev-style deque ([`super::deque::StealDeque`]):
//!   the owner pushes and pops in LIFO order (newest work is cache-hottest)
//!   while idle workers steal from randomized victims at the FIFO end,
//!   spinning through an exponential backoff before *parking* on a condition
//!   variable. A shared FIFO injector carries cross-thread work (the initial
//!   broadcast, the stop/drain broadcasts, deque-overflow spill) — and under
//!   [`crate::config::StealPolicy::SharedFifo`] *all* work, reproducing the
//!   pre-work-stealing scheduler as a comparison baseline. When
//!   `RunConfig::locality_bias` is set, a publish pushes the ready
//!   dependants onto the publishing worker's own deque, so the freshly
//!   produced payload is consumed where it is still cache-hot.
//! * **Coalescing mailboxes** — block data travels through
//!   [`super::mailbox::CoalescingMailboxes`]: one newest-wins slot per
//!   dependency edge, so in-flight data storage is O(edges) regardless of how
//!   far any producer runs ahead. This is exactly the AIAC model's semantics
//!   ("the newest received values overwrite previous ones") enforced at the
//!   transport layer.
//! * **Control plane** — unchanged from the paper's centralized halting
//!   procedure (Section 4.3): workers report local-convergence *state
//!   changes* over a channel to the coordinator on the main thread, and the
//!   coordinator broadcasts the stop order (here: a shared flag plus a
//!   wake-everyone on the run queue) once every block is locally converged.
//!
//! The two execution modes keep their semantics:
//!
//! * **Synchronous mode (SISC)** — the pool runs barrier-separated
//!   supersteps: every block is iterated (a Jacobi sweep reading the previous
//!   iteration's values), the new iterates are exchanged through the
//!   mailboxes, and block 0's owner evaluates the true global residual. The
//!   iterates are bit-identical to the sequential sweep; the barrier idle
//!   time is exactly the white space of Figure 1.
//! * **Asynchronous mode (AIAC)** — blocks never wait: when a worker picks a
//!   block it drains the block's mailboxes, iterates on whatever data it has,
//!   publishes its new values and requeues itself, as in Figure 2. A locally
//!   converged block goes *dormant* instead of spinning and is woken by the
//!   next publish from one of its dependencies (or by the stop broadcast).

use crate::block::BlockState;
use crate::config::{ExecutionMode, RunConfig, StealPolicy};
use crate::convergence::{GlobalDetector, LocalConvergence};
use crate::depgraph::DependencyGraph;
use crate::kernel::IterativeKernel;
use crate::message::Message;
use crate::report::{RunError, RunReport};
use crate::runtime::deque::{Steal, StealDeque};
use crate::runtime::mailbox::{CoalescingMailboxes, MailboxStats};
// Atomics come from the sync facade so the bounded model checker can
// instrument them under `--cfg aiac_check` (enforced by `cargo xtask
// analyze`).
use crate::runtime::sync::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use aiac_obs::{Layer, TraceSnapshot, Tracer, TrackRecorder};
use crossbeam::channel::{unbounded, Sender};
use std::collections::VecDeque;
use std::sync::{Barrier, Condvar, Mutex};
use std::time::Instant;

/// Number of randomized victim sweeps an idle worker runs before parking.
const STEAL_ROUNDS: u32 = 4;
/// Spin iterations after the first failed sweep; doubles every round.
const SPIN_BASE: u32 = 32;
/// Every this-many acquisition laps a stealing worker checks the shared
/// injector *before* its own deque (the same fairness valve as tokio's
/// global-queue interval): demoted and overflow work is guaranteed to
/// circulate even while the worker's own LIFO top stays productive.
const FAIRNESS_INTERVAL: u32 = 17;

/// The splitmix64 generator: cheap, seedable, and good enough for victim
/// selection (the same generator the test-suite uses for pause schedules).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a worker tells the coordinator.
enum CoordEvent {
    /// A block's local convergence state changed.
    StateChange { block: usize, converged: bool },
    /// A block finished (stop received or iteration limit reached).
    Finished,
}

/// Final per-block result, filled in when the block finishes.
struct BlockOutcome {
    values: Vec<f64>,
    iterations: u64,
    residual: f64,
    payload_clones: u64,
    bytes_copied: u64,
}

/// Scheduling counters of one asynchronous run. All four stay zero for the
/// synchronous mode (its static partition never touches the pool) and the
/// first three are structurally zero under [`StealPolicy::SharedFifo`].
#[derive(Debug, Default, Clone, Copy)]
struct SchedCounters {
    steals: u64,
    failed_steal_attempts: u64,
    local_pushes: u64,
    queue_wait_events: u64,
}

/// The work-stealing run queue blocks are scheduled on.
///
/// Each block is queued at most once anywhere (the `queued` bits), which
/// bounds every per-worker deque at `num_blocks` entries — so the deques are
/// allocated once at that capacity and never grow. Ready blocks travel one
/// of two routes: onto the enqueuing worker's own deque (the owner-push /
/// locality path), or through the shared FIFO `injector` (coordinator
/// broadcasts, deque-overflow spill, and everything under
/// [`StealPolicy::SharedFifo`]). Workers with nothing to pop, drain or steal
/// park on the condition variable; the `pending`/`sleepers` pair implements
/// the Dekker-style handshake that makes the park race-free without any
/// timeout sleep.
struct WorkPool {
    /// One owner deque per worker (empty under [`StealPolicy::SharedFifo`]).
    deques: Vec<StealDeque>,
    /// Shared FIFO overflow and cross-thread queue.
    injector: Mutex<VecDeque<usize>>,
    /// The at-most-once-queued bit per block.
    queued: Vec<AtomicBool>,
    /// Blocks queued (anywhere) and not yet taken by a worker.
    pending: AtomicUsize,
    /// Count of enqueue events. A stealing worker whose whole acquisition
    /// lap came up empty parks until this moves — unlike `pending`, which
    /// stays positive while the only queued work sits on another worker's
    /// deque and keeps a pool of idle thieves busy-looping (ruinous when
    /// the workers oversubscribe the machine's cores).
    epoch: AtomicUsize,
    /// Workers currently inside [`WorkPool::park_idle`].
    sleepers: AtomicUsize,
    /// The parking lot. The mutex guards no data — it only sequences the
    /// sleeper's `pending` re-check against the publisher's notify.
    park: Mutex<()>,
    ready: Condvar,
    closed: AtomicBool,
    /// True when the pool runs more workers than the machine has cores. A
    /// spin-wait then burns the timeslice the worker holding the work needs,
    /// so backoff yields to the OS scheduler instead of spinning.
    oversubscribed: bool,
    steals: AtomicU64,
    failed_steal_attempts: AtomicU64,
    local_pushes: AtomicU64,
    queue_wait_events: AtomicU64,
}

impl WorkPool {
    fn new(num_blocks: usize, workers: usize, policy: StealPolicy) -> Self {
        let deques = match policy {
            StealPolicy::WorkStealing => {
                (0..workers).map(|_| StealDeque::new(num_blocks)).collect()
            }
            StealPolicy::SharedFifo => Vec::new(),
        };
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            deques,
            injector: Mutex::new(VecDeque::with_capacity(num_blocks)),
            queued: (0..num_blocks).map(|_| AtomicBool::new(false)).collect(),
            pending: AtomicUsize::new(0),
            epoch: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            park: Mutex::new(()),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
            oversubscribed: workers > cores,
            steals: AtomicU64::new(0),
            failed_steal_attempts: AtomicU64::new(0),
            local_pushes: AtomicU64::new(0),
            queue_wait_events: AtomicU64::new(0),
        }
    }

    /// Schedules `block` unless it is already queued. With `local = Some(w)`
    /// it goes onto worker `w`'s deque — valid only from worker `w` itself
    /// (the deques' single-owner push discipline) or before the pool's
    /// threads spawn — falling back to the injector when that deque is full;
    /// with `local = None` it goes straight onto the injector. Returns
    /// whether the block landed on the local deque.
    fn enqueue(&self, block: usize, local: Option<usize>) -> bool {
        // ord: SeqCst — queued-bit claim totally ordered with the pending/epoch bumps and the park-side re-checks (Dekker handshake with sleepers)
        if self.closed.load(Ordering::SeqCst) || self.queued[block].swap(true, Ordering::SeqCst) {
            return false;
        }
        let placed_local = match local {
            Some(w) => self.deques[w].push(block).is_ok(),
            None => false,
        };
        if !placed_local {
            self.injector.lock().unwrap().push_back(block);
        }
        // ord: SeqCst — pending bump must be visible before any parked worker re-checks emptiness
        self.pending.fetch_add(1, Ordering::SeqCst);
        // ord: SeqCst — epoch bump publishes the new work to epoch-parked sleepers
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.wake(false);
        placed_local
    }

    /// Schedules every not-yet-queued block onto the injector (the
    /// stop/drain broadcast) and wakes all workers.
    fn enqueue_all(&self) {
        // ord: SeqCst — closed gate ordered with the shutdown broadcast
        if self.closed.load(Ordering::SeqCst) {
            return;
        }
        let mut added = 0usize;
        {
            let mut injector = self.injector.lock().unwrap();
            for block in 0..self.queued.len() {
                // ord: SeqCst — queued-bit claim, same protocol as enqueue()
                if !self.queued[block].swap(true, Ordering::SeqCst) {
                    injector.push_back(block);
                    added += 1;
                }
            }
        }
        if added > 0 {
            // ord: SeqCst — pending visible before parked workers re-check
            self.pending.fetch_add(added, Ordering::SeqCst);
            // ord: SeqCst — epoch bump publishes the injected batch
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
        // Always wake everyone: even with nothing new queued, parked workers
        // must re-observe the stop/drain flags that prompted the broadcast.
        let _lot = self.park.lock().unwrap();
        self.ready.notify_all();
    }

    /// Bookkeeping for a block just taken off any queue: clears its queued
    /// bit (so the next publish can re-schedule it) and drops the pending
    /// count. Must run *before* the block's mailboxes are drained, so a
    /// publish that raced the take either re-queues the block or its payload
    /// is picked up by the drain.
    fn took(&self, block: usize) {
        // ord: SeqCst — queued-bit release ordered before the pending decrement so a racing re-enqueue cannot be missed
        self.queued[block].store(false, Ordering::SeqCst);
        // ord: SeqCst — pending decrement ordered with park-side emptiness checks
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    fn pop_injector(&self) -> Option<usize> {
        self.injector.lock().unwrap().pop_front()
    }

    /// One randomized sweep over the other workers' deques. Returns the
    /// stolen block plus whether any victim was contended (a lost claiming
    /// race, as opposed to simply empty).
    fn steal_sweep(&self, worker: usize, rng: &mut u64) -> (Option<usize>, bool) {
        let n = self.deques.len();
        if n <= 1 {
            return (None, false);
        }
        let mut saw_contention = false;
        for _ in 0..n - 1 {
            let victim = (worker + 1 + (splitmix64(rng) as usize) % (n - 1)) % n;
            match self.deques[victim].steal() {
                Steal::Success(block) => {
                    // ord: stat counter — steal telemetry, read at quiescence
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return (Some(block), saw_contention);
                }
                Steal::Retry => {
                    saw_contention = true;
                    // ord: stat counter — failed-steal telemetry
                    self.failed_steal_attempts.fetch_add(1, Ordering::Relaxed);
                }
                Steal::Empty => {
                    // ord: stat counter — failed-steal telemetry
                    self.failed_steal_attempts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        (None, saw_contention)
    }

    /// Randomized-victim stealing with exponential backoff: up to
    /// [`STEAL_ROUNDS`] sweeps over random victims, backing off
    /// `SPIN_BASE << round` spin iterations between sweeps — or a plain OS
    /// yield when the pool is oversubscribed, where a spin would burn the
    /// timeslice of whichever worker actually holds the work. Gives up
    /// early when the pool closes or nothing is pending anywhere (parking
    /// beats spinning on an empty pool).
    fn steal_with_backoff(&self, worker: usize, rng: &mut u64) -> Option<usize> {
        if self.deques.len() <= 1 {
            return None;
        }
        for round in 0..STEAL_ROUNDS {
            let (stolen, saw_contention) = self.steal_sweep(worker, rng);
            if stolen.is_some() {
                return stolen;
            }
            // Back off and retry only while a victim was contended: an
            // all-empty sweep means the remaining work (if any) sits on the
            // injector, which the caller checks next — spinning here would
            // just delay it.
            if !saw_contention
                // ord: SeqCst — closed re-check inside the bounded backoff loop
                || self.closed.load(Ordering::SeqCst)
                // ord: SeqCst — pending re-check pairs with enqueue's SeqCst bump
                || self.pending.load(Ordering::SeqCst) == 0
            {
                break;
            }
            if self.oversubscribed {
                std::thread::yield_now();
            } else {
                for _ in 0..(SPIN_BASE << round) {
                    // spin: bounded backoff — at most SPIN_BASE << round iterations, with round capped by the caller; never an unbounded wait
                    std::hint::spin_loop();
                }
            }
        }
        None
    }

    /// Parks the calling worker until work is pending or the pool closes.
    ///
    /// Lost-wakeup freedom is the Dekker argument (everything `SeqCst`): the
    /// parker advertises itself in `sleepers` and then re-checks `pending`
    /// under the park lock before waiting; the publisher bumps `pending` and
    /// then reads `sleepers`, notifying under the same lock when it saw a
    /// sleeper. Whichever order the two interleave in, either the publisher
    /// sees the sleeper and notifies, or the parker sees the pending work
    /// and never waits — so no timeout sleep is needed, and the stop
    /// broadcast (`closed` in the wait predicate) is observed promptly.
    fn park_idle(&self, count: bool) {
        if count {
            // ord: stat counter — park-event telemetry
            self.queue_wait_events.fetch_add(1, Ordering::Relaxed);
        }
        // ord: SeqCst — sleeper registration before the final emptiness re-check (Dekker: enqueue reads sleepers after its pending bump)
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut lot = self.park.lock().unwrap();
        // ord: SeqCst — closed/pending re-check under the park mutex; pairs with enqueue
        while !self.closed.load(Ordering::SeqCst) && self.pending.load(Ordering::SeqCst) == 0 {
            lot = self.ready.wait(lot).unwrap();
        }
        drop(lot);
        // ord: SeqCst — sleeper deregistration
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Parks the calling worker until an enqueue has happened after the
    /// caller read `seen` from [`WorkPool::epoch`], or the pool closes.
    ///
    /// The stealing workers' variant of [`WorkPool::park_idle`]: a thief
    /// whose pop, sweep and injector checks all failed has proven that none
    /// of the work counted by `pending` is available *to it* right now, so
    /// waiting for `pending == 0` would busy-loop. Waiting for the epoch to
    /// move instead puts it to sleep until the next enqueue — every take
    /// path it just tried is fed by one, and each enqueue bumps the epoch
    /// before the notify, so the same Dekker argument rules out lost
    /// wakeups.
    fn park_until_enqueue(&self, seen: usize, count: bool) {
        if count {
            // ord: stat counter — park-event telemetry
            self.queue_wait_events.fetch_add(1, Ordering::Relaxed);
        }
        // ord: SeqCst — sleeper registration before the epoch re-check
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut lot = self.park.lock().unwrap();
        // ord: SeqCst — closed/epoch re-check under the park mutex
        while !self.closed.load(Ordering::SeqCst) && self.epoch.load(Ordering::SeqCst) == seen {
            lot = self.ready.wait(lot).unwrap();
        }
        drop(lot);
        // ord: SeqCst — sleeper deregistration
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// The publisher half of the parking handshake (see
    /// [`WorkPool::park_idle`]); `all` broadcasts instead of waking one.
    fn wake(&self, all: bool) {
        // ord: SeqCst — wake fast path reads the sleeper count the parkers bumped
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _lot = self.park.lock().unwrap();
            if all {
                self.ready.notify_all();
            } else {
                self.ready.notify_one();
            }
        }
    }

    fn is_closed(&self) -> bool {
        // ord: SeqCst — closed gate
        self.closed.load(Ordering::SeqCst)
    }

    /// Shuts the pool down and releases every parked worker.
    fn close(&self) {
        // ord: SeqCst — closing must be visible to every park re-check
        self.closed.store(true, Ordering::SeqCst);
        let _lot = self.park.lock().unwrap();
        self.ready.notify_all();
    }

    fn counters(&self) -> SchedCounters {
        SchedCounters {
            // ord: SeqCst — quiescent snapshot for the stats report
            steals: self.steals.load(Ordering::SeqCst),
            // ord: SeqCst — quiescent snapshot
            failed_steal_attempts: self.failed_steal_attempts.load(Ordering::SeqCst),
            // ord: SeqCst — quiescent snapshot
            local_pushes: self.local_pushes.load(Ordering::SeqCst),
            // ord: SeqCst — quiescent snapshot
            queue_wait_events: self.queue_wait_events.load(Ordering::SeqCst),
        }
    }
}

/// Closes the pool when a worker unwinds, so the remaining workers and
/// the coordinator are released instead of parking forever behind a panic.
struct PanicGuard<'a>(&'a WorkPool);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.close();
        }
    }
}

/// Multi-threaded executor (fixed worker pool over all blocks).
#[derive(Debug, Clone, Default)]
pub struct ThreadedRuntime {
    _private: (),
}

impl ThreadedRuntime {
    /// Creates the runtime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the kernel with the requested mode and returns the report.
    ///
    /// # Panics
    /// Panics on an invalid configuration or if a worker exits without
    /// delivering its block results (see [`ThreadedRuntime::try_run`] for the
    /// non-panicking variant).
    pub fn run(&self, kernel: &dyn IterativeKernel, config: &RunConfig) -> RunReport {
        self.try_run(kernel, config)
            .unwrap_or_else(|err| panic!("ThreadedRuntime::run failed: {err}"))
    }

    /// Runs the kernel, reporting configuration and worker failures as a
    /// [`RunError`] instead of panicking.
    pub fn try_run(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
    ) -> Result<RunReport, RunError> {
        self.try_run_traced(kernel, config)
            .map(|(report, _)| report)
    }

    /// Runs the kernel and also returns the trace snapshot recorded by the
    /// workers. Empty unless `config.tracing` enables recording.
    ///
    /// # Panics
    /// Panics on the same failures as [`ThreadedRuntime::run`].
    pub fn run_traced(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
    ) -> (RunReport, TraceSnapshot) {
        self.try_run_traced(kernel, config)
            .unwrap_or_else(|err| panic!("ThreadedRuntime::run_traced failed: {err}"))
    }

    /// Runs the kernel, reporting failures as a [`RunError`] and returning
    /// the workers' trace snapshot alongside the report.
    pub fn try_run_traced(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
    ) -> Result<(RunReport, TraceSnapshot), RunError> {
        config.try_validate()?;
        let tracer = Tracer::new(config.tracing);
        let report = match config.mode {
            ExecutionMode::Synchronous => self.run_synchronous(kernel, config, &tracer),
            ExecutionMode::Asynchronous => self.run_asynchronous(kernel, config, &tracer),
        }?;
        Ok((report, tracer.snapshot()))
    }

    fn run_synchronous(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
        tracer: &Tracer,
    ) -> Result<RunReport, RunError> {
        let m = kernel.num_blocks();
        let graph = DependencyGraph::from_kernel(kernel);
        let started = Instant::now();
        let workers = config.effective_num_workers(m);

        let mailboxes = CoalescingMailboxes::new(&graph);
        let barrier = Barrier::new(workers);
        let residuals: Vec<AtomicU64> = (0..m).map(|_| AtomicU64::new(0)).collect();
        let stop = AtomicBool::new(false);
        let data_messages = AtomicU64::new(0);
        let data_bytes = AtomicU64::new(0);
        let results: Vec<Mutex<Option<BlockOutcome>>> = (0..m).map(|_| Mutex::new(None)).collect();

        crossbeam::scope(|scope| {
            for worker in 0..workers {
                let graph = &graph;
                let mailboxes = &mailboxes;
                let barrier = &barrier;
                let residuals = &residuals;
                let stop = &stop;
                let data_messages = &data_messages;
                let data_bytes = &data_bytes;
                let results = &results;
                scope.spawn(move |_| {
                    sync_worker(
                        kernel,
                        config,
                        worker,
                        workers,
                        graph,
                        mailboxes,
                        barrier,
                        residuals,
                        stop,
                        data_messages,
                        data_bytes,
                        results,
                        tracer,
                    );
                });
            }
        })
        .expect("a synchronous worker thread panicked");

        // ord: SeqCst — read after every worker joined; kept SeqCst so the proof stays trivial
        let converged = stop.load(Ordering::SeqCst);
        finalize_report(
            kernel,
            ExecutionMode::Synchronous,
            "threaded sync",
            started,
            results
                .into_iter()
                .map(|r| r.into_inner().unwrap())
                .collect(),
            // ord: SeqCst — post-join counter snapshot
            data_messages.load(Ordering::SeqCst),
            0,
            // ord: SeqCst — post-join counter snapshot
            data_bytes.load(Ordering::SeqCst),
            converged,
            mailboxes.stats(),
            // The static partition never touches the work-stealing pool, so
            // the scheduler counters are structural zeros — which is what
            // makes them deterministic, gateable metrics for sync cells.
            SchedCounters::default(),
        )
    }

    fn run_asynchronous(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
        tracer: &Tracer,
    ) -> Result<RunReport, RunError> {
        let m = kernel.num_blocks();
        let graph = DependencyGraph::from_kernel(kernel);
        let started = Instant::now();
        let workers = config.effective_num_workers(m);

        let pool = AsyncPool {
            kernel,
            config,
            graph: &graph,
            mailboxes: CoalescingMailboxes::new(&graph),
            sched: WorkPool::new(m, workers, config.steal_policy),
            tasks: (0..m)
                .map(|b| {
                    Mutex::new(AsyncTask {
                        state: BlockState::new(kernel, b),
                        local: LocalConvergence::new(config.epsilon, config.convergence_streak),
                        done: false,
                    })
                })
                .collect(),
            results: (0..m).map(|_| Mutex::new(None)).collect(),
            stop: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            finished_blocks: AtomicUsize::new(0),
            data_messages: AtomicU64::new(0),
            control_messages: AtomicU64::new(0),
            data_bytes: AtomicU64::new(0),
        };
        // Every block starts runnable ("only the first iteration begins at
        // the same time on all the processors"). Under work-stealing the
        // initial blocks are dealt round-robin across the worker deques —
        // safe before the threads spawn — so the pool starts balanced and
        // the first steals target already-loaded victims.
        for block in 0..m {
            let local = match config.steal_policy {
                StealPolicy::WorkStealing => Some(block % workers),
                StealPolicy::SharedFifo => None,
            };
            pool.sched.enqueue(block, local);
        }

        let (coord_tx, coord_rx) = unbounded::<CoordEvent>();
        let mut detector = GlobalDetector::new(m);

        crossbeam::scope(|scope| {
            for worker in 0..workers {
                let pool = &pool;
                // copy: channel-handle clone (Sender), not payload data
                let coord_tx = coord_tx.clone();
                scope.spawn(move |_| {
                    let _guard = PanicGuard(&pool.sched);
                    match config.steal_policy {
                        StealPolicy::WorkStealing => {
                            stealing_worker(pool, worker, &coord_tx, tracer)
                        }
                        StealPolicy::SharedFifo => fifo_worker(pool, worker, &coord_tx, tracer),
                    }
                });
            }
            drop(coord_tx);

            // The main thread plays the role of the paper's central node: it
            // gathers state messages and broadcasts the stop order.
            let mut finished = 0usize;
            while finished < m {
                match coord_rx.recv() {
                    Ok(CoordEvent::StateChange { block, converged }) => {
                        if detector.report(block, converged) {
                            // ord: SeqCst — stop broadcast to all workers
                            pool.stop.store(true, Ordering::SeqCst);
                            // The stop broadcast: wake every parked worker and
                            // dormant block so each one observes the flag and
                            // finishes (the paper's halting procedure).
                            pool.sched.enqueue_all();
                        }
                    }
                    Ok(CoordEvent::Finished) => finished += 1,
                    Err(_) => break,
                }
            }
        })
        .expect("an asynchronous worker thread panicked");

        let stats = pool.mailboxes.stats();
        let sched_counters = pool.sched.counters();
        finalize_report(
            kernel,
            ExecutionMode::Asynchronous,
            "threaded async",
            started,
            pool.results
                .into_iter()
                .map(|r| r.into_inner().unwrap())
                .collect(),
            // ord: SeqCst — post-join counter snapshot
            pool.data_messages.load(Ordering::SeqCst),
            // ord: SeqCst — post-join counter snapshot
            pool.control_messages.load(Ordering::SeqCst),
            // ord: SeqCst — post-join counter snapshot
            pool.data_bytes.load(Ordering::SeqCst),
            detector.is_decided(),
            stats,
            sched_counters,
        )
    }
}

/// Per-block task of the asynchronous pool. The scheduler's
/// at-most-once-queued invariant means at most one worker processes a block
/// at any time, so the mutex is uncontended in practice.
struct AsyncTask {
    state: BlockState,
    local: LocalConvergence,
    done: bool,
}

/// One work-stealing worker: drain the own deque (LIFO), then run one
/// randomized steal sweep (lock-free, and the victim's FIFO end is the work
/// with the least locality left to lose), then fall back to the
/// mutex-guarded injector, then retry contended victims with exponential
/// backoff, and finally park. Every
/// [`FAIRNESS_INTERVAL`]-th lap the order inverts and the injector is polled
/// first, so demoted work cannot starve behind a productive LIFO top. The
/// `closed` check at the top of every lap is what makes the stop broadcast
/// prompt even for a worker deep in steal backoff.
fn stealing_worker(
    pool: &AsyncPool<'_>,
    worker: usize,
    coord_tx: &Sender<CoordEvent>,
    tracer: &Tracer,
) {
    // One allocation per worker *lifetime* for the track name; every event
    // on the track uses static names (enforced by `cargo xtask analyze` R8).
    let mut rec = tracer.recorder(Layer::Runtime, format!("worker-{worker}"), worker as u64);
    let mut rng = pool
        .config
        .seed
        .wrapping_add(0xA076_1D64_78BD_642F)
        .wrapping_mul(worker as u64 + 1);
    let mut lap: u32 = 0;
    while !pool.sched.is_closed() {
        // Read the enqueue epoch before probing any take path: if the whole
        // lap fails, the worker parks until the epoch moves past this value,
        // so an enqueue racing any probe below forces a re-probe instead of
        // a sleep. (Parking on `pending == 0` instead would busy-loop: the
        // pending work may all sit on another worker's deque, unavailable
        // to this thief until its owner pops it or a future sweep wins it.)
        // ord: SeqCst — epoch snapshot before the work re-check: a concurrent enqueue either shows up in the check or bumps past this value and cancels the park
        let seen = pool.sched.epoch.load(Ordering::SeqCst);
        // Fairness valve: periodically take from a FIFO end — the injector,
        // or failing that the own deque's oldest entry (an owner-side
        // `steal`, which is legal Chase-Lev usage) — so neither
        // stale-demoted blocks nor the seeds at the bottom of the own deque
        // can starve behind a hot LIFO top.
        lap = lap.wrapping_add(1);
        if lap.is_multiple_of(FAIRNESS_INTERVAL) {
            let oldest =
                pool.sched
                    .pop_injector()
                    .or_else(|| match pool.sched.deques[worker].steal() {
                        Steal::Success(block) => Some(block),
                        Steal::Empty | Steal::Retry => None,
                    });
            if let Some(block) = oldest {
                pool.sched.took(block);
                pool.process(block, Some(worker), coord_tx, &mut rec);
                continue;
            }
        }
        if let Some(block) = pool.sched.deques[worker].pop() {
            pool.sched.took(block);
            pool.process(block, Some(worker), coord_tx, &mut rec);
        } else if let (Some(block), _) = pool.sched.steal_sweep(worker, &mut rng) {
            // One cheap sweep only: when every victim is empty the work (if
            // any) sits on the injector, and repeating the sweep with
            // backoff here would tax the common injector-bound lap.
            rec.instant("steal", block as u64);
            pool.sched.took(block);
            pool.process(block, Some(worker), coord_tx, &mut rec);
        } else if let Some(block) = pool.sched.pop_injector() {
            pool.sched.took(block);
            pool.process(block, Some(worker), coord_tx, &mut rec);
        } else if let Some(block) = pool.sched.steal_with_backoff(worker, &mut rng) {
            // Nothing anywhere on the first pass: retry contended victims
            // with backoff before paying for the condition variable.
            rec.instant("steal", block as u64);
            pool.sched.took(block);
            pool.process(block, Some(worker), coord_tx, &mut rec);
        } else {
            // A worker never reaches this arm with a non-empty own deque
            // (only it pushes there, and it popped above), so every block
            // still queued is on the injector or another worker's deque —
            // and any enqueue after `seen` was read wakes this park.
            rec.instant("steal_miss", 0);
            rec.span_begin("park", 0);
            pool.sched.park_until_enqueue(seen, true);
            rec.span_end("park", 0);
        }
    }
}

/// One shared-FIFO worker (the [`StealPolicy::SharedFifo`] baseline): every
/// ready block comes off the injector, exactly like the pre-work-stealing
/// scheduler. The steal counters stay structurally zero on this path.
fn fifo_worker(
    pool: &AsyncPool<'_>,
    worker: usize,
    coord_tx: &Sender<CoordEvent>,
    tracer: &Tracer,
) {
    let mut rec = tracer.recorder(Layer::Runtime, format!("worker-{worker}"), worker as u64);
    while !pool.sched.is_closed() {
        if let Some(block) = pool.sched.pop_injector() {
            pool.sched.took(block);
            pool.process(block, None, coord_tx, &mut rec);
        } else {
            rec.span_begin("park", 0);
            pool.sched.park_idle(false);
            rec.span_end("park", 0);
        }
    }
}

/// Everything the asynchronous pool's workers share.
struct AsyncPool<'a> {
    kernel: &'a dyn IterativeKernel,
    config: &'a RunConfig,
    graph: &'a DependencyGraph,
    mailboxes: CoalescingMailboxes,
    sched: WorkPool,
    tasks: Vec<Mutex<AsyncTask>>,
    results: Vec<Mutex<Option<BlockOutcome>>>,
    /// Global stop order from the coordinator.
    stop: AtomicBool,
    /// Set when some block exhausts its iteration limit before global
    /// convergence: the stop order may now never come, so converged blocks
    /// must stop parking and run out their own limits (the per-thread
    /// semantics of the paper's implementations).
    drain: AtomicBool,
    finished_blocks: AtomicUsize,
    data_messages: AtomicU64,
    control_messages: AtomicU64,
    data_bytes: AtomicU64,
}

impl AsyncPool<'_> {
    /// Runs one scheduling slice of `block`: drain its mailboxes, iterate
    /// once, publish, and decide whether to requeue, park or finish.
    ///
    /// `worker` is the calling worker's deque index under work-stealing
    /// (`None` on the shared-FIFO path): requeues of `block` itself are
    /// owner-pushes onto that deque, and — when the locality bias is on —
    /// so are the ready dependants of a publish.
    fn process(
        &self,
        block: usize,
        worker: Option<usize>,
        coord_tx: &Sender<CoordEvent>,
        rec: &mut TrackRecorder,
    ) {
        let mut task = self.tasks[block].lock().unwrap();
        if task.done {
            return;
        }

        // Receive whatever has arrived (the newest version per edge, by
        // construction of the coalescing mailboxes).
        let mut fresh_data = false;
        self.mailboxes.take_for(block, |src, iteration, values| {
            fresh_data |= task.state.incorporate(src, iteration, values);
        });
        if fresh_data {
            rec.instant("take", block as u64);
        }

        let max_iter = self.config.max_iterations as u64;
        // ord: SeqCst — stop gate on the dispatch path
        if self.stop.load(Ordering::SeqCst) || task.state.iteration >= max_iter {
            self.finish(block, &mut task, coord_tx);
            return;
        }

        // Disabled tracing makes both clock reads return 0 and the push a
        // no-op branch, so the hot path stays untimed.
        let iterate_start = rec.now_ns();
        let update_residual = task.state.iterate(self.kernel);
        let iterate_end = rec.now_ns();
        rec.span_complete("iterate", iterate_start, iterate_end, block as u64);
        // An update far below ε means the block sits at its local fixed
        // point for its current inputs: with a contracting kernel every
        // further iterate moves it geometrically less, so the total drift
        // the gate below can ever suppress is a vanishing fraction of ε.
        // Same criterion (and constant) as the simulated back-end's
        // redundant-update skip. An exact-zero test would not do: floating-
        // point endgames commonly settle into 1-ulp two-cycles that never
        // reach a bit-stable value.
        let at_fixed_point = update_residual < self.config.epsilon * 1e-3;

        // Local convergence is judged on the cumulative drift since the last
        // window anchor, so that a round of updates split over many cheap
        // iterations is not under-measured. Quiet iterations on stale data do
        // not advance the streak; reports go out only when the state changes.
        // An at-fixed-point update is the one exception: it is a genuine
        // converged observation even on stale inputs, and counting it lets a
        // block finish its streak after its dependencies have gone quiet —
        // without it, gating publishes below could starve the streak of
        // fresh data and stall global detection.
        let drift = self
            .kernel
            .residual_between(block, &task.state.values, task.state.anchor());
        if drift >= self.config.epsilon {
            task.state.reset_anchor();
        }
        let has_dependencies = !self.graph.in_neighbours(block).is_empty();
        if task
            .local
            .observe_gated(drift, fresh_data || !has_dependencies || at_fixed_point)
        {
            // ord: stat counter — control-message telemetry
            self.control_messages.fetch_add(1, Ordering::Relaxed);
            let converged = task.local.is_converged();
            rec.instant(
                if converged { "converge" } else { "deconverge" },
                block as u64,
            );
            let _ = coord_tx.send(CoordEvent::StateChange { block, converged });
        }

        // Publish the fresh values on every out-edge, waking the dependants —
        // onto this worker's own deque when the locality bias is on, so the
        // fresh payload is consumed where it is still cache-hot. An
        // at-fixed-point update publishes nothing: the dependants already
        // hold values indistinguishable at the ε scale, and re-sending them
        // only re-enqueues the neighbourhood. Without this gate two mutually
        // dependent blocks at a shared fixed point re-excite each other
        // forever at the top of one worker's deque — a publish-storm
        // livelock that the old shared queue merely throttled into
        // round-robin order.
        let out_degree = self.graph.out_neighbours(block).len() as u64;
        if out_degree > 0 && !at_fixed_point {
            let bias = if self.config.locality_bias {
                worker
            } else {
                None
            };
            self.mailboxes
                .publish_from(block, task.state.iteration, &task.state.values, |dst| {
                    if self.sched.enqueue(dst, bias) {
                        // ord: stat counter — locality telemetry
                        self.sched.local_pushes.fetch_add(1, Ordering::Relaxed);
                    }
                });
            rec.instant("publish", block as u64);
            // ord: stat counter — message-count telemetry
            self.data_messages.fetch_add(out_degree, Ordering::Relaxed);
            self.data_bytes.fetch_add(
                out_degree * Message::data_payload_bytes(task.state.values.len()),
                // ord: stat counter — byte-count telemetry
                Ordering::Relaxed,
            );
        }

        // ord: SeqCst — stop gate re-checked after the iterate
        if self.stop.load(Ordering::SeqCst) || task.state.iteration >= max_iter {
            self.finish(block, &mut task, coord_tx);
        // ord: SeqCst — drain flag decides requeue-at-fixed-point
        } else if task.local.is_converged() && !self.drain.load(Ordering::SeqCst) {
            // Dormant: stay off the run queue until a dependency publishes
            // fresh data or the stop/drain broadcast re-enqueues everything.
            // This replaces the old executor's yield_now busy-spin.
        } else {
            // Self-requeue: an owner push onto this worker's deque while
            // fresh data keeps the block productive (the LIFO pop then runs
            // it again while its inputs are cache-hot). A block iterating on
            // stale data is demoted to the shared injector instead — quiet
            // iterations do not advance the convergence streak, so letting
            // it spin at the top of its owner's deque would starve the rest
            // of the pool for no progress (pathological at one worker).
            self.sched.enqueue(block, worker.filter(|_| fresh_data));
        }
    }

    /// Retires `block`: records its result, reports to the coordinator and
    /// closes the scheduler when it was the last one.
    fn finish(&self, block: usize, task: &mut AsyncTask, coord_tx: &Sender<CoordEvent>) {
        task.done = true;
        *self.results[block].lock().unwrap() = Some(BlockOutcome {
            // One copy per block at retirement, off the hot path (the shared
            // payload may still be referenced by the mailboxes).
            // copy: retirement snapshot — the block's values leave the runtime exactly once, at finish
            values: task.state.values.to_vec(),
            iterations: task.state.iteration,
            residual: task.state.residual,
            payload_clones: task.state.payload_clones,
            bytes_copied: task.state.bytes_copied,
        });
        // ord: SeqCst — stop gate before the convergence broadcast
        if !self.stop.load(Ordering::SeqCst) {
            // Iteration-limit exit before any stop order: global convergence
            // may never be decided now, so make sure no block parks forever.
            // ord: SeqCst — drain broadcast: every worker must observe it before its final laps
            self.drain.store(true, Ordering::SeqCst);
            self.sched.enqueue_all();
        }
        let _ = coord_tx.send(CoordEvent::Finished);
        // ord: SeqCst — finished-block count decides the single shutdown edge
        if self.finished_blocks.fetch_add(1, Ordering::SeqCst) + 1 == self.tasks.len() {
            self.sched.close();
        }
    }
}

/// One synchronous pool worker: owns the blocks `worker, worker + workers,
/// worker + 2·workers, …` and runs them through barrier-separated supersteps.
/// The static partition keeps every block's floating-point trajectory
/// identical to the sequential Jacobi sweep regardless of the pool size.
#[allow(clippy::too_many_arguments)]
fn sync_worker(
    kernel: &dyn IterativeKernel,
    config: &RunConfig,
    worker: usize,
    workers: usize,
    graph: &DependencyGraph,
    mailboxes: &CoalescingMailboxes,
    barrier: &Barrier,
    residuals: &[AtomicU64],
    stop: &AtomicBool,
    data_messages: &AtomicU64,
    data_bytes: &AtomicU64,
    results: &[Mutex<Option<BlockOutcome>>],
    tracer: &Tracer,
) {
    let mut rec = tracer.recorder(Layer::Runtime, format!("worker-{worker}"), worker as u64);
    let m = kernel.num_blocks();
    let mut states: Vec<BlockState> = (worker..m)
        .step_by(workers.max(1))
        .map(|b| BlockState::new(kernel, b))
        .collect();
    let max_iter = config.max_iterations as u64;
    let mut iterations = 0u64;

    while iterations < max_iter {
        // Compute + exchange phase: iterate every owned block (reading the
        // dependency values delivered for the previous iteration — a Jacobi
        // sweep) and publish the new iterates to the dependants' mailboxes.
        for state in states.iter_mut() {
            let iterate_start = rec.now_ns();
            let residual = state.iterate(kernel);
            let iterate_end = rec.now_ns();
            rec.span_complete("iterate", iterate_start, iterate_end, state.id as u64);
            // ord: SeqCst — residual publication for the coordinator's convergence scan
            residuals[state.id].store(residual.to_bits(), Ordering::SeqCst);
            let out_degree = graph.out_neighbours(state.id).len() as u64;
            if out_degree > 0 {
                mailboxes.publish_from(state.id, state.iteration, &state.values, |_| {});
                rec.instant("publish", state.id as u64);
                // ord: stat counter — message-count telemetry
                data_messages.fetch_add(out_degree, Ordering::Relaxed);
                data_bytes.fetch_add(
                    out_degree * Message::data_payload_bytes(state.values.len()),
                    // ord: stat counter — byte-count telemetry
                    Ordering::Relaxed,
                );
            }
        }
        iterations += 1;
        // Barrier A: all publishes of this iteration are visible.
        rec.span_begin("barrier", iterations);
        barrier.wait();
        rec.span_end("barrier", iterations);
        // Delivery phase: incorporate everything received for this iteration.
        for state in states.iter_mut() {
            mailboxes.take_for(state.id, |src, iteration, values| {
                state.incorporate(src, iteration, values);
            });
            rec.instant("take", state.id as u64);
        }
        // The first worker evaluates the global stopping criterion (the
        // synchronous algorithm checks the true global residual).
        if worker == 0 {
            let worst = residuals
                .iter()
                // ord: SeqCst — convergence scan of the published residuals
                .map(|r| f64::from_bits(r.load(Ordering::SeqCst)))
                .fold(0.0f64, f64::max);
            if worst < config.epsilon {
                // ord: SeqCst — stop broadcast on global convergence
                stop.store(true, Ordering::SeqCst);
            }
        }
        // Barrier B: everyone sees the decision for this iteration.
        barrier.wait();
        // ord: SeqCst — stop gate for the superstep loop
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }

    for state in states {
        *results[state.id].lock().unwrap() = Some(BlockOutcome {
            iterations: state.iteration,
            residual: state.residual,
            payload_clones: state.payload_clones,
            bytes_copied: state.bytes_copied,
            // copy: retirement snapshot — sync-mode values leave the runtime at finish
            values: state.values.to_vec(),
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn finalize_report(
    kernel: &dyn IterativeKernel,
    mode: ExecutionMode,
    backend: &str,
    started: Instant,
    outcomes: Vec<Option<BlockOutcome>>,
    data_messages: u64,
    control_messages: u64,
    data_bytes: u64,
    converged: bool,
    mailbox_stats: MailboxStats,
    sched: SchedCounters,
) -> Result<RunReport, RunError> {
    let m = kernel.num_blocks();
    let missing: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter_map(|(block, r)| r.is_none().then_some(block))
        .collect();
    if outcomes.len() != m || !missing.is_empty() {
        return Err(RunError::MissingResults { missing });
    }
    let mut values = Vec::with_capacity(m);
    let mut iterations = Vec::with_capacity(m);
    let mut final_residual = 0.0f64;
    let mut payload_clones = 0u64;
    let mut bytes_copied = 0u64;
    for outcome in outcomes.into_iter().flatten() {
        final_residual = final_residual.max(outcome.residual);
        iterations.push(outcome.iterations);
        payload_clones += outcome.payload_clones;
        bytes_copied += outcome.bytes_copied;
        values.push(outcome.values);
    }
    Ok(RunReport {
        mode,
        backend: backend.to_string(),
        elapsed_secs: started.elapsed().as_secs_f64(),
        iterations,
        data_messages,
        control_messages,
        data_bytes,
        coalesced_messages: mailbox_stats.coalesced,
        peak_mailbox_occupancy: mailbox_stats.peak_occupancy,
        payload_clones,
        bytes_copied,
        steals: sched.steals,
        failed_steal_attempts: sched.failed_steal_attempts,
        local_pushes: sched.local_pushes,
        queue_wait_events: sched.queue_wait_events,
        cpu_queue_secs: 0.0,
        converged,
        premature_stop: false,
        solution: kernel.assemble(&values),
        final_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigError;
    use crate::kernel::test_kernels::{Diverging, RingContraction};
    use crate::runtime::sequential::SequentialRuntime;

    #[test]
    fn synchronous_threaded_matches_sequential_exactly() {
        let kernel = RingContraction::new(4);
        let config = RunConfig::synchronous(1e-10);
        let seq = SequentialRuntime::new().run(&kernel, &config);
        let par = ThreadedRuntime::new().run(&kernel, &config);
        assert!(par.converged);
        assert_eq!(par.iterations[0], seq.iterations[0]);
        for (a, b) in par.solution.iter().zip(&seq.solution) {
            assert_eq!(a, b, "synchronous iterates must be identical");
        }
    }

    #[test]
    fn synchronous_pool_is_bit_identical_for_every_pool_size() {
        let kernel = RingContraction::new(6);
        let seq = SequentialRuntime::new().run(&kernel, &RunConfig::synchronous(1e-10));
        for workers in 1..=6 {
            let config = RunConfig::synchronous(1e-10).with_num_workers(workers);
            let par = ThreadedRuntime::new().run(&kernel, &config);
            assert!(par.converged, "{workers} workers");
            assert_eq!(par.iterations, seq.iterations, "{workers} workers");
            for (a, b) in par.solution.iter().zip(&seq.solution) {
                assert_eq!(a, b, "{workers} workers: iterates must be identical");
            }
        }
    }

    #[test]
    fn asynchronous_threaded_converges_to_the_fixed_point() {
        let kernel = RingContraction::new(6);
        let config = RunConfig::asynchronous(1e-10).with_streak(5);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert!(
            report.converged,
            "AIAC run should detect global convergence"
        );
        let fp = kernel.fixed_point();
        for v in &report.solution {
            assert!((v - fp).abs() < 1e-6, "value {v} vs fixed point {fp}");
        }
        assert!(report.data_messages > 0);
        assert!(report.control_messages > 0);
    }

    #[test]
    fn asynchronous_workers_may_run_different_iteration_counts() {
        let kernel = RingContraction::new(4);
        let config = RunConfig::asynchronous(1e-12);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert_eq!(report.iterations.len(), 4);
        assert!(report.iterations.iter().all(|&i| i > 0));
    }

    #[test]
    fn pool_smaller_than_the_block_count_still_converges() {
        // 12 blocks over at most 2 workers: the old executor would have
        // spawned 12 threads; the pool must multiplex without deadlocking.
        let kernel = RingContraction::new(12);
        let config = RunConfig::asynchronous(1e-10)
            .with_streak(4)
            .with_num_workers(2);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert!(report.converged);
        let fp = kernel.fixed_point();
        for v in &report.solution {
            assert!((v - fp).abs() < 1e-6, "value {v} vs fixed point {fp}");
        }
    }

    #[test]
    fn in_flight_data_is_bounded_by_the_edge_count() {
        let kernel = RingContraction::new(8);
        let graph = DependencyGraph::from_kernel(&kernel);
        for config in [
            RunConfig::synchronous(1e-8).with_num_workers(3),
            RunConfig::asynchronous(1e-8).with_num_workers(3),
        ] {
            let report = ThreadedRuntime::new().run(&kernel, &config);
            assert!(
                report.peak_mailbox_occupancy <= graph.num_edges() as u64,
                "{:?}: peak {} must stay under the edge count {}",
                config.mode,
                report.peak_mailbox_occupancy,
                graph.num_edges()
            );
        }
    }

    #[test]
    fn diverging_problem_hits_the_iteration_limit_in_both_modes() {
        let kernel = Diverging { blocks: 3 };
        for config in [
            RunConfig::synchronous(1e-10).with_max_iterations(50),
            RunConfig::asynchronous(1e-10).with_max_iterations(50),
        ] {
            let report = ThreadedRuntime::new().run(&kernel, &config);
            assert!(!report.converged, "{:?} must not converge", config.mode);
            assert!(report.iterations.iter().all(|&i| i <= 50));
        }
    }

    #[test]
    fn single_block_async_run_works() {
        let kernel = RingContraction::new(1);
        let report = ThreadedRuntime::new().run(&kernel, &RunConfig::asynchronous(1e-10));
        assert!(report.converged);
        assert!((report.solution[0] - kernel.fixed_point()).abs() < 1e-6);
    }

    #[test]
    fn sync_mode_counts_messages_along_ring_edges() {
        let kernel = RingContraction::new(5);
        let config = RunConfig::synchronous(1e-8);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        // 2 out-neighbours per block, 5 blocks, one message per edge per iteration
        assert_eq!(
            report.data_messages,
            10 * report.iterations[0],
            "each iteration sends one message per directed edge"
        );
    }

    #[test]
    fn native_in_place_kernel_runs_zero_copy_in_both_modes() {
        // RingContraction overrides `update_block_into`, so the data plane
        // must never fall back to the copying path: payloads travel only by
        // Arc refcount through the mailboxes and dependency views.
        let kernel = RingContraction::new(6);
        for config in [
            RunConfig::synchronous(1e-10).with_num_workers(3),
            RunConfig::asynchronous(1e-10)
                .with_streak(4)
                .with_num_workers(3),
        ] {
            let report = ThreadedRuntime::new().run(&kernel, &config);
            assert_eq!(report.payload_clones, 0, "{:?}", config.mode);
            assert_eq!(report.bytes_copied, 0, "{:?}", config.mode);
        }
    }

    #[test]
    fn try_run_reports_invalid_configurations() {
        let kernel = RingContraction::new(2);
        let bad = RunConfig::asynchronous(1e-8).with_num_workers(0);
        let err = ThreadedRuntime::new().try_run(&kernel, &bad).unwrap_err();
        assert_eq!(err, RunError::InvalidConfig(ConfigError::ZeroWorkers));
    }

    #[test]
    fn finalize_report_names_the_blocks_without_results() {
        // Regression test: a worker dying used to surface as a bare
        // `assert_eq!(collected, m)` with no hint of what was lost.
        let kernel = RingContraction::new(4);
        let outcome = |v: f64| {
            Some(BlockOutcome {
                values: vec![v],
                iterations: 1,
                residual: 0.0,
                payload_clones: 0,
                bytes_copied: 0,
            })
        };
        let err = finalize_report(
            &kernel,
            ExecutionMode::Asynchronous,
            "threaded async",
            Instant::now(),
            vec![outcome(0.0), None, outcome(2.0), None],
            0,
            0,
            0,
            false,
            MailboxStats::default(),
            SchedCounters::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RunError::MissingResults {
                missing: vec![1, 3]
            }
        );
        assert!(err.to_string().contains("[1, 3]"), "{err}");
    }

    #[test]
    fn shared_fifo_policy_converges_with_structurally_zero_steal_counters() {
        let kernel = RingContraction::new(8);
        let config = RunConfig::asynchronous(1e-10)
            .with_streak(4)
            .with_num_workers(3)
            .with_steal_policy(StealPolicy::SharedFifo);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert!(report.converged);
        let fp = kernel.fixed_point();
        for v in &report.solution {
            assert!((v - fp).abs() < 1e-6, "value {v} vs fixed point {fp}");
        }
        assert_eq!(report.steals, 0);
        assert_eq!(report.failed_steal_attempts, 0);
        assert_eq!(report.local_pushes, 0);
        assert_eq!(report.queue_wait_events, 0);
    }

    #[test]
    fn synchronous_mode_reports_structurally_zero_scheduler_counters() {
        let kernel = RingContraction::new(6);
        let config = RunConfig::synchronous(1e-10).with_num_workers(3);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert!(report.converged);
        assert_eq!(
            (
                report.steals,
                report.failed_steal_attempts,
                report.local_pushes,
                report.queue_wait_events
            ),
            (0, 0, 0, 0),
            "the static sync partition must never touch the stealing pool"
        );
    }

    #[test]
    fn locality_bias_produces_local_pushes_on_an_oversubscribed_pool() {
        // 32 blocks over 2 workers with the bias on: publishes push ready
        // ring neighbours onto the publisher's own deque, so at least one
        // local push must be observed on any schedule (every block publishes
        // to two neighbours every iteration, and only two workers exist to
        // have them already queued elsewhere).
        let kernel = RingContraction::new(32);
        let config = RunConfig::asynchronous(1e-10)
            .with_streak(3)
            .with_num_workers(2);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert!(report.converged);
        assert!(
            report.local_pushes > 0,
            "a biased oversubscribed run must place some dependants locally"
        );
    }

    #[test]
    fn disabling_the_locality_bias_still_converges() {
        let kernel = RingContraction::new(12);
        let config = RunConfig::asynchronous(1e-10)
            .with_streak(4)
            .with_num_workers(3)
            .with_locality_bias(false);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert!(report.converged);
        let fp = kernel.fixed_point();
        for v in &report.solution {
            assert!((v - fp).abs() < 1e-6, "value {v} vs fixed point {fp}");
        }
        assert_eq!(
            report.local_pushes, 0,
            "without the bias no dependant may be pushed locally"
        );
    }

    #[test]
    fn iteration_limited_single_worker_run_with_many_blocks_terminates_promptly() {
        // Regression test for the stop-broadcast audit: a 1-worker pool over
        // 64 blocks takes the drain path (iteration limit, no stop order).
        // With a timeout-sleep-based park this hung or crawled; with the
        // Dekker handshake the drain broadcast must release the run at once.
        let kernel = Diverging { blocks: 64 };
        let config = RunConfig::asynchronous(1e-12)
            .with_max_iterations(5)
            .with_num_workers(1);
        let started = std::time::Instant::now();
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert!(!report.converged);
        assert_eq!(report.iterations.len(), 64);
        assert!(report.iterations.iter().all(|&i| i <= 5));
        assert!(
            started.elapsed().as_secs() < 30,
            "a cancelled 64-block run must terminate promptly, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn stop_broadcast_releases_workers_parked_in_the_steal_path() {
        // More workers than runnable work: most of the pool spends the run
        // parked behind failed steals. The stop broadcast must wake every
        // one of them or the scope join hangs.
        let kernel = RingContraction::new(8);
        let config = RunConfig::asynchronous(1e-10)
            .with_streak(6)
            .with_num_workers(8);
        let started = std::time::Instant::now();
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert!(report.converged);
        assert!(
            started.elapsed().as_secs() < 30,
            "parked stealers must observe the stop broadcast, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn traced_async_run_records_runtime_layer_events() {
        use aiac_obs::TraceConfig;
        let kernel = RingContraction::new(6);
        let config = RunConfig::asynchronous(1e-10)
            .with_streak(4)
            .with_num_workers(2)
            .with_tracing(TraceConfig::on());
        let (report, snap) = ThreadedRuntime::new().run_traced(&kernel, &config);
        assert!(report.converged);
        assert!(!snap.is_empty());
        assert_eq!(snap.layers(), vec![Layer::Runtime]);
        let names: std::collections::BTreeSet<&str> = snap
            .tracks
            .iter()
            .flat_map(|t| t.ring.iter_in_order().map(|e| e.name))
            .collect();
        assert!(names.contains("iterate"), "{names:?}");
        assert!(names.contains("publish"), "{names:?}");
        assert!(names.contains("converge"), "{names:?}");
    }

    #[test]
    fn traced_sync_run_records_iterate_and_barrier_spans() {
        use aiac_obs::TraceConfig;
        let kernel = RingContraction::new(4);
        let config = RunConfig::synchronous(1e-8)
            .with_num_workers(2)
            .with_tracing(TraceConfig::on());
        let (report, snap) = ThreadedRuntime::new().run_traced(&kernel, &config);
        assert!(report.converged);
        let names: std::collections::BTreeSet<&str> = snap
            .tracks
            .iter()
            .flat_map(|t| t.ring.iter_in_order().map(|e| e.name))
            .collect();
        assert!(names.contains("iterate"), "{names:?}");
        assert!(names.contains("barrier"), "{names:?}");
    }

    #[test]
    fn untraced_runs_leave_the_snapshot_empty() {
        let kernel = RingContraction::new(4);
        let config = RunConfig::asynchronous(1e-10).with_streak(4);
        let (report, snap) = ThreadedRuntime::new().run_traced(&kernel, &config);
        assert!(report.converged);
        assert!(snap.is_empty());
    }

    #[test]
    fn steal_policies_agree_on_the_solution() {
        let kernel = RingContraction::new(16);
        let fp = kernel.fixed_point();
        for policy in StealPolicy::ALL {
            let config = RunConfig::asynchronous(1e-10)
                .with_streak(4)
                .with_num_workers(4)
                .with_steal_policy(policy);
            let report = ThreadedRuntime::new().run(&kernel, &config);
            assert!(report.converged, "{policy}");
            for v in &report.solution {
                assert!((v - fp).abs() < 1e-6, "{policy}: value {v} vs {fp}");
            }
        }
    }
}
