//! The threaded runtime: real OS threads, one per block.
//!
//! This back-end is the library's "production" executor on a multicore
//! machine. It maps every block of the kernel to a worker thread and
//! exchanges block data through unbounded crossbeam channels:
//!
//! * **Synchronous mode (SISC)** — every iteration ends with a data exchange
//!   and two barriers, so all workers execute the same iteration number and
//!   the iterates are bit-identical to the sequential Jacobi sweep. The idle
//!   time spent at the barriers is exactly the white space of Figure 1.
//! * **Asynchronous mode (AIAC)** — workers never wait: they drain whatever
//!   messages have arrived, iterate on the data they have, send their new
//!   values to their dependants and immediately start the next iteration, as
//!   in Figure 2. Local convergence is tracked with the streak rule and
//!   reported to a centralized detector (run by the main thread) only on
//!   state changes; the detector broadcasts a stop signal once every block is
//!   locally converged.

use crate::block::BlockState;
use crate::config::{ExecutionMode, RunConfig};
use crate::convergence::{GlobalDetector, LocalConvergence};
use crate::depgraph::DependencyGraph;
use crate::kernel::IterativeKernel;
use crate::message::Message;
use crate::report::RunReport;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// What a worker tells the coordinator.
enum CoordEvent {
    /// The worker's local convergence state changed.
    StateChange { block: usize, converged: bool },
    /// The worker finished (stop received, converged, or iteration limit).
    Finished,
}

/// Final per-worker result returned to the main thread.
struct WorkerResult {
    block: usize,
    values: Vec<f64>,
    iterations: u64,
    residual: f64,
}

/// Multi-threaded executor (one OS thread per block).
#[derive(Debug, Clone, Default)]
pub struct ThreadedRuntime {
    _private: (),
}

impl ThreadedRuntime {
    /// Creates the runtime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the kernel with the requested mode and returns the report.
    pub fn run(&self, kernel: &dyn IterativeKernel, config: &RunConfig) -> RunReport {
        config.validate();
        match config.mode {
            ExecutionMode::Synchronous => self.run_synchronous(kernel, config),
            ExecutionMode::Asynchronous => self.run_asynchronous(kernel, config),
        }
    }

    fn run_synchronous(&self, kernel: &dyn IterativeKernel, config: &RunConfig) -> RunReport {
        let m = kernel.num_blocks();
        let graph = DependencyGraph::from_kernel(kernel);
        let started = Instant::now();

        // Data channels, one inbox per block.
        let mut senders = Vec::with_capacity(m);
        let mut receivers = Vec::with_capacity(m);
        for _ in 0..m {
            let (tx, rx) = unbounded::<Message>();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let barrier = Barrier::new(m);
        let residuals: Vec<AtomicU64> = (0..m).map(|_| AtomicU64::new(0)).collect();
        let stop = AtomicBool::new(false);
        let data_messages = AtomicU64::new(0);
        let data_bytes = AtomicU64::new(0);
        let (result_tx, result_rx) = unbounded::<WorkerResult>();

        crossbeam::scope(|scope| {
            for (block, slot) in receivers.iter_mut().enumerate() {
                let rx = slot.take().expect("receiver already taken");
                let senders = &senders;
                let graph = &graph;
                let barrier = &barrier;
                let residuals = &residuals;
                let stop = &stop;
                let data_messages = &data_messages;
                let data_bytes = &data_bytes;
                let result_tx = result_tx.clone();
                scope.spawn(move |_| {
                    sync_worker(
                        kernel,
                        config,
                        block,
                        rx,
                        senders,
                        graph,
                        barrier,
                        residuals,
                        stop,
                        data_messages,
                        data_bytes,
                        result_tx,
                    );
                });
            }
        })
        .expect("a synchronous worker thread panicked");
        drop(result_tx);

        let converged = stop.load(Ordering::SeqCst);
        finalize_report(
            kernel,
            ExecutionMode::Synchronous,
            "threaded sync",
            started,
            result_rx,
            data_messages.load(Ordering::SeqCst),
            0,
            data_bytes.load(Ordering::SeqCst),
            converged,
        )
    }

    fn run_asynchronous(&self, kernel: &dyn IterativeKernel, config: &RunConfig) -> RunReport {
        let m = kernel.num_blocks();
        let graph = DependencyGraph::from_kernel(kernel);
        let started = Instant::now();

        let mut senders = Vec::with_capacity(m);
        let mut receivers = Vec::with_capacity(m);
        for _ in 0..m {
            let (tx, rx) = unbounded::<Message>();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let (coord_tx, coord_rx) = unbounded::<CoordEvent>();
        let (result_tx, result_rx) = unbounded::<WorkerResult>();
        let stop = AtomicBool::new(false);
        let data_messages = AtomicU64::new(0);
        let control_messages = AtomicU64::new(0);
        let data_bytes = AtomicU64::new(0);
        let mut detector = GlobalDetector::new(m);

        crossbeam::scope(|scope| {
            for (block, slot) in receivers.iter_mut().enumerate() {
                let rx = slot.take().expect("receiver already taken");
                let senders = &senders;
                let graph = &graph;
                let stop = &stop;
                let data_messages = &data_messages;
                let control_messages = &control_messages;
                let data_bytes = &data_bytes;
                let coord_tx = coord_tx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move |_| {
                    async_worker(
                        kernel,
                        config,
                        block,
                        rx,
                        senders,
                        graph,
                        stop,
                        data_messages,
                        control_messages,
                        data_bytes,
                        coord_tx,
                        result_tx,
                    );
                });
            }
            drop(coord_tx);

            // The main thread plays the role of the paper's central node:
            // it gathers state messages and broadcasts the stop order.
            let mut finished = 0usize;
            while finished < m {
                match coord_rx.recv() {
                    Ok(CoordEvent::StateChange { block, converged }) => {
                        if detector.report(block, converged) {
                            stop.store(true, Ordering::SeqCst);
                            for tx in senders.iter() {
                                // Workers also poll the stop flag; the explicit
                                // message mirrors the paper's halting procedure.
                                let _ = tx.send(Message::Stop);
                            }
                        }
                    }
                    Ok(CoordEvent::Finished) => finished += 1,
                    Err(_) => break,
                }
            }
        })
        .expect("an asynchronous worker thread panicked");
        drop(result_tx);

        finalize_report(
            kernel,
            ExecutionMode::Asynchronous,
            "threaded async",
            started,
            result_rx,
            data_messages.load(Ordering::SeqCst),
            control_messages.load(Ordering::SeqCst),
            data_bytes.load(Ordering::SeqCst),
            detector.is_decided(),
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn sync_worker(
    kernel: &dyn IterativeKernel,
    config: &RunConfig,
    block: usize,
    rx: Receiver<Message>,
    senders: &[Sender<Message>],
    graph: &DependencyGraph,
    barrier: &Barrier,
    residuals: &[AtomicU64],
    stop: &AtomicBool,
    data_messages: &AtomicU64,
    data_bytes: &AtomicU64,
    result_tx: Sender<WorkerResult>,
) {
    let mut state = BlockState::new(kernel, block);
    let max_iter = config.max_iterations as u64;

    while state.iteration < max_iter {
        let residual = state.iterate(kernel);
        residuals[block].store(residual.to_bits(), Ordering::SeqCst);

        // Exchange: send the new values to every dependant.
        for &dst in graph.out_neighbours(block) {
            let msg = Message::Data {
                from: block,
                iteration: state.iteration,
                values: state.values.clone(),
            };
            data_bytes.fetch_add(msg.payload_bytes(), Ordering::Relaxed);
            data_messages.fetch_add(1, Ordering::Relaxed);
            let _ = senders[dst].send(msg);
        }
        // Barrier A: all sends of this iteration are in flight.
        barrier.wait();
        // Incorporate everything received for this iteration.
        while let Ok(msg) = rx.try_recv() {
            if let Message::Data {
                from,
                iteration,
                values,
            } = msg
            {
                state.incorporate(from, iteration, values);
            }
        }
        // Block 0 evaluates the global stopping criterion (the synchronous
        // algorithm checks the true global residual).
        if block == 0 {
            let worst = residuals
                .iter()
                .map(|r| f64::from_bits(r.load(Ordering::SeqCst)))
                .fold(0.0f64, f64::max);
            if worst < config.epsilon {
                stop.store(true, Ordering::SeqCst);
            }
        }
        // Barrier B: everyone sees the decision for this iteration.
        barrier.wait();
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }

    let _ = result_tx.send(WorkerResult {
        block,
        values: state.values,
        iterations: state.iteration,
        residual: state.residual,
    });
}

#[allow(clippy::too_many_arguments)]
fn async_worker(
    kernel: &dyn IterativeKernel,
    config: &RunConfig,
    block: usize,
    rx: Receiver<Message>,
    senders: &[Sender<Message>],
    graph: &DependencyGraph,
    stop: &AtomicBool,
    data_messages: &AtomicU64,
    control_messages: &AtomicU64,
    data_bytes: &AtomicU64,
    coord_tx: Sender<CoordEvent>,
    result_tx: Sender<WorkerResult>,
) {
    let mut state = BlockState::new(kernel, block);
    let mut local = LocalConvergence::new(config.epsilon, config.convergence_streak);
    let max_iter = config.max_iterations as u64;
    let has_dependencies = !graph.in_neighbours(block).is_empty();
    let mut stop_received = false;

    loop {
        // Receive whatever has arrived, without ever blocking (the paper's
        // separate receiving threads; the newest version wins).
        let mut fresh_data = false;
        while let Ok(msg) = rx.try_recv() {
            match msg {
                Message::Data {
                    from,
                    iteration,
                    values,
                } => {
                    fresh_data |= state.incorporate(from, iteration, values);
                }
                Message::Stop => stop_received = true,
                Message::State { .. } => {}
            }
        }
        if stop_received || stop.load(Ordering::SeqCst) || state.iteration >= max_iter {
            break;
        }

        state.iterate(kernel);

        // Local convergence is judged on the cumulative drift since the last
        // window anchor, so that a round of updates split over many cheap
        // iterations is not under-measured. Quiet iterations on stale data do
        // not advance the streak; reports go out only when the state changes.
        let drift = kernel.residual_between(block, &state.values, state.anchor());
        if drift >= config.epsilon {
            state.reset_anchor();
        }
        if local.observe_gated(drift, fresh_data || !has_dependencies) {
            control_messages.fetch_add(1, Ordering::Relaxed);
            let _ = coord_tx.send(CoordEvent::StateChange {
                block,
                converged: local.is_converged(),
            });
        }

        // Send the fresh values to every dependant, asynchronously.
        for &dst in graph.out_neighbours(block) {
            let msg = Message::Data {
                from: block,
                iteration: state.iteration,
                values: state.values.clone(),
            };
            data_bytes.fetch_add(msg.payload_bytes(), Ordering::Relaxed);
            data_messages.fetch_add(1, Ordering::Relaxed);
            let _ = senders[dst].send(msg);
        }
        std::thread::yield_now();
    }

    let _ = coord_tx.send(CoordEvent::Finished);
    let _ = result_tx.send(WorkerResult {
        block,
        values: state.values,
        iterations: state.iteration,
        residual: state.residual,
    });
}

#[allow(clippy::too_many_arguments)]
fn finalize_report(
    kernel: &dyn IterativeKernel,
    mode: ExecutionMode,
    backend: &str,
    started: Instant,
    result_rx: Receiver<WorkerResult>,
    data_messages: u64,
    control_messages: u64,
    data_bytes: u64,
    converged: bool,
) -> RunReport {
    let m = kernel.num_blocks();
    let mut values = vec![Vec::new(); m];
    let mut iterations = vec![0u64; m];
    let mut final_residual = 0.0f64;
    let mut collected = 0usize;
    while let Ok(res) = result_rx.try_recv() {
        values[res.block] = res.values;
        iterations[res.block] = res.iterations;
        final_residual = final_residual.max(res.residual);
        collected += 1;
    }
    assert_eq!(collected, m, "missing worker results");
    RunReport {
        mode,
        backend: backend.to_string(),
        elapsed_secs: started.elapsed().as_secs_f64(),
        iterations,
        data_messages,
        control_messages,
        data_bytes,
        converged,
        solution: kernel.assemble(&values),
        final_residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::{Diverging, RingContraction};
    use crate::runtime::sequential::SequentialRuntime;

    #[test]
    fn synchronous_threaded_matches_sequential_exactly() {
        let kernel = RingContraction::new(4);
        let config = RunConfig::synchronous(1e-10);
        let seq = SequentialRuntime::new().run(&kernel, &config);
        let par = ThreadedRuntime::new().run(&kernel, &config);
        assert!(par.converged);
        assert_eq!(par.iterations[0], seq.iterations[0]);
        for (a, b) in par.solution.iter().zip(&seq.solution) {
            assert_eq!(a, b, "synchronous iterates must be identical");
        }
    }

    #[test]
    fn asynchronous_threaded_converges_to_the_fixed_point() {
        let kernel = RingContraction::new(6);
        let config = RunConfig::asynchronous(1e-10).with_streak(5);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert!(
            report.converged,
            "AIAC run should detect global convergence"
        );
        let fp = kernel.fixed_point();
        for v in &report.solution {
            assert!((v - fp).abs() < 1e-6, "value {v} vs fixed point {fp}");
        }
        assert!(report.data_messages > 0);
        assert!(report.control_messages > 0);
    }

    #[test]
    fn asynchronous_workers_may_run_different_iteration_counts() {
        let kernel = RingContraction::new(4);
        let config = RunConfig::asynchronous(1e-12);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        assert_eq!(report.iterations.len(), 4);
        assert!(report.iterations.iter().all(|&i| i > 0));
    }

    #[test]
    fn diverging_problem_hits_the_iteration_limit_in_both_modes() {
        let kernel = Diverging { blocks: 3 };
        for config in [
            RunConfig::synchronous(1e-10).with_max_iterations(50),
            RunConfig::asynchronous(1e-10).with_max_iterations(50),
        ] {
            let report = ThreadedRuntime::new().run(&kernel, &config);
            assert!(!report.converged, "{:?} must not converge", config.mode);
            assert!(report.iterations.iter().all(|&i| i <= 50));
        }
    }

    #[test]
    fn single_block_async_run_works() {
        let kernel = RingContraction::new(1);
        let report = ThreadedRuntime::new().run(&kernel, &RunConfig::asynchronous(1e-10));
        assert!(report.converged);
        assert!((report.solution[0] - kernel.fixed_point()).abs() < 1e-6);
    }

    #[test]
    fn sync_mode_counts_messages_along_ring_edges() {
        let kernel = RingContraction::new(5);
        let config = RunConfig::synchronous(1e-8);
        let report = ThreadedRuntime::new().run(&kernel, &config);
        // 2 out-neighbours per block, 5 blocks, one message per edge per iteration
        assert_eq!(
            report.data_messages,
            10 * report.iterations[0],
            "each iteration sends one message per directed edge"
        );
    }
}
