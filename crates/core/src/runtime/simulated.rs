//! The simulated runtime: virtual-time execution over a grid model.
//!
//! The paper's measurements were taken on multi-site grids (10 Mb Ethernet,
//! consumer ADSL) and on a 40-machine heterogeneous cluster; none of that
//! hardware is available, so this back-end replays the same algorithms in
//! *virtual time* over an [`aiac_netsim::topology::GridTopology`] and an
//! [`aiac_envs::env::Environment`] model:
//!
//! * blocks are assigned to hosts by a [`Placement`] policy (round-robin,
//!   site-packed or speed-weighted, selectable through
//!   [`RunConfig::placement`] or [`SimulatedRuntime::with_placement`]);
//! * compute phases take `iteration_cost / host speed` virtual seconds *and
//!   occupy a CPU core*: a host has finitely many cores
//!   ([`aiac_netsim::host::Host::cores`]), so when more blocks than cores
//!   share a machine their compute phases are serialised FIFO by the
//!   [`aiac_netsim::sched::HostScheduler`] instead of all running at full
//!   speed — this is what makes oversubscribed timings honest;
//! * data messages pay the environment's packing cost (serialised according
//!   to the Table 4 thread configuration), the network transfer time with
//!   FIFO contention ([`aiac_netsim::network::Network`]) and the receiver's
//!   dispatch cost; dedicated receiving-thread pools are a *per-host*
//!   resource shared by every co-located block, so reception contends
//!   realistically too;
//! * the synchronous mode inserts the global exchange and barrier of Figure 1
//!   between iterations;
//! * the asynchronous mode runs every processor at its own pace and stops it
//!   only when the centralized detector's stop message reaches it, exactly as
//!   in Section 4.3 — and the final report is verified against the assembled
//!   residual, so a stop decided while a de-convergence report was in flight
//!   is flagged as [`RunReport::premature_stop`] rather than declared
//!   converged.
//!
//! The whole simulation is deterministic, which is what lets the benchmark
//! harness regenerate Tables 2–3 and Figure 3 reproducibly.

use crate::block::BlockState;
use crate::config::{ExecutionMode, RunConfig};
use crate::convergence::{GlobalDetector, LocalConvergence};
use crate::depgraph::DependencyGraph;
use crate::kernel::{IterativeKernel, Payload};
use crate::placement::{Placement, PlacementPolicy};
use crate::report::RunReport;
use aiac_envs::env::{EnvKind, Environment};
use aiac_envs::threads::{ProblemKind, ReceiveDiscipline, ThreadConfig};
use aiac_netsim::host::HostId;
use aiac_netsim::network::{Network, NetworkStats};
use aiac_netsim::sched::{HostLoad, HostScheduler};
use aiac_netsim::sim::Simulator;
use aiac_netsim::time::SimTime;
use aiac_netsim::topology::GridTopology;
use aiac_netsim::trace::{Activity, ExecutionTrace};
use aiac_obs::{Layer, TraceSnapshot, Tracer, TrackRecorder};
use serde::{Deserialize, Serialize};

/// Size in bytes of a convergence-state or stop control message on the wire.
const CONTROL_BYTES: u64 = 16;

/// A virtual instant as integer nanoseconds for the event tracer. The
/// rounding is a pure function of the (deterministic) virtual clock, which
/// is what makes traced simulated runs bit-identical across machines.
fn sim_ns(t: SimTime) -> u64 {
    (t.as_secs() * 1e9).round() as u64
}

/// One event recorder per host of the topology, on the netsim layer.
fn host_recorders(tracer: &Tracer, topology: &GridTopology) -> Vec<TrackRecorder> {
    (0..topology.num_hosts())
        .map(|h| tracer.recorder(Layer::Netsim, format!("host-{h}"), h as u64))
        .collect()
}

/// The deterministic, serialisable metrics of a simulated run.
///
/// Everything here is a pure function of the kernel, the configuration, the
/// topology and the environment model — the simulation involves no
/// wall-clock time and no OS scheduling, so two runs of the same experiment
/// produce bit-identical values on any machine. That is what makes these
/// metrics *gateable*: the benchmark harness records them in
/// `BENCH_baseline.json` and CI fails when a PR moves one beyond tolerance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Final virtual time of the run, in seconds.
    pub sim_time_secs: f64,
    /// Total virtual seconds jobs waited for a free CPU core or dedicated
    /// receiving thread (see [`RunReport::cpu_queue_secs`]).
    pub cpu_queue_secs: f64,
    /// Total virtual core-busy seconds across every host.
    pub cpu_busy_secs: f64,
    /// Total virtual seconds messages queued behind other transfers.
    pub net_queue_secs: f64,
    /// Number of data messages sent.
    pub data_messages: u64,
    /// Number of control (state / stop) messages sent.
    pub control_messages: u64,
    /// Total application payload bytes carried by data messages.
    pub data_bytes: u64,
    /// Sum of the local iteration counts of every block.
    pub total_iterations: u64,
    /// Largest local iteration count of any block.
    pub max_iterations: u64,
    /// Mean per-host CPU utilization over the run (0–1).
    pub mean_utilization: f64,
    /// Largest number of blocks co-located on one host.
    pub max_colocation: usize,
    /// Whether the run converged (see [`RunReport::converged`]).
    pub converged: bool,
    /// Whether the stop decision was premature (see
    /// [`RunReport::premature_stop`]).
    pub premature_stop: bool,
}

/// Result of a simulated run: the usual report plus simulation-only
/// information (virtual time, execution trace, network statistics, per-host
/// CPU loads and the placement that was used).
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// The standard run report; `elapsed_secs` holds the *virtual* time.
    pub report: RunReport,
    /// Final virtual time of the run.
    pub sim_time: SimTime,
    /// Execution trace (only when tracing was enabled).
    pub trace: Option<ExecutionTrace>,
    /// Network transfer statistics.
    pub network: NetworkStats,
    /// Per-host CPU load over the run: busy time, core-queueing delay, job
    /// count and utilization, in host order.
    pub host_loads: Vec<HostLoad>,
    /// The block → host assignment the run executed under.
    pub placement: Placement,
    /// Per-host event timelines on the virtual clock (empty unless
    /// `RunConfig::tracing` enables recording). Timestamps are virtual
    /// nanoseconds, so the exported trace is bit-identical across runs.
    pub obs_trace: TraceSnapshot,
}

impl SimulationOutcome {
    /// Collapses the outcome into its deterministic, serialisable metrics
    /// (see [`SimMetrics`]).
    pub fn metrics(&self) -> SimMetrics {
        let mean_utilization = if self.host_loads.is_empty() {
            0.0
        } else {
            self.host_loads.iter().map(|l| l.utilization).sum::<f64>()
                / self.host_loads.len() as f64
        };
        SimMetrics {
            sim_time_secs: self.sim_time.as_secs(),
            cpu_queue_secs: self.report.cpu_queue_secs,
            cpu_busy_secs: self.host_loads.iter().map(|l| l.busy_secs).sum(),
            net_queue_secs: self.network.queueing_secs,
            data_messages: self.report.data_messages,
            control_messages: self.report.control_messages,
            data_bytes: self.report.data_bytes,
            total_iterations: self.report.iterations.iter().sum(),
            max_iterations: self.report.max_iterations(),
            mean_utilization,
            max_colocation: self.placement.max_colocation(),
            converged: self.report.converged,
            premature_stop: self.report.premature_stop,
        }
    }
}

/// Virtual-time executor over a simulated grid.
pub struct SimulatedRuntime {
    topology: GridTopology,
    env: Box<dyn Environment>,
    problem: ProblemKind,
    record_trace: bool,
    placement: Option<PlacementPolicy>,
}

impl SimulatedRuntime {
    /// Creates a runtime for the given platform, environment and problem kind
    /// (the problem kind selects the Table 4 thread configuration).
    pub fn new(topology: GridTopology, env: EnvKind, problem: ProblemKind) -> Self {
        Self {
            topology,
            env: env.build(),
            problem,
            record_trace: false,
            placement: None,
        }
    }

    /// Enables or disables execution tracing (needed for the Figure 1/2
    /// reproduction; off by default because traces grow with the iteration
    /// count).
    pub fn with_trace(mut self, enable: bool) -> Self {
        self.record_trace = enable;
        self
    }

    /// Forces a placement policy, overriding whatever the [`RunConfig`]
    /// selects. Useful when the same configuration is swept over several
    /// policies.
    pub fn with_placement(mut self, policy: PlacementPolicy) -> Self {
        self.placement = Some(policy);
        self
    }

    /// The environment model used by this runtime.
    pub fn environment(&self) -> &dyn Environment {
        self.env.as_ref()
    }

    /// The platform used by this runtime.
    pub fn topology(&self) -> &GridTopology {
        &self.topology
    }

    /// The placement policy a run with `config` would use (the runtime-level
    /// override wins over the configuration).
    fn effective_policy(&self, config: &RunConfig) -> PlacementPolicy {
        self.placement.unwrap_or(config.placement)
    }

    /// Runs the kernel and returns the simulation outcome.
    ///
    /// # Panics
    /// Panics if the configuration asks for asynchronous execution on an
    /// environment that does not support it (the mono-threaded MPI model).
    pub fn run(&self, kernel: &dyn IterativeKernel, config: &RunConfig) -> SimulationOutcome {
        config.validate();
        assert!(
            self.topology.num_hosts() > 0,
            "the topology must contain at least one host"
        );
        match config.mode {
            ExecutionMode::Synchronous => self.run_synchronous(kernel, config),
            ExecutionMode::Asynchronous => {
                assert!(
                    self.env.supports_async(),
                    "{} cannot run AIAC algorithms (no multi-threading); \
                     use the synchronous mode or a multi-threaded environment",
                    self.env.name()
                );
                self.run_asynchronous(kernel, config)
            }
        }
    }

    // ------------------------------------------------------------------
    // Synchronous (SISC) simulation
    // ------------------------------------------------------------------

    fn run_synchronous(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
    ) -> SimulationOutcome {
        let m = kernel.num_blocks();
        let graph = DependencyGraph::from_kernel(kernel);
        let placement = Placement::compute(self.effective_policy(config), m, &self.topology);
        let mut network = Network::new(self.topology.clone());
        let mut cpu = HostScheduler::for_topology(&self.topology);
        let mut trace = self.record_trace.then(|| ExecutionTrace::new(m));
        let tracer = Tracer::new(config.tracing);
        let mut recorders = host_recorders(&tracer, &self.topology);

        let mut states: Vec<BlockState> = (0..m).map(|b| BlockState::new(kernel, b)).collect();
        let mut iteration_start = SimTime::ZERO;
        let mut iterations = 0u64;
        let mut converged = false;
        let mut worst_residual = f64::INFINITY;
        let mut data_messages = 0u64;
        let mut control_messages = 0u64;
        let mut data_bytes = 0u64;

        while iterations < config.max_iterations as u64 {
            // --- compute phase -------------------------------------------------
            // Every block's update is a job on its host's cores: co-located
            // blocks beyond the core count run one after the other, which is
            // where the oversubscription penalty of Figure 3 comes from.
            let compute_end: Vec<SimTime> = (0..m)
                .map(|b| {
                    let host_id = placement.host_of(b);
                    let host = self.topology.host(host_id);
                    let slot = cpu.schedule(
                        host_id,
                        iteration_start,
                        host.compute_time(kernel.iteration_cost(b)),
                    );
                    if let Some(tr) = trace.as_mut() {
                        if slot.start > iteration_start {
                            tr.record(b, iteration_start, slot.start, Activity::Idle);
                        }
                        tr.record(b, slot.start, slot.end, Activity::Compute);
                    }
                    let rec = &mut recorders[host_id.0];
                    if slot.start > iteration_start {
                        rec.span_complete(
                            "cpu_wait",
                            sim_ns(iteration_start),
                            sim_ns(slot.start),
                            b as u64,
                        );
                    }
                    rec.span_complete("compute", sim_ns(slot.start), sim_ns(slot.end), b as u64);
                    slot.end
                })
                .collect();

            // Numerically, a synchronous iteration is a Jacobi sweep: all blocks
            // read the values of the previous iteration (a refcount bump per
            // block, not a copy).
            let snapshot: Vec<Payload> = states.iter().map(|s| s.values.clone()).collect();
            for state in states.iter_mut() {
                for dep in graph.in_neighbours(state.id) {
                    state.view.set(*dep, snapshot[*dep].clone());
                }
            }
            worst_residual = 0.0;
            for state in states.iter_mut() {
                worst_residual = worst_residual.max(state.iterate(kernel));
            }
            iterations += 1;

            // --- global exchange ------------------------------------------------
            // Every block sends its new values to its dependants. Packing and
            // unpacking are CPU work, so they go through the host scheduler
            // too. The synchronous baseline is mono-threaded: once a block
            // gets a core it packs all its outgoing messages back to back,
            // modelled as one batched job so per-host submissions stay in
            // chronological order (the scheduler's FIFO precondition).
            let mut barrier_time = compute_end
                .iter()
                .copied()
                .fold(SimTime::ZERO, SimTime::max);
            // Packing jobs are admitted in readiness order (on multi-core or
            // heterogeneous-cost hosts, compute phases do not finish in block
            // order), and all sends of one iteration are admitted before any
            // reception: the mono-threaded exchange sends first and only then
            // services arrivals, so a host's own sends take priority over
            // unpacking within the iteration.
            let mut pack_order: Vec<usize> = (0..m)
                .filter(|&b| !graph.out_neighbours(b).is_empty())
                .collect();
            pack_order.sort_by_key(|&b| compute_end[b]);
            let mut unpack_jobs: Vec<(SimTime, HostId, SimTime)> = Vec::new();
            for b in pack_order {
                let block_end = compute_end[b];
                let src = placement.host_of(b);
                let messages: Vec<_> = graph
                    .out_neighbours(b)
                    .iter()
                    .map(|&dst_block| {
                        let payload = kernel.message_bytes(b, dst_block) + CONTROL_BYTES;
                        (dst_block, payload, self.env.message_cost(payload))
                    })
                    .collect();
                let total_pack = messages
                    .iter()
                    .fold(SimTime::ZERO, |acc, (_, _, cost)| acc + cost.sender_cpu);
                let pack = cpu.schedule(src, block_end, total_pack);
                let mut send_clock = pack.start;
                for (dst_block, payload, cost) in messages {
                    let dst = placement.host_of(dst_block);
                    send_clock += cost.sender_cpu;
                    let arrival = if src == dst {
                        send_clock
                    } else {
                        network.transfer(src, dst, payload, cost.protocol_bytes, send_clock)
                    };
                    unpack_jobs.push((arrival + cost.dispatch_latency, dst, cost.receiver_cpu));
                    data_messages += 1;
                    data_bytes += payload;
                }
            }
            // Receptions are admitted in arrival order (the sort is stable,
            // so simultaneous arrivals keep a deterministic order): a core
            // must never sit idle in front of an already-arrived message
            // because a later-arriving one was submitted first.
            unpack_jobs.sort_by_key(|job| job.0);
            for (ready, dst, handle_cost) in unpack_jobs {
                let unpack = cpu.schedule(dst, ready, handle_cost);
                let rec = &mut recorders[dst.0];
                rec.instant_at("msg_arrive", sim_ns(ready), 0);
                if unpack.start > ready {
                    rec.span_complete("cpu_wait", sim_ns(ready), sim_ns(unpack.start), 0);
                }
                barrier_time = barrier_time.max(unpack.end);
            }

            // --- synchronisation points -----------------------------------------
            // Every processor reports to processor 0, which broadcasts the
            // verdict: 2·(m−1) small control messages per collective. The
            // kernel says how many such collectives one synchronous iteration
            // needs (one for a plain fixed-point sweep; many for the paper's
            // globally-synchronised Newton/GMRES baseline).
            let coord = placement.host_of(0);
            let mut next_start = barrier_time;
            for _ in 0..kernel.sync_collectives_per_iteration().max(1) {
                let round_start = next_start;
                let mut verdict_time = round_start;
                for b in 1..m {
                    let src = placement.host_of(b);
                    let cost = self.env.message_cost(CONTROL_BYTES);
                    let arrival = if src == coord {
                        round_start + cost.sender_cpu + cost.receiver_cpu
                    } else {
                        network.transfer(
                            src,
                            coord,
                            CONTROL_BYTES,
                            cost.protocol_bytes,
                            round_start,
                        ) + cost.receiver_cpu
                    };
                    verdict_time = verdict_time.max(arrival);
                    control_messages += 1;
                }
                for b in 1..m {
                    let dst = placement.host_of(b);
                    let cost = self.env.message_cost(CONTROL_BYTES);
                    let arrival = if dst == coord {
                        verdict_time + cost.sender_cpu + cost.receiver_cpu
                    } else {
                        network.transfer(
                            coord,
                            dst,
                            CONTROL_BYTES,
                            cost.protocol_bytes,
                            verdict_time,
                        ) + cost.receiver_cpu
                    };
                    next_start = next_start.max(arrival);
                    control_messages += 1;
                }
            }

            if let Some(tr) = trace.as_mut() {
                for (b, &end) in compute_end.iter().enumerate() {
                    tr.record(b, end, next_start, Activity::Idle);
                }
            }
            iteration_start = next_start;

            if worst_residual < config.epsilon {
                converged = true;
                break;
            }
        }

        let values: Vec<Vec<f64>> = states.iter().map(|s| s.values.to_vec()).collect();
        let report = RunReport {
            mode: ExecutionMode::Synchronous,
            backend: self.env.kind().label().to_string(),
            elapsed_secs: iteration_start.as_secs(),
            iterations: vec![iterations; m],
            data_messages,
            control_messages,
            data_bytes,
            coalesced_messages: 0,
            peak_mailbox_occupancy: 0,
            payload_clones: states.iter().map(|s| s.payload_clones).sum(),
            bytes_copied: states.iter().map(|s| s.bytes_copied).sum(),
            steals: 0,
            failed_steal_attempts: 0,
            local_pushes: 0,
            queue_wait_events: 0,
            cpu_queue_secs: cpu.total_queue_secs(),
            converged,
            premature_stop: false,
            solution: kernel.assemble(&values),
            final_residual: worst_residual,
        };
        drop(recorders);
        SimulationOutcome {
            sim_time: iteration_start,
            trace,
            network: network.stats(),
            host_loads: cpu.loads(iteration_start),
            placement,
            report,
            obs_trace: tracer.snapshot(),
        }
    }

    // ------------------------------------------------------------------
    // Asynchronous (AIAC) simulation
    // ------------------------------------------------------------------

    fn run_asynchronous(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
    ) -> SimulationOutcome {
        let m = kernel.num_blocks();
        let thread_cfg = self.env.thread_config(self.problem, m);
        let placement = Placement::compute(self.effective_policy(config), m, &self.topology);
        // The Table-4 dedicated receiving threads are a per-host resource:
        // every block placed on a machine shares its pool. On-demand schemes
        // spawn a handler per message instead and are modelled as an additive
        // cost below.
        let rx_pools = match thread_cfg.receive {
            ReceiveDiscipline::Dedicated(n) => {
                Some(HostScheduler::uniform(self.topology.num_hosts(), n.max(1)))
            }
            ReceiveDiscipline::OnDemand { .. } => None,
        };
        let tracer = Tracer::new(config.tracing);
        let mut engine = AsyncEngine {
            kernel,
            config,
            env: self.env.as_ref(),
            topology: &self.topology,
            graph: DependencyGraph::from_kernel(kernel),
            thread_cfg,
            placement,
            network: Network::new(self.topology.clone()),
            sim: Simulator::new(),
            procs: (0..m).map(|b| ProcSim::new(kernel, b, m, config)).collect(),
            detector: GlobalDetector::new(m),
            stats: Stats::default(),
            trace: self.record_trace.then(|| ExecutionTrace::new(m)),
            cpu: HostScheduler::for_topology(&self.topology),
            rx_pools,
            recorders: host_recorders(&tracer, &self.topology),
        };
        engine.run();
        engine.recorders.clear();

        let end_time = engine
            .procs
            .iter()
            .map(|p| p.stop_time.max(p.busy_until))
            .fold(SimTime::ZERO, SimTime::max);
        let values: Vec<Vec<f64>> = engine
            .procs
            .iter()
            .map(|p| p.state.values.to_vec())
            .collect();
        // Honesty check on the stop decision: the centralized detector's
        // verdict is final even when a de-convergence report is still in
        // flight, so the assembled residual is verified here. A decided run
        // whose final residual is at or above ε stopped prematurely and must
        // not claim convergence.
        let worst_residual = engine
            .procs
            .iter()
            .map(|p| p.reported_residual)
            .fold(0.0, f64::max);
        let decided = engine.detector.is_decided();
        let premature = decided && worst_residual >= config.epsilon;
        let cpu_queue_secs = engine.cpu.total_queue_secs()
            + engine
                .rx_pools
                .as_ref()
                .map_or(0.0, |rx| rx.total_queue_secs());
        let report = RunReport {
            mode: ExecutionMode::Asynchronous,
            backend: self.env.kind().label().to_string(),
            elapsed_secs: end_time.as_secs(),
            iterations: engine.procs.iter().map(|p| p.state.iteration).collect(),
            data_messages: engine.stats.data_messages,
            control_messages: engine.stats.control_messages,
            data_bytes: engine.stats.data_bytes,
            coalesced_messages: 0,
            peak_mailbox_occupancy: 0,
            payload_clones: engine.procs.iter().map(|p| p.state.payload_clones).sum(),
            bytes_copied: engine.procs.iter().map(|p| p.state.bytes_copied).sum(),
            steals: 0,
            failed_steal_attempts: 0,
            local_pushes: 0,
            queue_wait_events: 0,
            cpu_queue_secs,
            converged: decided && !premature,
            premature_stop: premature,
            solution: kernel.assemble(&values),
            final_residual: worst_residual,
        };
        SimulationOutcome {
            sim_time: end_time,
            trace: engine.trace,
            network: engine.network.stats(),
            host_loads: engine.cpu.loads(end_time),
            placement: engine.placement,
            report,
            obs_trace: tracer.snapshot(),
        }
    }
}

/// Events of the asynchronous simulation.
enum SimEvent {
    /// A block starts a local iteration.
    Iterate { block: usize },
    /// A data message reaches (and is unpacked at) its destination.
    DeliverData {
        to: usize,
        from: usize,
        iteration: u64,
        values: Payload,
    },
    /// A data message has crossed the network and now queues for one of the
    /// destination host's dedicated receiving threads (dedicated disciplines
    /// only; on-demand receptions go straight to [`SimEvent::DeliverData`]).
    ArriveData {
        to: usize,
        from: usize,
        iteration: u64,
        values: Payload,
        /// Receiver-side CPU cost of unpacking this message.
        handle_cost: SimTime,
    },
    /// A local-convergence state report reaches the central detector.
    DeliverState { from: usize, converged: bool },
    /// The stop order reaches a block.
    DeliverStop { to: usize },
}

/// Message counters of a simulated run.
#[derive(Debug, Default)]
struct Stats {
    data_messages: u64,
    control_messages: u64,
    data_bytes: u64,
}

/// All the mutable state of one asynchronous simulation, so the event
/// handlers can be methods instead of free functions threading a dozen
/// parameters around.
struct AsyncEngine<'a> {
    kernel: &'a dyn IterativeKernel,
    config: &'a RunConfig,
    env: &'a dyn Environment,
    topology: &'a GridTopology,
    graph: DependencyGraph,
    thread_cfg: ThreadConfig,
    placement: Placement,
    network: Network,
    sim: Simulator<SimEvent>,
    procs: Vec<ProcSim>,
    detector: GlobalDetector,
    stats: Stats,
    trace: Option<ExecutionTrace>,
    /// Compute cores of every host.
    cpu: HostScheduler,
    /// Per-host dedicated receiving-thread pools (None = on-demand threads).
    rx_pools: Option<HostScheduler>,
    /// Per-host event recorders on the virtual clock (no-ops when tracing
    /// is off). Cleared after the event loop so the rings reach the tracer.
    recorders: Vec<TrackRecorder>,
}

impl AsyncEngine<'_> {
    /// Runs the event loop to completion.
    fn run(&mut self) {
        for b in 0..self.procs.len() {
            self.sim
                .schedule_at(SimTime::ZERO, SimEvent::Iterate { block: b });
        }
        while let Some(event) = self.sim.next_event() {
            let now = event.time;
            match event.payload {
                SimEvent::Iterate { block } => self.handle_iterate(block, now),
                SimEvent::ArriveData {
                    to,
                    from,
                    iteration,
                    values,
                    handle_cost,
                } => {
                    // A message for a stopped processor is dropped without
                    // occupying a receiving thread.
                    if !self.procs[to].stopped {
                        let dst = self.placement.host_of(to);
                        let pool = self.rx_pools.as_mut().expect("dedicated pools exist");
                        let slot = pool.schedule(dst, now, handle_cost);
                        if slot.start > now {
                            self.recorders[dst.0].span_complete(
                                "cpu_wait",
                                sim_ns(now),
                                sim_ns(slot.start),
                                to as u64,
                            );
                        }
                        self.sim.schedule_at(
                            slot.end,
                            SimEvent::DeliverData {
                                to,
                                from,
                                iteration,
                                values,
                            },
                        );
                    }
                }
                SimEvent::DeliverData {
                    to,
                    from,
                    iteration,
                    values,
                } => {
                    // Data arriving after the processor stopped is simply
                    // dropped, like a message reaching a terminated process.
                    if !self.procs[to].stopped {
                        let dst = self.placement.host_of(to);
                        self.recorders[dst.0].instant_at("msg_arrive", sim_ns(now), from as u64);
                        if self.procs[to].state.incorporate(from, iteration, values) {
                            self.procs[to].fresh_since_last = true;
                        }
                    }
                }
                SimEvent::DeliverState { from, converged } => {
                    let coord = self.placement.host_of(0);
                    self.recorders[coord.0].instant_at(
                        if converged { "converge" } else { "deconverge" },
                        sim_ns(now),
                        from as u64,
                    );
                    if self.detector.report(from, converged) {
                        self.broadcast_stop(now);
                    }
                }
                SimEvent::DeliverStop { to } => {
                    let proc = &mut self.procs[to];
                    if !proc.stopped {
                        proc.stopped = true;
                        // The processor leaves the iterative process as soon
                        // as its in-flight iteration completes.
                        proc.stop_time = proc.busy_until.max(now);
                        let host = self.placement.host_of(to);
                        self.recorders[host.0].instant_at("stop", sim_ns(now), to as u64);
                    }
                }
            }
            if self.procs.iter().all(|p| p.stopped) {
                break;
            }
        }
    }

    /// Global convergence was decided: send the stop order to every block.
    fn broadcast_stop(&mut self, now: SimTime) {
        let coord = self.placement.host_of(0);
        for b in 0..self.procs.len() {
            let dst = self.placement.host_of(b);
            let cost = self.env.message_cost(CONTROL_BYTES);
            let arrival = if dst == coord {
                now + cost.sender_cpu + cost.receiver_cpu
            } else {
                self.network
                    .transfer(coord, dst, CONTROL_BYTES, cost.protocol_bytes, now)
                    + cost.receiver_cpu
            };
            self.stats.control_messages += 1;
            self.sim
                .schedule_at(arrival, SimEvent::DeliverStop { to: b });
        }
    }

    /// Processes the start of one asynchronous local iteration.
    fn handle_iterate(&mut self, block: usize, now: SimTime) {
        if self.procs[block].stopped {
            return;
        }
        let kernel = self.kernel;
        let host_id = self.placement.host_of(block);
        let host = self.topology.host(host_id);
        // The iteration is a job on the host's cores: when co-located blocks
        // outnumber them it waits for a core, which is the whole point of the
        // per-host scheduling layer.
        let slot = self.cpu.schedule(
            host_id,
            now,
            host.compute_time(kernel.iteration_cost(block)),
        );
        let compute_end = slot.end;
        if let Some(tr) = self.trace.as_mut() {
            if slot.start > now {
                tr.record(block, now, slot.start, Activity::Idle);
            }
            tr.record(block, slot.start, slot.end, Activity::Compute);
        }
        let rec = &mut self.recorders[host_id.0];
        if slot.start > now {
            rec.span_complete("cpu_wait", sim_ns(now), sim_ns(slot.start), block as u64);
        }
        rec.span_complete(
            "compute",
            sim_ns(slot.start),
            sim_ns(slot.end),
            block as u64,
        );

        let fresh_data = self.procs[block].fresh_since_last;
        self.procs[block].fresh_since_last = false;
        let has_dependencies = !self.graph.in_neighbours(block).is_empty();

        // Numeric update using whatever dependency data has been delivered so
        // far (the asynchronous model of Algorithm 1). When nothing new has
        // arrived and the block already sits at its local fixed point, the
        // update would reproduce the same values bit for bit, so the (real)
        // numerical work is skipped while the virtual iteration still takes
        // place — the simulated machine keeps burning its cycles either way.
        let skipped = !fresh_data && self.procs[block].state.residual < self.config.epsilon * 1e-3;
        if skipped {
            self.procs[block].state.iteration += 1;
        } else {
            self.procs[block].state.iterate(kernel);
        }
        self.procs[block].busy_until = compute_end;

        // Local convergence is judged on the cumulative drift since the last
        // window anchor (see `BlockState::drift_from_anchor`); state messages
        // are sent only on change, and quiet iterations on stale data do not
        // advance the streak.
        let drift = kernel.residual_between(
            block,
            &self.procs[block].state.values,
            self.procs[block].state.anchor(),
        );
        // The residual the block would report if asked right now: skipped
        // iterations carry the true cumulative drift instead of the (stale)
        // residual of the last real update.
        self.procs[block].reported_residual = if skipped {
            drift
        } else {
            self.procs[block].state.residual
        };
        if drift >= self.config.epsilon {
            self.procs[block].state.reset_anchor();
        }
        if self.procs[block]
            .local
            .observe_gated(drift, fresh_data || !has_dependencies)
        {
            let converged = self.procs[block].local.is_converged();
            let coord = self.placement.host_of(0);
            let cost = self.env.message_cost(CONTROL_BYTES);
            let arrival = if host_id == coord {
                compute_end + cost.sender_cpu + cost.receiver_cpu
            } else {
                self.network.transfer(
                    host_id,
                    coord,
                    CONTROL_BYTES,
                    cost.protocol_bytes,
                    compute_end,
                ) + cost.receiver_cpu
            };
            self.stats.control_messages += 1;
            self.sim.schedule_at(
                arrival,
                SimEvent::DeliverState {
                    from: block,
                    converged,
                },
            );
        }

        // Asynchronous sends to every dependant. A send to a destination is
        // skipped while the previous transfer to that destination is still in
        // progress ("data are actually sent only if any previous sending of
        // the same data to the same destination is terminated").
        let mut sends_issued = 0usize;
        for i in 0..self.graph.out_neighbours(block).len() {
            let dst_block = self.graph.out_neighbours(block)[i];
            if compute_end < self.procs[block].send_busy_until[dst_block] {
                continue;
            }
            let dst = self.placement.host_of(dst_block);
            let payload = kernel.message_bytes(block, dst_block) + CONTROL_BYTES;
            let cost = self.env.message_cost(payload);
            let pack_start = compute_end
                + self
                    .thread_cfg
                    .send_queue_delay(sends_issued, cost.sender_cpu);
            let pack_done = pack_start + cost.sender_cpu;
            if let Some(tr) = self.trace.as_mut() {
                tr.record(block, pack_start, pack_done, Activity::Send);
            }
            self.recorders[host_id.0].span_complete(
                "send",
                sim_ns(pack_start),
                sim_ns(pack_done),
                dst_block as u64,
            );
            let wire_arrival = if host_id == dst {
                pack_done
            } else {
                self.network
                    .transfer(host_id, dst, payload, cost.protocol_bytes, pack_done)
            };
            self.procs[block].send_busy_until[dst_block] = wire_arrival;
            self.stats.data_messages += 1;
            self.stats.data_bytes += payload;
            sends_issued += 1;
            let after_dispatch = wire_arrival + cost.dispatch_latency;
            let iteration = self.procs[block].state.iteration;
            let values = self.procs[block].state.values.clone();
            // Receiver-side dispatch: dedicated pools are a per-*host*
            // resource, so the message queues for a receiving thread at its
            // arrival time (via an ArriveData event, which keeps pool
            // submissions in chronological order); on-demand threads handle
            // every arrival concurrently at the price of a spawn cost.
            match self.thread_cfg.receive {
                ReceiveDiscipline::Dedicated(_) => {
                    self.sim.schedule_at(
                        after_dispatch,
                        SimEvent::ArriveData {
                            to: dst_block,
                            from: block,
                            iteration,
                            values,
                            handle_cost: cost.receiver_cpu,
                        },
                    );
                }
                ReceiveDiscipline::OnDemand { spawn_cost } => {
                    self.sim.schedule_at(
                        after_dispatch + spawn_cost + cost.receiver_cpu,
                        SimEvent::DeliverData {
                            to: dst_block,
                            from: block,
                            iteration,
                            values,
                        },
                    );
                }
            }
        }

        // Next iteration, unless the limit was reached.
        if self.procs[block].state.iteration >= self.config.max_iterations as u64 {
            self.procs[block].stopped = true;
            self.procs[block].stop_time = compute_end;
        } else {
            self.sim
                .schedule_at(compute_end, SimEvent::Iterate { block });
        }
    }
}

/// Per-block simulation state.
struct ProcSim {
    state: BlockState,
    local: LocalConvergence,
    stopped: bool,
    /// True when at least one new dependency message arrived since the last
    /// iteration started.
    fresh_since_last: bool,
    /// Virtual time until which the current/last iteration runs.
    busy_until: SimTime,
    /// Time at which the block actually stopped (stop received or limit hit).
    stop_time: SimTime,
    /// Per-destination completion time of the last transfer, used to skip
    /// sends while a previous one is still in flight.
    send_busy_until: Vec<SimTime>,
    /// The block's current honest residual: the last real update's residual,
    /// or the cumulative drift when quiet iterations are being skipped.
    reported_residual: f64,
}

impl ProcSim {
    fn new(
        kernel: &dyn IterativeKernel,
        block: usize,
        num_blocks: usize,
        config: &RunConfig,
    ) -> Self {
        Self {
            state: BlockState::new(kernel, block),
            local: LocalConvergence::new(config.epsilon, config.convergence_streak),
            stopped: false,
            fresh_since_last: false,
            busy_until: SimTime::ZERO,
            stop_time: SimTime::ZERO,
            send_busy_until: vec![SimTime::ZERO; num_blocks],
            reported_residual: f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::{Diverging, RingContraction};
    use crate::kernel::{BlockUpdate, DependencyView};
    use crate::runtime::sequential::SequentialRuntime;
    use proptest::prelude::*;

    fn grid(n: usize) -> GridTopology {
        GridTopology::ethernet_3_sites(n)
    }

    #[test]
    fn synchronous_simulation_matches_sequential_solution() {
        let kernel = RingContraction::new(6);
        let config = RunConfig::synchronous(1e-10);
        let seq = SequentialRuntime::new().run(&kernel, &config);
        let sim = SimulatedRuntime::new(grid(6), EnvKind::MpiSync, ProblemKind::SparseLinear)
            .run(&kernel, &config);
        assert!(sim.report.converged);
        assert_eq!(sim.report.iterations[0], seq.iterations[0]);
        for (a, b) in sim.report.solution.iter().zip(&seq.solution) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(sim.sim_time > SimTime::ZERO);
    }

    #[test]
    fn asynchronous_simulation_converges_to_the_fixed_point() {
        let kernel = RingContraction::new(6);
        let config = RunConfig::asynchronous(1e-10).with_streak(3);
        for env in EnvKind::ASYNC {
            let sim = SimulatedRuntime::new(grid(6), env, ProblemKind::SparseLinear)
                .run(&kernel, &config);
            assert!(sim.report.converged, "{env} failed to converge");
            assert!(!sim.report.premature_stop);
            let fp = kernel.fixed_point();
            for v in &sim.report.solution {
                assert!((v - fp).abs() < 1e-6, "{env}: {v} vs {fp}");
            }
            assert!(sim.report.data_messages > 0);
        }
    }

    #[test]
    fn async_is_faster_than_sync_on_a_distant_grid() {
        // The headline qualitative result of the paper.
        let kernel = RingContraction::new(9);
        let sync = SimulatedRuntime::new(grid(9), EnvKind::MpiSync, ProblemKind::SparseLinear)
            .run(&kernel, &RunConfig::synchronous(1e-9));
        let async_run = SimulatedRuntime::new(grid(9), EnvKind::Pm2, ProblemKind::SparseLinear)
            .run(&kernel, &RunConfig::asynchronous(1e-9).with_streak(3));
        assert!(sync.report.converged && async_run.report.converged);
        assert!(
            async_run.report.elapsed_secs < sync.report.elapsed_secs,
            "async {} s should beat sync {} s",
            async_run.report.elapsed_secs,
            sync.report.elapsed_secs
        );
    }

    #[test]
    fn asynchronous_runs_are_deterministic() {
        let kernel = RingContraction::new(5);
        let config = RunConfig::asynchronous(1e-9);
        let run = || {
            SimulatedRuntime::new(grid(5), EnvKind::OmniOrb, ProblemKind::SparseLinear)
                .run(&kernel, &config)
        };
        let a = run();
        let b = run();
        assert_eq!(a.report.elapsed_secs, b.report.elapsed_secs);
        assert_eq!(a.report.iterations, b.report.iterations);
        assert_eq!(a.report.data_messages, b.report.data_messages);
    }

    #[test]
    fn heterogeneous_hosts_do_different_amounts_of_work() {
        let kernel = RingContraction::new(6);
        let topo = GridTopology::local_hetero_cluster(6);
        let sim = SimulatedRuntime::new(topo, EnvKind::Pm2, ProblemKind::SparseLinear)
            .run(&kernel, &RunConfig::asynchronous(1e-10));
        // host 2 is the fastest (P4 2.4), host 0 the slowest (Duron 800):
        // in an asynchronous run the fast block iterates more often.
        assert!(sim.report.iterations[2] > sim.report.iterations[0]);
    }

    #[test]
    fn sync_mode_on_mono_threaded_mpi_is_allowed_but_async_is_not() {
        let kernel = RingContraction::new(3);
        let runtime = SimulatedRuntime::new(grid(3), EnvKind::MpiSync, ProblemKind::SparseLinear);
        let ok = runtime.run(&kernel, &RunConfig::synchronous(1e-8));
        assert!(ok.report.converged);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runtime.run(&kernel, &RunConfig::asynchronous(1e-8))
        }));
        assert!(
            result.is_err(),
            "AIAC on mono-threaded MPI must be rejected"
        );
    }

    #[test]
    fn iteration_limit_stops_non_convergent_asynchronous_runs() {
        let kernel = Diverging { blocks: 4 };
        let config = RunConfig::asynchronous(1e-12).with_max_iterations(40);
        let sim = SimulatedRuntime::new(grid(4), EnvKind::MpiMadeleine, ProblemKind::SparseLinear)
            .run(&kernel, &config);
        assert!(!sim.report.converged);
        assert!(!sim.report.premature_stop, "limit stop is not premature");
        assert!(sim.report.iterations.iter().all(|&i| i <= 40));
    }

    #[test]
    fn tracing_records_compute_and_idle_time() {
        let kernel = RingContraction::new(2);
        let sync = SimulatedRuntime::new(grid(2), EnvKind::MpiSync, ProblemKind::SparseLinear)
            .with_trace(true)
            .run(&kernel, &RunConfig::synchronous(1e-8));
        let trace = sync.trace.expect("trace requested");
        assert!(trace.time_in(0, Activity::Compute) > SimTime::ZERO);
        assert!(
            trace.time_in(0, Activity::Idle) > SimTime::ZERO,
            "SISC has idle time"
        );

        let async_run = SimulatedRuntime::new(grid(2), EnvKind::Pm2, ProblemKind::SparseLinear)
            .with_trace(true)
            .run(&kernel, &RunConfig::asynchronous(1e-8));
        let atrace = async_run.trace.expect("trace requested");
        assert!(atrace.time_in(0, Activity::Compute) > SimTime::ZERO);
        // AIAC processors on uncontended hosts never wait between iterations.
        assert_eq!(atrace.time_in(0, Activity::Idle), SimTime::ZERO);
    }

    #[test]
    fn virtual_clock_event_traces_are_bit_identical_across_runs() {
        use aiac_obs::TraceConfig;
        let kernel = RingContraction::new(6);
        let config = RunConfig::asynchronous(1e-9)
            .with_streak(3)
            .with_tracing(TraceConfig::on());
        let run = || {
            SimulatedRuntime::new(grid(6), EnvKind::Pm2, ProblemKind::SparseLinear)
                .run(&kernel, &config)
        };
        let a = run();
        let b = run();
        assert!(!a.obs_trace.is_empty());
        assert_eq!(
            a.obs_trace, b.obs_trace,
            "virtual-clock traces must be identical"
        );
        assert_eq!(a.obs_trace.layers(), vec![aiac_obs::Layer::Netsim]);
        let names: std::collections::BTreeSet<&str> = a
            .obs_trace
            .tracks
            .iter()
            .flat_map(|t| t.ring.iter_in_order().map(|e| e.name))
            .collect();
        assert!(names.contains("compute"), "{names:?}");
        assert!(names.contains("msg_arrive"), "{names:?}");
        // untraced runs stay empty
        let quiet = SimulatedRuntime::new(grid(6), EnvKind::Pm2, ProblemKind::SparseLinear)
            .run(&kernel, &RunConfig::asynchronous(1e-9).with_streak(3));
        assert!(quiet.obs_trace.is_empty());
    }

    #[test]
    fn oversubscribed_traced_runs_record_cpu_wait_spans() {
        use aiac_obs::TraceConfig;
        let kernel = RingContraction::new(8);
        let sim = SimulatedRuntime::new(
            GridTopology::homogeneous_cluster(4),
            EnvKind::Pm2,
            ProblemKind::SparseLinear,
        )
        .run(
            &kernel,
            &RunConfig::asynchronous(1e-8)
                .with_streak(3)
                .with_tracing(TraceConfig::on()),
        );
        assert!(sim.report.cpu_queue_secs > 0.0);
        let names: std::collections::BTreeSet<&str> = sim
            .obs_trace
            .tracks
            .iter()
            .flat_map(|t| t.ring.iter_in_order().map(|e| e.name))
            .collect();
        assert!(names.contains("cpu_wait"), "{names:?}");
    }

    #[test]
    fn more_blocks_than_hosts_are_placed_round_robin() {
        let kernel = RingContraction::new(8);
        let runtime = SimulatedRuntime::new(grid(4), EnvKind::Pm2, ProblemKind::SparseLinear);
        let sim = runtime.run(&kernel, &RunConfig::asynchronous(1e-8));
        assert!(sim.report.converged);
        assert_eq!(sim.placement.policy(), PlacementPolicy::RoundRobin);
        assert_eq!(sim.placement.host_of(0), sim.placement.host_of(4));
        assert_ne!(sim.placement.host_of(0), sim.placement.host_of(1));
    }

    // ------------------------------------------------------------------
    // Oversubscription: per-host CPU scheduling and placement
    // ------------------------------------------------------------------

    #[test]
    fn two_x_oversubscription_is_at_least_1_5x_slower() {
        // The acceptance criterion of the infinite-core bugfix: with twice as
        // many blocks as (single-core, homogeneous) hosts, the serialised
        // compute phases must cost at least 1.5x the one-block-per-host time.
        let kernel = RingContraction::new(8);
        let config = RunConfig::asynchronous(1e-9).with_streak(3);
        let run = |hosts: usize| {
            SimulatedRuntime::new(
                GridTopology::homogeneous_cluster(hosts),
                EnvKind::Pm2,
                ProblemKind::SparseLinear,
            )
            .run(&kernel, &config)
        };
        let spread = run(8);
        let over = run(4);
        assert!(spread.report.converged && over.report.converged);
        assert!(
            over.sim_time.as_secs() >= 1.5 * spread.sim_time.as_secs(),
            "2x oversubscription: {} s should be >= 1.5x the {} s baseline",
            over.sim_time.as_secs(),
            spread.sim_time.as_secs()
        );
        // Queueing is the mechanism: the oversubscribed run waits for cores,
        // the one-block-per-host run never does.
        assert!(over.report.cpu_queue_secs > 0.0);
        assert_eq!(spread.report.cpu_queue_secs, 0.0);
        assert_eq!(over.placement.max_colocation(), 2);
    }

    #[test]
    fn metrics_are_deterministic_and_round_trip_through_json() {
        let kernel = RingContraction::new(6);
        let config = RunConfig::asynchronous(1e-9).with_streak(3);
        let run = || {
            SimulatedRuntime::new(grid(6), EnvKind::Pm2, ProblemKind::SparseLinear)
                .run(&kernel, &config)
                .metrics()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "simulated metrics must be reproducible");
        assert!(a.sim_time_secs > 0.0);
        assert!(a.cpu_busy_secs > 0.0);
        assert!(a.total_iterations >= a.max_iterations);
        assert!(a.converged);
        let text = serde_json::to_string(&a).expect("metrics serialise");
        let back: SimMetrics = serde_json::from_str(&text).expect("metrics parse back");
        assert_eq!(back, a);
    }

    #[test]
    fn oversubscribed_runs_report_host_loads_and_queueing() {
        let kernel = RingContraction::new(8);
        let sim = SimulatedRuntime::new(
            GridTopology::homogeneous_cluster(4),
            EnvKind::Pm2,
            ProblemKind::SparseLinear,
        )
        .run(&kernel, &RunConfig::asynchronous(1e-8).with_streak(3));
        assert_eq!(sim.host_loads.len(), 4);
        for load in &sim.host_loads {
            assert!(load.jobs > 0, "host {} scheduled nothing", load.host);
            assert!(load.busy_secs > 0.0);
            assert!(load.queue_secs > 0.0, "two blocks share one core");
            assert!(load.utilization > 0.5 && load.utilization <= 1.0 + 1e-12);
        }
        let queue_sum: f64 = sim.host_loads.iter().map(|l| l.queue_secs).sum();
        assert!(sim.report.cpu_queue_secs >= queue_sum - 1e-12);
    }

    #[test]
    fn extra_cores_absorb_the_oversubscription() {
        // The same 2x-oversubscribed workload on dual-core hosts runs the two
        // co-located blocks concurrently again.
        let kernel = RingContraction::new(8);
        let config = RunConfig::asynchronous(1e-9).with_streak(3);
        let single = SimulatedRuntime::new(
            GridTopology::homogeneous_cluster(4),
            EnvKind::Pm2,
            ProblemKind::SparseLinear,
        )
        .run(&kernel, &config);
        let dual = SimulatedRuntime::new(
            GridTopology::homogeneous_cluster(4).with_uniform_cores(2),
            EnvKind::Pm2,
            ProblemKind::SparseLinear,
        )
        .run(&kernel, &config);
        assert!(dual.report.converged);
        assert_eq!(dual.report.cpu_queue_secs, 0.0, "two cores, two blocks");
        assert!(dual.sim_time < single.sim_time);
    }

    #[test]
    fn sync_smp_hosts_are_never_slower_than_single_core() {
        // Dual-core hosts absorb a 2x-oversubscribed synchronous run's
        // compute phases concurrently again; with identical (placement-
        // independent) numerics the virtual time must not increase.
        let kernel = RingContraction::new(8);
        let config = RunConfig::synchronous(1e-8);
        let run = |topo: GridTopology| {
            SimulatedRuntime::new(topo, EnvKind::MpiSync, ProblemKind::SparseLinear)
                .run(&kernel, &config)
        };
        let single = run(GridTopology::homogeneous_cluster(4));
        let dual = run(GridTopology::homogeneous_cluster(4).with_uniform_cores(2));
        assert_eq!(single.report.iterations, dual.report.iterations);
        assert!(
            dual.sim_time <= single.sim_time,
            "dual-core {} s should not exceed single-core {} s",
            dual.sim_time.as_secs(),
            single.sim_time.as_secs()
        );
    }

    #[test]
    fn speed_weighted_placement_beats_round_robin_when_oversubscribed() {
        // On the heterogeneous cluster the Duron hosts are 3x slower than the
        // P4 2.4 hosts; giving every host the same number of blocks leaves
        // the run Duron-bound, while speed-weighted counts even the load out.
        let kernel = RingContraction::new(24);
        let topo = GridTopology::local_hetero_cluster(8);
        let config = RunConfig::asynchronous(1e-8).with_streak(3);
        let run = |policy: PlacementPolicy| {
            SimulatedRuntime::new(
                topo.clone(),
                EnvKind::MpiMadeleine,
                ProblemKind::SparseLinear,
            )
            .with_placement(policy)
            .run(&kernel, &config)
        };
        let rr = run(PlacementPolicy::RoundRobin);
        let sw = run(PlacementPolicy::SpeedWeighted);
        assert!(rr.report.converged && sw.report.converged);
        assert!(
            sw.sim_time < rr.sim_time,
            "speed-weighted {} s should beat round-robin {} s",
            sw.sim_time.as_secs(),
            rr.sim_time.as_secs()
        );
    }

    #[test]
    fn runtime_placement_override_wins_over_the_config() {
        let kernel = RingContraction::new(6);
        let topo = GridTopology::local_hetero_cluster(3);
        let sim = SimulatedRuntime::new(topo, EnvKind::Pm2, ProblemKind::SparseLinear)
            .with_placement(PlacementPolicy::SpeedWeighted)
            .run(&kernel, &RunConfig::asynchronous(1e-8));
        assert_eq!(sim.placement.policy(), PlacementPolicy::SpeedWeighted);

        let kernel = RingContraction::new(6);
        let sim = SimulatedRuntime::new(
            GridTopology::local_hetero_cluster(3),
            EnvKind::Pm2,
            ProblemKind::SparseLinear,
        )
        .run(
            &kernel,
            &RunConfig::asynchronous(1e-8).with_placement(PlacementPolicy::SitePacked),
        );
        assert_eq!(sim.placement.policy(), PlacementPolicy::SitePacked);
    }

    // ------------------------------------------------------------------
    // Stop-decision honesty
    // ------------------------------------------------------------------

    /// A kernel whose block 0 looks converged for exactly one iteration and
    /// then de-converges violently: its first update moves by 1e-8 (under any
    /// reasonable ε), every later update moves by 1.0. Blocks 1.. are
    /// immediately stationary. With a streak of 1 every block reports local
    /// convergence after its first iteration, the detector decides, and block
    /// 0's de-convergence report is still in flight when the stop order goes
    /// out — the premature-stop scenario of Section 4.3.
    struct LateSpike {
        blocks: usize,
    }

    impl IterativeKernel for LateSpike {
        fn num_blocks(&self) -> usize {
            self.blocks
        }

        fn block_len(&self, _block: usize) -> usize {
            1
        }

        fn initial_block(&self, _block: usize) -> Vec<f64> {
            vec![0.0]
        }

        fn dependencies(&self, _block: usize) -> Vec<usize> {
            Vec::new()
        }

        fn update_block(&self, block: usize, local: &[f64], _: &DependencyView) -> BlockUpdate {
            let x = local[0];
            let new = if block == 0 {
                if x < 0.5e-8 {
                    x + 1e-8
                } else {
                    x + 1.0
                }
            } else {
                x
            };
            BlockUpdate {
                residual: (new - x).abs(),
                values: vec![new],
            }
        }

        fn iteration_cost(&self, _block: usize) -> f64 {
            0.005
        }
    }

    #[test]
    fn premature_stop_with_a_delayed_cancellation_is_flagged() {
        let kernel = LateSpike { blocks: 3 };
        let config = RunConfig::asynchronous(1e-6).with_streak(1);
        let sim = SimulatedRuntime::new(
            GridTopology::homogeneous_cluster(3),
            EnvKind::Pm2,
            ProblemKind::SparseLinear,
        )
        .run(&kernel, &config);
        // The detector decided (every block did report local convergence
        // once), but block 0 spiked while the decision was being taken: the
        // run must not be reported as converged.
        assert!(
            sim.report.premature_stop,
            "the in-flight de-convergence must be detected"
        );
        assert!(!sim.report.converged);
        assert!(
            sim.report.final_residual >= config.epsilon,
            "final residual {} belies convergence",
            sim.report.final_residual
        );
    }

    /// A dependency-free kernel that creeps by 2e-3 per update, then by 1e-4,
    /// then sits still. Once the per-update residual falls under ε·10⁻³ the
    /// runtime's quiet-iteration shortcut stops calling the kernel, and
    /// before the fix the reported final residual froze at the last real
    /// update's 1e-4 even though the block had drifted by ~1e-2 in total.
    struct QuietDrift {
        blocks: usize,
    }

    impl IterativeKernel for QuietDrift {
        fn num_blocks(&self) -> usize {
            self.blocks
        }

        fn block_len(&self, _block: usize) -> usize {
            1
        }

        fn initial_block(&self, _block: usize) -> Vec<f64> {
            vec![0.0]
        }

        fn dependencies(&self, _block: usize) -> Vec<usize> {
            Vec::new()
        }

        fn update_block(&self, _block: usize, local: &[f64], _: &DependencyView) -> BlockUpdate {
            let x = local[0];
            let new = if x < 0.0099 {
                x + 2e-3
            } else if x < 0.0101 {
                x + 1e-4
            } else {
                x
            };
            BlockUpdate {
                residual: (new - x).abs(),
                values: vec![new],
            }
        }

        fn iteration_cost(&self, _block: usize) -> f64 {
            0.002
        }
    }

    #[test]
    fn skipped_quiet_iterations_report_the_true_drift() {
        let kernel = QuietDrift { blocks: 2 };
        // ε = 1.0 keeps the run convergent; the skip threshold is ε·10⁻³ =
        // 1e-3, so the 1e-4 step flips the block onto the skip path.
        let config = RunConfig::asynchronous(1.0).with_streak(8);
        let sim = SimulatedRuntime::new(
            GridTopology::homogeneous_cluster(2),
            EnvKind::Pm2,
            ProblemKind::SparseLinear,
        )
        .run(&kernel, &config);
        assert!(sim.report.converged);
        assert!(!sim.report.premature_stop);
        // The block moved 0.0101 in total; the stale per-update residual was
        // only 1e-4. The report must carry the cumulative drift.
        assert!(
            sim.report.final_residual > 5e-3,
            "final residual {} is the stale per-update value",
            sim.report.final_residual
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Placement invariant (a): adding hosts never increases the virtual
        /// time. Synchronous mode keeps the numerics placement-independent,
        /// so the comparison isolates the scheduling layer: halving the
        /// per-host load (2 blocks/host -> 1 block/host) must not slow the
        /// run down.
        #[test]
        fn prop_adding_hosts_never_increases_sync_time(n in 2usize..6) {
            let m = 2 * n;
            let kernel = RingContraction::new(m);
            let config = RunConfig::synchronous(1e-8);
            let run = |hosts: usize| {
                SimulatedRuntime::new(
                    GridTopology::homogeneous_cluster(hosts),
                    EnvKind::MpiSync,
                    ProblemKind::SparseLinear,
                )
                .run(&kernel, &config)
            };
            let few = run(n);
            let many = run(m);
            prop_assert_eq!(few.report.iterations[0], many.report.iterations[0]);
            prop_assert!(
                many.sim_time <= few.sim_time,
                "{} hosts took {} s, {} hosts took {} s",
                m, many.sim_time.as_secs(), n, few.sim_time.as_secs()
            );
        }

        /// Placement invariant (b): an oversubscribed asynchronous run is
        /// never faster than the same kernel with one block per host.
        #[test]
        fn prop_oversubscription_is_never_faster(n in 2usize..5) {
            let m = 2 * n;
            let kernel = RingContraction::new(m);
            let config = RunConfig::asynchronous(1e-8).with_streak(3);
            let run = |hosts: usize| {
                SimulatedRuntime::new(
                    GridTopology::homogeneous_cluster(hosts),
                    EnvKind::Pm2,
                    ProblemKind::SparseLinear,
                )
                .run(&kernel, &config)
            };
            let spread = run(m);
            let over = run(n);
            prop_assert!(spread.report.converged && over.report.converged);
            prop_assert!(
                over.sim_time >= spread.sim_time,
                "oversubscribed {} s beat one-per-host {} s",
                over.sim_time.as_secs(), spread.sim_time.as_secs()
            );
        }
    }
}
