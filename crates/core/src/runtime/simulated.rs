//! The simulated runtime: virtual-time execution over a grid model.
//!
//! The paper's measurements were taken on multi-site grids (10 Mb Ethernet,
//! consumer ADSL) and on a 40-machine heterogeneous cluster; none of that
//! hardware is available, so this back-end replays the same algorithms in
//! *virtual time* over an [`aiac_netsim::topology::GridTopology`] and an
//! [`aiac_envs::env::Environment`] model:
//!
//! * compute phases take `iteration_cost / host speed` virtual seconds;
//! * data messages pay the environment's packing cost (serialised according
//!   to the Table 4 thread configuration), the network transfer time with
//!   FIFO contention ([`aiac_netsim::network::Network`]) and the receiver's
//!   dispatch cost (dedicated pool or on-demand thread);
//! * the synchronous mode inserts the global exchange and barrier of Figure 1
//!   between iterations;
//! * the asynchronous mode runs every processor at its own pace and stops it
//!   only when the centralized detector's stop message reaches it, exactly as
//!   in Section 4.3.
//!
//! The whole simulation is deterministic, which is what lets the benchmark
//! harness regenerate Tables 2–3 and Figure 3 reproducibly.

use crate::block::BlockState;
use crate::config::{ExecutionMode, RunConfig};
use crate::convergence::{GlobalDetector, LocalConvergence};
use crate::depgraph::DependencyGraph;
use crate::kernel::IterativeKernel;
use crate::report::RunReport;
use aiac_envs::env::{EnvKind, Environment};
use aiac_envs::threads::{ProblemKind, ReceiveDiscipline, ThreadConfig};
use aiac_netsim::host::HostId;
use aiac_netsim::network::{Network, NetworkStats};
use aiac_netsim::sim::Simulator;
use aiac_netsim::time::SimTime;
use aiac_netsim::topology::GridTopology;
use aiac_netsim::trace::{Activity, ExecutionTrace};

/// Size in bytes of a convergence-state or stop control message on the wire.
const CONTROL_BYTES: u64 = 16;

/// Result of a simulated run: the usual report plus simulation-only
/// information (virtual time, execution trace, network statistics).
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// The standard run report; `elapsed_secs` holds the *virtual* time.
    pub report: RunReport,
    /// Final virtual time of the run.
    pub sim_time: SimTime,
    /// Execution trace (only when tracing was enabled).
    pub trace: Option<ExecutionTrace>,
    /// Network transfer statistics.
    pub network: NetworkStats,
}

/// Virtual-time executor over a simulated grid.
pub struct SimulatedRuntime {
    topology: GridTopology,
    env: Box<dyn Environment>,
    problem: ProblemKind,
    record_trace: bool,
}

impl SimulatedRuntime {
    /// Creates a runtime for the given platform, environment and problem kind
    /// (the problem kind selects the Table 4 thread configuration).
    pub fn new(topology: GridTopology, env: EnvKind, problem: ProblemKind) -> Self {
        Self {
            topology,
            env: env.build(),
            problem,
            record_trace: false,
        }
    }

    /// Enables or disables execution tracing (needed for the Figure 1/2
    /// reproduction; off by default because traces grow with the iteration
    /// count).
    pub fn with_trace(mut self, enable: bool) -> Self {
        self.record_trace = enable;
        self
    }

    /// The environment model used by this runtime.
    pub fn environment(&self) -> &dyn Environment {
        self.env.as_ref()
    }

    /// The platform used by this runtime.
    pub fn topology(&self) -> &GridTopology {
        &self.topology
    }

    /// Host a block is placed on (blocks are assigned round-robin when there
    /// are more blocks than hosts; the usual case is one block per host).
    pub fn host_of(&self, block: usize) -> HostId {
        HostId(block % self.topology.num_hosts())
    }

    /// Runs the kernel and returns the simulation outcome.
    ///
    /// # Panics
    /// Panics if the configuration asks for asynchronous execution on an
    /// environment that does not support it (the mono-threaded MPI model).
    pub fn run(&self, kernel: &dyn IterativeKernel, config: &RunConfig) -> SimulationOutcome {
        config.validate();
        assert!(
            self.topology.num_hosts() > 0,
            "the topology must contain at least one host"
        );
        match config.mode {
            ExecutionMode::Synchronous => self.run_synchronous(kernel, config),
            ExecutionMode::Asynchronous => {
                assert!(
                    self.env.supports_async(),
                    "{} cannot run AIAC algorithms (no multi-threading); \
                     use the synchronous mode or a multi-threaded environment",
                    self.env.name()
                );
                self.run_asynchronous(kernel, config)
            }
        }
    }

    // ------------------------------------------------------------------
    // Synchronous (SISC) simulation
    // ------------------------------------------------------------------

    fn run_synchronous(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
    ) -> SimulationOutcome {
        let m = kernel.num_blocks();
        let graph = DependencyGraph::from_kernel(kernel);
        let mut network = Network::new(self.topology.clone());
        let mut trace = self.record_trace.then(|| ExecutionTrace::new(m));

        let mut states: Vec<BlockState> = (0..m).map(|b| BlockState::new(kernel, b)).collect();
        let mut iteration_start = SimTime::ZERO;
        let mut iterations = 0u64;
        let mut converged = false;
        let mut worst_residual = f64::INFINITY;
        let mut data_messages = 0u64;
        let mut control_messages = 0u64;
        let mut data_bytes = 0u64;

        while iterations < config.max_iterations as u64 {
            // --- compute phase -------------------------------------------------
            let compute_end: Vec<SimTime> = (0..m)
                .map(|b| {
                    let host = self.topology.host(self.host_of(b));
                    iteration_start + host.compute_time(kernel.iteration_cost(b))
                })
                .collect();
            if let Some(tr) = trace.as_mut() {
                for (b, &end) in compute_end.iter().enumerate() {
                    tr.record(b, iteration_start, end, Activity::Compute);
                }
            }

            // Numerically, a synchronous iteration is a Jacobi sweep: all blocks
            // read the values of the previous iteration.
            let snapshot: Vec<Vec<f64>> = states.iter().map(|s| s.values.clone()).collect();
            for state in states.iter_mut() {
                for dep in graph.in_neighbours(state.id) {
                    state.view.set(*dep, snapshot[*dep].clone());
                }
            }
            worst_residual = 0.0;
            for state in states.iter_mut() {
                worst_residual = worst_residual.max(state.iterate(kernel));
            }
            iterations += 1;

            // --- global exchange ------------------------------------------------
            // Every block sends its new values to its dependants; the packing
            // costs of a mono-threaded environment are serialised.
            let mut barrier_time = compute_end
                .iter()
                .copied()
                .fold(SimTime::ZERO, SimTime::max);
            for (b, &block_end) in compute_end.iter().enumerate() {
                let src = self.host_of(b);
                let mut send_clock = block_end;
                for &dst_block in graph.out_neighbours(b).iter() {
                    let dst = self.host_of(dst_block);
                    let payload = kernel.message_bytes(b, dst_block) + CONTROL_BYTES;
                    let cost = self.env.message_cost(payload);
                    // The synchronous baseline is mono-threaded: the packing of
                    // every outgoing message is serialised on the single
                    // program thread.
                    send_clock += cost.sender_cpu;
                    let arrival = if src == dst {
                        send_clock
                    } else {
                        network.transfer(src, dst, payload, cost.protocol_bytes, send_clock)
                    };
                    let handled = arrival + cost.dispatch_latency + cost.receiver_cpu;
                    barrier_time = barrier_time.max(handled);
                    data_messages += 1;
                    data_bytes += payload;
                }
            }

            // --- synchronisation points -----------------------------------------
            // Every processor reports to processor 0, which broadcasts the
            // verdict: 2·(m−1) small control messages per collective. The
            // kernel says how many such collectives one synchronous iteration
            // needs (one for a plain fixed-point sweep; many for the paper's
            // globally-synchronised Newton/GMRES baseline).
            let coord = self.host_of(0);
            let mut next_start = barrier_time;
            for _ in 0..kernel.sync_collectives_per_iteration().max(1) {
                let round_start = next_start;
                let mut verdict_time = round_start;
                for b in 1..m {
                    let src = self.host_of(b);
                    let cost = self.env.message_cost(CONTROL_BYTES);
                    let arrival = if src == coord {
                        round_start + cost.sender_cpu + cost.receiver_cpu
                    } else {
                        network.transfer(
                            src,
                            coord,
                            CONTROL_BYTES,
                            cost.protocol_bytes,
                            round_start,
                        ) + cost.receiver_cpu
                    };
                    verdict_time = verdict_time.max(arrival);
                    control_messages += 1;
                }
                for b in 1..m {
                    let dst = self.host_of(b);
                    let cost = self.env.message_cost(CONTROL_BYTES);
                    let arrival = if dst == coord {
                        verdict_time + cost.sender_cpu + cost.receiver_cpu
                    } else {
                        network.transfer(
                            coord,
                            dst,
                            CONTROL_BYTES,
                            cost.protocol_bytes,
                            verdict_time,
                        ) + cost.receiver_cpu
                    };
                    next_start = next_start.max(arrival);
                    control_messages += 1;
                }
            }

            if let Some(tr) = trace.as_mut() {
                for (b, &end) in compute_end.iter().enumerate() {
                    tr.record(b, end, next_start, Activity::Idle);
                }
            }
            iteration_start = next_start;

            if worst_residual < config.epsilon {
                converged = true;
                break;
            }
        }

        let values: Vec<Vec<f64>> = states.iter().map(|s| s.values.clone()).collect();
        let report = RunReport {
            mode: ExecutionMode::Synchronous,
            backend: self.env.kind().label().to_string(),
            elapsed_secs: iteration_start.as_secs(),
            iterations: vec![iterations; m],
            data_messages,
            control_messages,
            data_bytes,
            coalesced_messages: 0,
            peak_mailbox_occupancy: 0,
            converged,
            solution: kernel.assemble(&values),
            final_residual: worst_residual,
        };
        SimulationOutcome {
            sim_time: iteration_start,
            trace,
            network: network.stats(),
            report,
        }
    }

    // ------------------------------------------------------------------
    // Asynchronous (AIAC) simulation
    // ------------------------------------------------------------------

    fn run_asynchronous(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
    ) -> SimulationOutcome {
        let m = kernel.num_blocks();
        let graph = DependencyGraph::from_kernel(kernel);
        let mut network = Network::new(self.topology.clone());
        let thread_cfg = self.env.thread_config(self.problem, m);
        let mut trace = self.record_trace.then(|| ExecutionTrace::new(m));

        let mut procs: Vec<ProcSim> = (0..m)
            .map(|b| ProcSim::new(kernel, b, m, config, &thread_cfg))
            .collect();
        let mut detector = GlobalDetector::new(m);
        let mut sim: Simulator<SimEvent> = Simulator::new();
        let mut stats = Stats::default();

        for b in 0..m {
            sim.schedule_at(SimTime::ZERO, SimEvent::Iterate { block: b });
        }

        while let Some(event) = sim.next_event() {
            let now = event.time;
            match event.payload {
                SimEvent::Iterate { block } => {
                    self.handle_iterate(
                        kernel,
                        config,
                        &graph,
                        &thread_cfg,
                        &mut network,
                        &mut sim,
                        &mut procs,
                        &mut stats,
                        trace.as_mut(),
                        block,
                        now,
                    );
                }
                SimEvent::DeliverData {
                    to,
                    from,
                    iteration,
                    values,
                } => {
                    // Data arriving after the processor stopped is simply dropped,
                    // like a message reaching a terminated process.
                    if !procs[to].stopped && procs[to].state.incorporate(from, iteration, values) {
                        procs[to].fresh_since_last = true;
                    }
                }
                SimEvent::DeliverState { from, converged } => {
                    if detector.report(from, converged) {
                        // Global convergence: broadcast the stop order.
                        let coord = self.host_of(0);
                        for b in 0..m {
                            let dst = self.host_of(b);
                            let cost = self.env.message_cost(CONTROL_BYTES);
                            let arrival = if dst == coord {
                                now + cost.sender_cpu + cost.receiver_cpu
                            } else {
                                network.transfer(
                                    coord,
                                    dst,
                                    CONTROL_BYTES,
                                    cost.protocol_bytes,
                                    now,
                                ) + cost.receiver_cpu
                            };
                            stats.control_messages += 1;
                            sim.schedule_at(arrival, SimEvent::DeliverStop { to: b });
                        }
                    }
                }
                SimEvent::DeliverStop { to } => {
                    let proc = &mut procs[to];
                    if !proc.stopped {
                        proc.stopped = true;
                        // The processor leaves the iterative process as soon as
                        // its in-flight iteration completes.
                        proc.stop_time = proc.busy_until.max(now);
                    }
                }
            }
            if procs.iter().all(|p| p.stopped) {
                break;
            }
        }

        let end_time = procs
            .iter()
            .map(|p| p.stop_time.max(p.busy_until))
            .fold(SimTime::ZERO, SimTime::max);
        let values: Vec<Vec<f64>> = procs.iter().map(|p| p.state.values.clone()).collect();
        let worst_residual = procs.iter().map(|p| p.state.residual).fold(0.0, f64::max);
        let report = RunReport {
            mode: ExecutionMode::Asynchronous,
            backend: self.env.kind().label().to_string(),
            elapsed_secs: end_time.as_secs(),
            iterations: procs.iter().map(|p| p.state.iteration).collect(),
            data_messages: stats.data_messages,
            control_messages: stats.control_messages,
            data_bytes: stats.data_bytes,
            coalesced_messages: 0,
            peak_mailbox_occupancy: 0,
            converged: detector.is_decided(),
            solution: kernel.assemble(&values),
            final_residual: worst_residual,
        };
        SimulationOutcome {
            sim_time: end_time,
            trace,
            network: network.stats(),
            report,
        }
    }

    /// Processes the start of one asynchronous local iteration.
    #[allow(clippy::too_many_arguments)]
    fn handle_iterate(
        &self,
        kernel: &dyn IterativeKernel,
        config: &RunConfig,
        graph: &DependencyGraph,
        thread_cfg: &ThreadConfig,
        network: &mut Network,
        sim: &mut Simulator<SimEvent>,
        procs: &mut [ProcSim],
        stats: &mut Stats,
        mut trace: Option<&mut ExecutionTrace>,
        block: usize,
        now: SimTime,
    ) {
        if procs[block].stopped {
            return;
        }
        let host = self.topology.host(self.host_of(block));
        let compute_end = now + host.compute_time(kernel.iteration_cost(block));
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(block, now, compute_end, Activity::Compute);
        }

        let fresh_data = procs[block].fresh_since_last;
        procs[block].fresh_since_last = false;
        let has_dependencies = !graph.in_neighbours(block).is_empty();

        // Numeric update using whatever dependency data has been delivered so
        // far (the asynchronous model of Algorithm 1). When nothing new has
        // arrived and the block already sits at its local fixed point, the
        // update would reproduce the same values bit for bit, so the (real)
        // numerical work is skipped while the virtual iteration still takes
        // place — the simulated machine keeps burning its cycles either way.
        if !fresh_data && procs[block].state.residual < config.epsilon * 1e-3 {
            procs[block].state.iteration += 1;
        } else {
            procs[block].state.iterate(kernel);
        }
        procs[block].busy_until = compute_end;

        // Local convergence is judged on the cumulative drift since the last
        // window anchor (see `BlockState::drift_from_anchor`); state messages
        // are sent only on change, and quiet iterations on stale data do not
        // advance the streak.
        let drift = kernel.residual_between(
            block,
            &procs[block].state.values,
            procs[block].state.anchor(),
        );
        if drift >= config.epsilon {
            procs[block].state.reset_anchor();
        }
        if procs[block]
            .local
            .observe_gated(drift, fresh_data || !has_dependencies)
        {
            let converged = procs[block].local.is_converged();
            let coord = self.host_of(0);
            let src = self.host_of(block);
            let cost = self.env.message_cost(CONTROL_BYTES);
            let arrival = if src == coord {
                compute_end + cost.sender_cpu + cost.receiver_cpu
            } else {
                network.transfer(src, coord, CONTROL_BYTES, cost.protocol_bytes, compute_end)
                    + cost.receiver_cpu
            };
            stats.control_messages += 1;
            sim.schedule_at(
                arrival,
                SimEvent::DeliverState {
                    from: block,
                    converged,
                },
            );
        }

        // Asynchronous sends to every dependant. A send to a destination is
        // skipped while the previous transfer to that destination is still in
        // progress ("data are actually sent only if any previous sending of
        // the same data to the same destination is terminated").
        let mut sends_issued = 0usize;
        for &dst_block in graph.out_neighbours(block) {
            if compute_end < procs[block].send_busy_until[dst_block] {
                continue;
            }
            let src = self.host_of(block);
            let dst = self.host_of(dst_block);
            let payload = kernel.message_bytes(block, dst_block) + CONTROL_BYTES;
            let cost = self.env.message_cost(payload);
            let pack_start =
                compute_end + thread_cfg.send_queue_delay(sends_issued, cost.sender_cpu);
            let pack_done = pack_start + cost.sender_cpu;
            if let Some(tr) = trace.as_deref_mut() {
                tr.record(block, pack_start, pack_done, Activity::Send);
            }
            let wire_arrival = if src == dst {
                pack_done
            } else {
                network.transfer(src, dst, payload, cost.protocol_bytes, pack_done)
            };
            // Receiver-side dispatch: dedicated pools serialise concurrent
            // arrivals, on-demand threads pay a spawn cost.
            let delivered = {
                let after_dispatch = wire_arrival + cost.dispatch_latency;
                match thread_cfg.receive {
                    ReceiveDiscipline::Dedicated(_) => {
                        let start = procs[dst_block].next_receive_slot(after_dispatch);
                        let done = start + cost.receiver_cpu;
                        procs[dst_block].occupy_receive_slot(done);
                        done
                    }
                    ReceiveDiscipline::OnDemand { spawn_cost } => {
                        after_dispatch + spawn_cost + cost.receiver_cpu
                    }
                }
            };
            procs[block].send_busy_until[dst_block] = wire_arrival;
            stats.data_messages += 1;
            stats.data_bytes += payload;
            sends_issued += 1;
            sim.schedule_at(
                delivered,
                SimEvent::DeliverData {
                    to: dst_block,
                    from: block,
                    iteration: procs[block].state.iteration,
                    values: procs[block].state.values.clone(),
                },
            );
        }

        // Next iteration, unless the limit was reached.
        if procs[block].state.iteration >= config.max_iterations as u64 {
            procs[block].stopped = true;
            procs[block].stop_time = compute_end;
        } else {
            sim.schedule_at(compute_end, SimEvent::Iterate { block });
        }
    }
}

/// Events of the asynchronous simulation.
enum SimEvent {
    /// A block starts a local iteration.
    Iterate { block: usize },
    /// A data message reaches (and is unpacked at) its destination.
    DeliverData {
        to: usize,
        from: usize,
        iteration: u64,
        values: Vec<f64>,
    },
    /// A local-convergence state report reaches the central detector.
    DeliverState { from: usize, converged: bool },
    /// The stop order reaches a block.
    DeliverStop { to: usize },
}

/// Message counters of a simulated run.
#[derive(Debug, Default)]
struct Stats {
    data_messages: u64,
    control_messages: u64,
    data_bytes: u64,
}

/// Per-block simulation state.
struct ProcSim {
    state: BlockState,
    local: LocalConvergence,
    stopped: bool,
    /// True when at least one new dependency message arrived since the last
    /// iteration started.
    fresh_since_last: bool,
    /// Virtual time until which the current/last iteration runs.
    busy_until: SimTime,
    /// Time at which the block actually stopped (stop received or limit hit).
    stop_time: SimTime,
    /// Per-destination completion time of the last transfer, used to skip
    /// sends while a previous one is still in flight.
    send_busy_until: Vec<SimTime>,
    /// Free times of the dedicated receiving threads (empty for on-demand).
    receive_slots: Vec<SimTime>,
}

impl ProcSim {
    fn new(
        kernel: &dyn IterativeKernel,
        block: usize,
        num_blocks: usize,
        config: &RunConfig,
        thread_cfg: &ThreadConfig,
    ) -> Self {
        let pool = match thread_cfg.receive {
            ReceiveDiscipline::Dedicated(n) => n.max(1),
            ReceiveDiscipline::OnDemand { .. } => 0,
        };
        Self {
            state: BlockState::new(kernel, block),
            local: LocalConvergence::new(config.epsilon, config.convergence_streak),
            stopped: false,
            fresh_since_last: false,
            busy_until: SimTime::ZERO,
            stop_time: SimTime::ZERO,
            send_busy_until: vec![SimTime::ZERO; num_blocks],
            receive_slots: vec![SimTime::ZERO; pool],
        }
    }

    /// Earliest time a dedicated receiving thread can start handling a
    /// message that arrived at `arrival`.
    fn next_receive_slot(&self, arrival: SimTime) -> SimTime {
        self.receive_slots
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO)
            .max(arrival)
    }

    /// Marks the earliest-free dedicated receiving thread as busy until
    /// `until`.
    fn occupy_receive_slot(&mut self, until: SimTime) {
        if let Some(slot) = self
            .receive_slots
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).unwrap())
        {
            *slot = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::test_kernels::{Diverging, RingContraction};
    use crate::runtime::sequential::SequentialRuntime;

    fn grid(n: usize) -> GridTopology {
        GridTopology::ethernet_3_sites(n)
    }

    #[test]
    fn synchronous_simulation_matches_sequential_solution() {
        let kernel = RingContraction::new(6);
        let config = RunConfig::synchronous(1e-10);
        let seq = SequentialRuntime::new().run(&kernel, &config);
        let sim = SimulatedRuntime::new(grid(6), EnvKind::MpiSync, ProblemKind::SparseLinear)
            .run(&kernel, &config);
        assert!(sim.report.converged);
        assert_eq!(sim.report.iterations[0], seq.iterations[0]);
        for (a, b) in sim.report.solution.iter().zip(&seq.solution) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(sim.sim_time > SimTime::ZERO);
    }

    #[test]
    fn asynchronous_simulation_converges_to_the_fixed_point() {
        let kernel = RingContraction::new(6);
        let config = RunConfig::asynchronous(1e-10).with_streak(3);
        for env in EnvKind::ASYNC {
            let sim = SimulatedRuntime::new(grid(6), env, ProblemKind::SparseLinear)
                .run(&kernel, &config);
            assert!(sim.report.converged, "{env} failed to converge");
            let fp = kernel.fixed_point();
            for v in &sim.report.solution {
                assert!((v - fp).abs() < 1e-6, "{env}: {v} vs {fp}");
            }
            assert!(sim.report.data_messages > 0);
        }
    }

    #[test]
    fn async_is_faster_than_sync_on_a_distant_grid() {
        // The headline qualitative result of the paper.
        let kernel = RingContraction::new(9);
        let sync = SimulatedRuntime::new(grid(9), EnvKind::MpiSync, ProblemKind::SparseLinear)
            .run(&kernel, &RunConfig::synchronous(1e-9));
        let async_run = SimulatedRuntime::new(grid(9), EnvKind::Pm2, ProblemKind::SparseLinear)
            .run(&kernel, &RunConfig::asynchronous(1e-9).with_streak(3));
        assert!(sync.report.converged && async_run.report.converged);
        assert!(
            async_run.report.elapsed_secs < sync.report.elapsed_secs,
            "async {} s should beat sync {} s",
            async_run.report.elapsed_secs,
            sync.report.elapsed_secs
        );
    }

    #[test]
    fn asynchronous_runs_are_deterministic() {
        let kernel = RingContraction::new(5);
        let config = RunConfig::asynchronous(1e-9);
        let run = || {
            SimulatedRuntime::new(grid(5), EnvKind::OmniOrb, ProblemKind::SparseLinear)
                .run(&kernel, &config)
        };
        let a = run();
        let b = run();
        assert_eq!(a.report.elapsed_secs, b.report.elapsed_secs);
        assert_eq!(a.report.iterations, b.report.iterations);
        assert_eq!(a.report.data_messages, b.report.data_messages);
    }

    #[test]
    fn heterogeneous_hosts_do_different_amounts_of_work() {
        let kernel = RingContraction::new(6);
        let topo = GridTopology::local_hetero_cluster(6);
        let sim = SimulatedRuntime::new(topo, EnvKind::Pm2, ProblemKind::SparseLinear)
            .run(&kernel, &RunConfig::asynchronous(1e-10));
        // host 2 is the fastest (P4 2.4), host 0 the slowest (Duron 800):
        // in an asynchronous run the fast block iterates more often.
        assert!(sim.report.iterations[2] > sim.report.iterations[0]);
    }

    #[test]
    fn sync_mode_on_mono_threaded_mpi_is_allowed_but_async_is_not() {
        let kernel = RingContraction::new(3);
        let runtime = SimulatedRuntime::new(grid(3), EnvKind::MpiSync, ProblemKind::SparseLinear);
        let ok = runtime.run(&kernel, &RunConfig::synchronous(1e-8));
        assert!(ok.report.converged);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runtime.run(&kernel, &RunConfig::asynchronous(1e-8))
        }));
        assert!(
            result.is_err(),
            "AIAC on mono-threaded MPI must be rejected"
        );
    }

    #[test]
    fn iteration_limit_stops_non_convergent_asynchronous_runs() {
        let kernel = Diverging { blocks: 4 };
        let config = RunConfig::asynchronous(1e-12).with_max_iterations(40);
        let sim = SimulatedRuntime::new(grid(4), EnvKind::MpiMadeleine, ProblemKind::SparseLinear)
            .run(&kernel, &config);
        assert!(!sim.report.converged);
        assert!(sim.report.iterations.iter().all(|&i| i <= 40));
    }

    #[test]
    fn tracing_records_compute_and_idle_time() {
        let kernel = RingContraction::new(2);
        let sync = SimulatedRuntime::new(grid(2), EnvKind::MpiSync, ProblemKind::SparseLinear)
            .with_trace(true)
            .run(&kernel, &RunConfig::synchronous(1e-8));
        let trace = sync.trace.expect("trace requested");
        assert!(trace.time_in(0, Activity::Compute) > SimTime::ZERO);
        assert!(
            trace.time_in(0, Activity::Idle) > SimTime::ZERO,
            "SISC has idle time"
        );

        let async_run = SimulatedRuntime::new(grid(2), EnvKind::Pm2, ProblemKind::SparseLinear)
            .with_trace(true)
            .run(&kernel, &RunConfig::asynchronous(1e-8));
        let atrace = async_run.trace.expect("trace requested");
        assert!(atrace.time_in(0, Activity::Compute) > SimTime::ZERO);
        // AIAC processors never wait between iterations.
        assert_eq!(atrace.time_in(0, Activity::Idle), SimTime::ZERO);
    }

    #[test]
    fn more_blocks_than_hosts_are_placed_round_robin() {
        let kernel = RingContraction::new(8);
        let runtime = SimulatedRuntime::new(grid(4), EnvKind::Pm2, ProblemKind::SparseLinear);
        assert_eq!(runtime.host_of(0), runtime.host_of(4));
        let sim = runtime.run(&kernel, &RunConfig::asynchronous(1e-8));
        assert!(sim.report.converged);
    }
}
