//! `aiac-envs` — models of the parallel programming environments compared in
//! the AIAC paper.
//!
//! The paper implements the same two AIAC algorithms with three middleware
//! stacks — PM2, MPICH/Madeleine and OmniORB 4 — plus a synchronous MPI
//! baseline, and concludes that the performance differences between them come
//! from their communication overheads and thread-management schemes rather
//! than from the algorithms. This crate encodes those published
//! characteristics as *environment models* behind a single [`env::Environment`]
//! trait:
//!
//! * [`mpi_sync`] — the classical single-threaded MPI used for the SISC
//!   baseline (blocking receives localised in the program sequence);
//! * [`mpi_mad`] — MPICH/Madeleine: thread-safe MPI with Marcel threads,
//!   dedicated receiving threads, explicit message passing;
//! * [`pm2`] — PM2: RPC-style communication with explicit data packing and
//!   Marcel threads, receiving handlers activated on demand;
//! * [`omniorb`] — OmniORB 4: CORBA object invocations, per-request dispatch
//!   threads, IIOP marshalling overhead and a naming-service lookup at
//!   deployment time;
//! * [`threads`] — the per-problem thread configurations of Table 4;
//! * [`deploy`] — connection-graph / portability constraints discussed in the
//!   "ease of deployment" comparison (Section 5.3);
//! * [`profile`] — the five named environment profiles
//!   ([`profile::EnvProfile`]) the benchmark harness sweeps: the synchronous
//!   MPI baseline, the three asynchronous grid environments and the
//!   shared-memory threads execution.
//!
//! The models are intentionally simple — per-message CPU costs, per-message
//! protocol bytes, and a threading discipline — because those are exactly the
//! quantities the paper identifies as the differentiators between the
//! environments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deploy;
pub mod env;
pub mod mpi_mad;
pub mod mpi_sync;
pub mod omniorb;
pub mod pm2;
pub mod profile;
pub mod threads;

pub use deploy::{ConnectionGraph, DeploymentProfile};
pub use env::{CommStyle, EnvKind, Environment, MessageCost};
pub use mpi_mad::MpiMadeleine;
pub use mpi_sync::MpiSync;
pub use omniorb::OmniOrb;
pub use pm2::Pm2;
pub use profile::{EnvProfile, ServiceKnobs, TraceKnobs};
pub use threads::{ReceiveDiscipline, ThreadConfig};
