//! The OmniORB 4 (CORBA) model.
//!
//! OmniORB is a CORBA 2.1-compliant object request broker. Using an ORB for
//! parallel iterative computing is unusual, but the paper shows it provides
//! the two required ingredients — inter-machine communication and
//! multi-threading — and is even the fastest environment on the sparse linear
//! problem over the distant grid, thanks to its aggressive per-request
//! threading (one sending thread per peer, handler threads created on
//! demand). The price is the IIOP marshalling overhead on every invocation
//! and a slightly lower efficiency on fast local networks, both captured by
//! this model, plus the naming-service requirement recorded in the
//! deployment profile.

use crate::deploy::{ConnectionGraph, DeploymentProfile};
use crate::env::{CommStyle, EnvKind, Environment, MessageCost};
use crate::threads::{ProblemKind, ThreadConfig};
use aiac_netsim::time::SimTime;

/// Model of the OmniORB 4 environment.
#[derive(Debug, Clone, Default)]
pub struct OmniOrb {
    _private: (),
}

impl OmniOrb {
    /// Creates the model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cost of spawning a request-handler thread in the ORB.
    fn spawn_cost() -> SimTime {
        SimTime::from_micros(60.0)
    }
}

impl Environment for OmniOrb {
    fn kind(&self) -> EnvKind {
        EnvKind::OmniOrb
    }

    fn name(&self) -> &str {
        "OmniORB 4 (CORBA object request broker)"
    }

    fn comm_style(&self) -> CommStyle {
        CommStyle::ObjectInvocation
    }

    fn supports_async(&self) -> bool {
        true
    }

    fn message_cost(&self, payload_bytes: u64) -> MessageCost {
        MessageCost {
            // CDR marshalling of the invocation arguments on both sides.
            sender_cpu: SimTime::from_micros(60.0 + payload_bytes as f64 * 1.0e-3),
            receiver_cpu: SimTime::from_micros(55.0 + payload_bytes as f64 * 1.0e-3),
            // GIOP/IIOP request header + object key + alignment padding.
            protocol_bytes: 288,
            dispatch_latency: SimTime::from_micros(25.0),
        }
    }

    fn thread_config(&self, problem: ProblemKind, num_procs: usize) -> ThreadConfig {
        match problem {
            // Table 4: "N sending threads, receiving threads created on
            // demand" where N is the number of processors.
            ProblemKind::SparseLinear => {
                ThreadConfig::on_demand(num_procs.max(1), Self::spawn_cost())
            }
            // Table 4: "two sending threads, receiving threads created on demand".
            ProblemKind::NonLinearChemical => ThreadConfig::on_demand(2, Self::spawn_cost()),
        }
    }

    fn deployment(&self) -> DeploymentProfile {
        DeploymentProfile {
            connection_graph: ConnectionGraph::IncompleteAllowed,
            auto_data_conversion: true,
            needs_runtime_service: true,
            multi_protocol: false,
            config_files: 1,
            launch_commands: 2,
            notes: "portable, client/server architecture bypasses firewalls; \
                    a naming service must run on one site",
        }
    }

    fn ease_of_programming(&self) -> u8 {
        // Client/server initialisation boilerplate, but reusable.
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omniorb_is_an_object_invocation_environment() {
        let env = OmniOrb::new();
        assert!(env.supports_async());
        assert_eq!(env.comm_style(), CommStyle::ObjectInvocation);
    }

    #[test]
    fn sparse_linear_uses_one_sending_thread_per_processor() {
        let env = OmniOrb::new();
        let cfg = env.thread_config(ProblemKind::SparseLinear, 24);
        assert_eq!(cfg.sending_threads, 24);
        assert!(cfg.receive.is_on_demand());
        // with so many senders, outgoing packings never queue
        let pack = SimTime::from_millis(1.0);
        assert_eq!(cfg.send_queue_delay(23, pack), SimTime::ZERO);
    }

    #[test]
    fn nonlinear_uses_two_sending_threads() {
        let env = OmniOrb::new();
        let cfg = env.thread_config(ProblemKind::NonLinearChemical, 24);
        assert_eq!(cfg.sending_threads, 2);
        assert!(cfg.receive.is_on_demand());
    }

    #[test]
    fn marshalling_is_the_heaviest_of_the_tested_environments() {
        let orb = OmniOrb::new().message_cost(200_000);
        for other in [EnvKind::MpiSync, EnvKind::MpiMadeleine, EnvKind::Pm2] {
            let c = other.build().message_cost(200_000);
            assert!(orb.sender_cpu > c.sender_cpu, "vs {other}");
            assert!(orb.protocol_bytes > c.protocol_bytes, "vs {other}");
        }
    }

    #[test]
    fn deployment_is_flexible_but_needs_a_naming_service() {
        let p = OmniOrb::new().deployment();
        assert_eq!(p.connection_graph, ConnectionGraph::IncompleteAllowed);
        assert!(p.auto_data_conversion);
        assert!(p.needs_runtime_service);
    }
}
