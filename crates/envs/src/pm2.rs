//! The PM2 model.
//!
//! PM2 (Parallel Multithreaded Machine) couples the Marcel thread package
//! with the Madeleine communication interface and exposes a remote procedure
//! call programming style with explicit data packing. It is the environment
//! the authors had used for their earlier AIAC implementations and the one
//! with "the steadiest behaviour" in the experiments. Its Table 4
//! configurations use one or two sending threads with receiving handlers
//! activated on demand (sparse problem) or a single receiving thread
//! (non-linear problem).

use crate::deploy::{ConnectionGraph, DeploymentProfile};
use crate::env::{CommStyle, EnvKind, Environment, MessageCost};
use crate::threads::{ProblemKind, ThreadConfig};
use aiac_netsim::time::SimTime;

/// Model of the PM2 environment.
#[derive(Debug, Clone, Default)]
pub struct Pm2 {
    _private: (),
}

impl Pm2 {
    /// Creates the model.
    pub fn new() -> Self {
        Self::default()
    }

    /// CPU cost of creating / waking a Marcel handler thread for an incoming
    /// RPC (user-level threads are cheap).
    fn spawn_cost() -> SimTime {
        SimTime::from_micros(40.0)
    }
}

impl Environment for Pm2 {
    fn kind(&self) -> EnvKind {
        EnvKind::Pm2
    }

    fn name(&self) -> &str {
        "PM2 (Marcel threads + Madeleine, RPC with explicit packing)"
    }

    fn comm_style(&self) -> CommStyle {
        CommStyle::RemoteProcedureCall
    }

    fn supports_async(&self) -> bool {
        true
    }

    fn message_cost(&self, payload_bytes: u64) -> MessageCost {
        MessageCost {
            // Explicit pack/unpack of every buffer before/after the RPC.
            sender_cpu: SimTime::from_micros(35.0 + payload_bytes as f64 * 0.5e-3),
            receiver_cpu: SimTime::from_micros(30.0 + payload_bytes as f64 * 0.5e-3),
            protocol_bytes: 128,
            dispatch_latency: SimTime::from_micros(15.0),
        }
    }

    fn thread_config(&self, problem: ProblemKind, _num_procs: usize) -> ThreadConfig {
        match problem {
            // Table 4: "one sending thread, receiving threads created on demand".
            ProblemKind::SparseLinear => ThreadConfig::on_demand(1, Self::spawn_cost()),
            // Table 4: "two sending threads, one receiving thread".
            ProblemKind::NonLinearChemical => ThreadConfig::dedicated(2, 1),
        }
    }

    fn deployment(&self) -> DeploymentProfile {
        DeploymentProfile {
            connection_graph: ConnectionGraph::Complete,
            auto_data_conversion: false,
            needs_runtime_service: false,
            multi_protocol: false,
            config_files: 1,
            launch_commands: 1,
            notes: "machine list + pm2load; complete interconnection graph required, \
                    no automatic conversion of data representations",
        }
    }

    fn ease_of_programming(&self) -> u8 {
        // RPC + explicit packing: a bit more work than MPI/Mad.
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm2_is_an_rpc_environment_supporting_async() {
        let env = Pm2::new();
        assert!(env.supports_async());
        assert_eq!(env.comm_style(), CommStyle::RemoteProcedureCall);
        assert_eq!(env.kind(), EnvKind::Pm2);
    }

    #[test]
    fn thread_config_matches_table4() {
        let env = Pm2::new();
        assert_eq!(
            env.thread_config(ProblemKind::SparseLinear, 12).describe(),
            "one sending thread, receiving threads created on demand"
        );
        assert_eq!(
            env.thread_config(ProblemKind::NonLinearChemical, 12)
                .describe(),
            "two sending threads, one receiving thread"
        );
    }

    #[test]
    fn packing_costs_sit_between_mpi_and_corba() {
        let pm2 = Pm2::new().message_cost(50_000);
        let mpi = EnvKind::MpiMadeleine.build().message_cost(50_000);
        let orb = EnvKind::OmniOrb.build().message_cost(50_000);
        assert!(pm2.sender_cpu > mpi.sender_cpu);
        assert!(pm2.sender_cpu < orb.sender_cpu);
        assert!(pm2.protocol_bytes > mpi.protocol_bytes);
        assert!(pm2.protocol_bytes < orb.protocol_bytes);
    }

    #[test]
    fn deployment_is_the_most_restrictive() {
        let p = Pm2::new().deployment();
        assert_eq!(p.connection_graph, ConnectionGraph::Complete);
        assert!(!p.auto_data_conversion);
    }
}
