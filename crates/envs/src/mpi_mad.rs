//! The MPICH/Madeleine model.
//!
//! MPICH/Madeleine is a multi-protocol, thread-safe MPI built on the Marcel
//! thread package and the Madeleine communication layer. The paper found it
//! "probably the easiest to program" (communications keep the familiar MPI
//! form, threads are provided by Marcel) and observed its implementations use
//! one or two *dedicated* receiving threads (Table 4): arrivals are handled by
//! a fixed pool, so simultaneous receptions from many peers serialise, which
//! is the behaviour this model exposes to the runtime.

use crate::deploy::{ConnectionGraph, DeploymentProfile};
use crate::env::{CommStyle, EnvKind, Environment, MessageCost};
use crate::threads::{ProblemKind, ThreadConfig};
use aiac_netsim::time::SimTime;

/// Model of the MPICH/Madeleine environment.
#[derive(Debug, Clone, Default)]
pub struct MpiMadeleine {
    _private: (),
}

impl MpiMadeleine {
    /// Creates the model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Environment for MpiMadeleine {
    fn kind(&self) -> EnvKind {
        EnvKind::MpiMadeleine
    }

    fn name(&self) -> &str {
        "MPICH/Madeleine (thread-safe multi-protocol MPI)"
    }

    fn comm_style(&self) -> CommStyle {
        CommStyle::ExplicitMessage
    }

    fn supports_async(&self) -> bool {
        true
    }

    fn message_cost(&self, payload_bytes: u64) -> MessageCost {
        MessageCost {
            // Same thin per-byte handling as plain MPI plus a small
            // thread-safety toll on the fixed part.
            sender_cpu: SimTime::from_micros(25.0 + payload_bytes as f64 * 0.3e-3),
            receiver_cpu: SimTime::from_micros(25.0 + payload_bytes as f64 * 0.3e-3),
            protocol_bytes: 96,
            dispatch_latency: SimTime::from_micros(8.0),
        }
    }

    fn thread_config(&self, problem: ProblemKind, _num_procs: usize) -> ThreadConfig {
        match problem {
            // Table 4: "one sending thread, one receiving thread".
            ProblemKind::SparseLinear => ThreadConfig::dedicated(1, 1),
            // Table 4: "two sending threads, two receiving threads".
            ProblemKind::NonLinearChemical => ThreadConfig::dedicated(2, 2),
        }
    }

    fn deployment(&self) -> DeploymentProfile {
        DeploymentProfile {
            connection_graph: ConnectionGraph::Complete,
            auto_data_conversion: false,
            needs_runtime_service: false,
            multi_protocol: true,
            config_files: 2,
            launch_commands: 1,
            notes: "two protocol/machine files; can mix TCP, Myrinet, SCI in one run",
        }
    }

    fn ease_of_programming(&self) -> u8 {
        // "MPI/Mad is probably the easiest to program".
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supports_async_with_explicit_messages() {
        let env = MpiMadeleine::new();
        assert!(env.supports_async());
        assert_eq!(env.comm_style(), CommStyle::ExplicitMessage);
    }

    #[test]
    fn thread_config_matches_table4() {
        let env = MpiMadeleine::new();
        let sparse = env.thread_config(ProblemKind::SparseLinear, 12);
        assert_eq!(
            sparse.describe(),
            "one sending thread, one receiving thread"
        );
        let chem = env.thread_config(ProblemKind::NonLinearChemical, 12);
        assert_eq!(
            chem.describe(),
            "two sending threads, two receiving threads"
        );
    }

    #[test]
    fn it_is_the_easiest_to_program() {
        let env = MpiMadeleine::new();
        assert_eq!(env.ease_of_programming(), 5);
        for other in [EnvKind::Pm2, EnvKind::OmniOrb] {
            assert!(env.ease_of_programming() >= other.build().ease_of_programming());
        }
    }

    #[test]
    fn receives_are_handled_by_a_dedicated_pool() {
        let env = MpiMadeleine::new();
        let cfg = env.thread_config(ProblemKind::SparseLinear, 8);
        assert!(!cfg.receive.is_on_demand());
        // Three simultaneous arrivals on a single receiver thread serialise.
        let handle = SimTime::from_micros(100.0);
        assert!(cfg.receive_queue_delay(2, handle) > SimTime::ZERO);
    }
}
