//! Named environment profiles — the sweep axis of the benchmark harness.
//!
//! The paper's evaluation runs every problem under five execution
//! environments: the mono-threaded synchronous MPI baseline, the three
//! multi-threaded AIAC middleware stacks (PM2, MPICH/Madeleine, OmniORB 4),
//! and the shared-memory threads implementation used on a single SMP
//! machine. [`EnvProfile`] gives each of those a stable name so experiment
//! specs can declare "sweep these profiles" as data instead of hard-coding
//! runtime/environment pairs, and so benchmark records key their cells by a
//! slug that stays meaningful across PRs.
//!
//! A profile answers two questions the harness runner asks:
//!
//! 1. *Which back-end executes it?* — the four grid profiles run on the
//!    simulated runtime over an [`EnvKind`] cost model; the threads profile
//!    runs on the real threaded executor ([`EnvProfile::is_simulated`]).
//! 2. *Which algorithm does it run?* — the synchronous profile runs SISC,
//!    everything else runs AIAC ([`EnvProfile::is_synchronous`]).

use crate::env::EnvKind;
use serde::{Deserialize, Serialize};

/// One of the five named execution environments of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnvProfile {
    /// Synchronous SISC baseline over mono-threaded MPI (simulated grid).
    SyncMpi,
    /// Asynchronous AIAC over PM2 (simulated grid).
    AsyncPm2,
    /// Asynchronous AIAC over MPICH/Madeleine (simulated grid).
    AsyncMpiMad,
    /// Asynchronous AIAC over OmniORB 4 (simulated grid).
    AsyncOmniOrb,
    /// Shared-memory execution on the real threaded back-end (one SMP
    /// machine, OS threads + coalescing mailboxes instead of a network).
    LocalThreads,
}

impl EnvProfile {
    /// Every profile, in the order the harness sweeps them: the synchronous
    /// reference first (records compute speed ratios against it), then the
    /// asynchronous grid environments, then the shared-memory profile.
    pub const ALL: [EnvProfile; 5] = [
        EnvProfile::SyncMpi,
        EnvProfile::AsyncPm2,
        EnvProfile::AsyncMpiMad,
        EnvProfile::AsyncOmniOrb,
        EnvProfile::LocalThreads,
    ];

    /// The four profiles that execute on the simulated grid (deterministic
    /// virtual-clock metrics, the only ones the regression gate compares).
    pub const SIMULATED: [EnvProfile; 4] = [
        EnvProfile::SyncMpi,
        EnvProfile::AsyncPm2,
        EnvProfile::AsyncMpiMad,
        EnvProfile::AsyncOmniOrb,
    ];

    /// Stable slug used in benchmark-record keys and CLIs.
    pub fn slug(self) -> &'static str {
        match self {
            EnvProfile::SyncMpi => "sync-mpi",
            EnvProfile::AsyncPm2 => "async-pm2",
            EnvProfile::AsyncMpiMad => "async-mpi-mad",
            EnvProfile::AsyncOmniOrb => "async-omniorb4",
            EnvProfile::LocalThreads => "local-threads",
        }
    }

    /// Human-readable label matching the paper's table wording.
    pub fn label(self) -> &'static str {
        match self {
            EnvProfile::LocalThreads => "local threads",
            other => other
                .env_kind()
                .expect("grid profiles map to an EnvKind")
                .label(),
        }
    }

    /// The environment cost model backing this profile, when it runs on the
    /// simulated grid (`None` for the shared-memory threads profile).
    pub fn env_kind(self) -> Option<EnvKind> {
        match self {
            EnvProfile::SyncMpi => Some(EnvKind::MpiSync),
            EnvProfile::AsyncPm2 => Some(EnvKind::Pm2),
            EnvProfile::AsyncMpiMad => Some(EnvKind::MpiMadeleine),
            EnvProfile::AsyncOmniOrb => Some(EnvKind::OmniOrb),
            EnvProfile::LocalThreads => None,
        }
    }

    /// True for the profiles executed by the simulated (virtual-time)
    /// runtime; false for the real threaded back-end.
    pub fn is_simulated(self) -> bool {
        self.env_kind().is_some()
    }

    /// True for the synchronous (SISC) baseline; every other profile runs
    /// the asynchronous AIAC algorithm.
    pub fn is_synchronous(self) -> bool {
        self == EnvProfile::SyncMpi
    }

    /// Default solver-service sizing for this profile.
    ///
    /// The service front end (`aiac-service`) schedules many concurrent
    /// solves over one shared pool; how much concurrency an environment can
    /// absorb differs the same way the paper's environments differ. The
    /// synchronous baseline admits little (every job's supersteps convoy
    /// behind the slowest), the asynchronous middleware stacks admit more,
    /// and the shared-memory profile — the one the real service runs on —
    /// admits the most.
    pub fn service_knobs(self) -> ServiceKnobs {
        match self {
            EnvProfile::SyncMpi => ServiceKnobs {
                workers: 4,
                max_in_flight: 256,
                tenant_queue_depth: 64,
                drr_quantum: 1,
            },
            EnvProfile::AsyncPm2 | EnvProfile::AsyncMpiMad | EnvProfile::AsyncOmniOrb => {
                ServiceKnobs {
                    workers: 8,
                    max_in_flight: 1024,
                    tenant_queue_depth: 256,
                    drr_quantum: 2,
                }
            }
            EnvProfile::LocalThreads => ServiceKnobs {
                workers: 8,
                max_in_flight: 4096,
                tenant_queue_depth: 1024,
                drr_quantum: 4,
            },
        }
    }

    /// Default tracing sizing for this profile.
    ///
    /// The observability plane (`aiac-obs`) keeps one bounded event ring
    /// per track; how large a ring a profile warrants follows the same
    /// gradient as its service sizing. The synchronous baseline emits few
    /// events per worker (one superstep span per iteration), the
    /// asynchronous grid environments emit more (sends and arrivals are
    /// decoupled from iterations), and the shared-memory profile — whose
    /// workers also trace steals, parks and mailbox publishes — emits the
    /// most. Plain numbers only: consumers build their own `TraceConfig`
    /// from these, so this crate needs no edge to the observability crate.
    pub fn trace_knobs(self) -> TraceKnobs {
        match self {
            EnvProfile::SyncMpi => TraceKnobs {
                ring_capacity: 16_384,
            },
            EnvProfile::AsyncPm2 | EnvProfile::AsyncMpiMad | EnvProfile::AsyncOmniOrb => {
                TraceKnobs {
                    ring_capacity: 32_768,
                }
            }
            EnvProfile::LocalThreads => TraceKnobs {
                ring_capacity: 65_536,
            },
        }
    }
}

/// Per-profile sizing knobs for the observability plane's event rings.
///
/// Consumed by whoever builds a trace configuration for a run under a given
/// [`EnvProfile`]; carries plain numbers so this crate stays free of an
/// observability dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceKnobs {
    /// Per-track event-ring capacity, in events (newest win on overflow).
    pub ring_capacity: usize,
}

/// Per-profile sizing knobs for the multi-tenant solver service.
///
/// Consumed by `aiac-service` when building a service configuration for a
/// given [`EnvProfile`]; every field maps one-to-one onto a field of the
/// service's own config type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceKnobs {
    /// Workers in the shared solve pool.
    pub workers: usize,
    /// Global bound on admitted-but-unfinished jobs.
    pub max_in_flight: usize,
    /// Bound on each tenant's pending queue.
    pub tenant_queue_depth: usize,
    /// Deficit-round-robin quantum (jobs per tenant per dispatcher round).
    pub drr_quantum: usize,
}

impl std::fmt::Display for EnvProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

impl std::str::FromStr for EnvProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.to_ascii_lowercase();
        EnvProfile::ALL
            .into_iter()
            .find(|p| p.slug() == lowered || p.label().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                format!(
                    "unknown environment profile {s:?} (expected one of: {})",
                    EnvProfile::ALL.map(|p| p.slug()).join(", ")
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_five_profiles_with_unique_slugs() {
        assert_eq!(EnvProfile::ALL.len(), 5);
        let mut slugs: Vec<&str> = EnvProfile::ALL.iter().map(|p| p.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), 5, "slugs must be unique");
    }

    #[test]
    fn simulated_profiles_map_to_env_kinds() {
        for p in EnvProfile::SIMULATED {
            assert!(p.is_simulated());
            assert!(p.env_kind().is_some());
        }
        assert!(!EnvProfile::LocalThreads.is_simulated());
        assert_eq!(EnvProfile::LocalThreads.env_kind(), None);
    }

    #[test]
    fn only_the_mpi_baseline_is_synchronous() {
        assert!(EnvProfile::SyncMpi.is_synchronous());
        for p in [
            EnvProfile::AsyncPm2,
            EnvProfile::AsyncMpiMad,
            EnvProfile::AsyncOmniOrb,
            EnvProfile::LocalThreads,
        ] {
            assert!(!p.is_synchronous(), "{p} must run AIAC");
        }
    }

    #[test]
    fn labels_match_the_paper_and_slugs_parse_back() {
        assert_eq!(EnvProfile::SyncMpi.label(), "sync MPI");
        assert_eq!(EnvProfile::AsyncOmniOrb.label(), "async OmniORB 4");
        for p in EnvProfile::ALL {
            assert_eq!(p.slug().parse::<EnvProfile>().unwrap(), p);
            assert_eq!(p.label().parse::<EnvProfile>().unwrap(), p);
        }
        assert!("corba".parse::<EnvProfile>().is_err());
    }

    #[test]
    fn service_knobs_scale_up_with_asynchrony() {
        let sync = EnvProfile::SyncMpi.service_knobs();
        let grid = EnvProfile::AsyncPm2.service_knobs();
        let smp = EnvProfile::LocalThreads.service_knobs();
        assert!(sync.max_in_flight < grid.max_in_flight);
        assert!(grid.max_in_flight < smp.max_in_flight);
        assert!(sync.tenant_queue_depth < smp.tenant_queue_depth);
        for p in EnvProfile::ALL {
            let k = p.service_knobs();
            assert!(k.workers > 0 && k.drr_quantum > 0, "{p}: degenerate knobs");
            assert!(
                k.tenant_queue_depth <= k.max_in_flight,
                "{p}: one tenant's queue cannot exceed the global bound"
            );
        }
    }

    #[test]
    fn trace_knobs_scale_up_with_asynchrony() {
        let sync = EnvProfile::SyncMpi.trace_knobs();
        let grid = EnvProfile::AsyncMpiMad.trace_knobs();
        let smp = EnvProfile::LocalThreads.trace_knobs();
        assert!(sync.ring_capacity < grid.ring_capacity);
        assert!(grid.ring_capacity < smp.ring_capacity);
        for p in EnvProfile::ALL {
            let k = p.trace_knobs();
            assert!(
                k.ring_capacity.is_power_of_two(),
                "{p}: ring capacities are powers of two by convention"
            );
        }
    }

    #[test]
    fn profiles_round_trip_through_json() {
        for p in EnvProfile::ALL {
            let text = serde_json::to_string(&p).unwrap();
            let back: EnvProfile = serde_json::from_str(&text).unwrap();
            assert_eq!(back, p);
        }
    }
}
