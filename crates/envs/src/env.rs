//! The [`Environment`] trait and its supporting types.
//!
//! An environment model answers three questions the simulated runtime asks
//! when it executes an AIAC algorithm "implemented with" that middleware:
//!
//! 1. *What does a message cost?* — CPU time spent packing/marshalling on the
//!    sender, CPU time spent dispatching/unpacking on the receiver, protocol
//!    bytes added on the wire, and any extra dispatch latency
//!    ([`MessageCost`]).
//! 2. *How are communications threaded?* — how many sending threads the
//!    implementation uses and whether receptions are handled by dedicated
//!    threads or by threads created on demand
//!    ([`crate::threads::ThreadConfig`], Table 4 of the paper).
//! 3. *How is it deployed?* — connection-graph requirements, data-conversion
//!    support and run-time services ([`crate::deploy::DeploymentProfile`],
//!    Section 5.3).

use crate::deploy::DeploymentProfile;
use crate::threads::{ProblemKind, ThreadConfig};
use aiac_netsim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier of one of the modelled programming environments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnvKind {
    /// Classical single-threaded MPI, used for the synchronous (SISC)
    /// baseline of the paper.
    MpiSync,
    /// PM2 (Marcel threads + Madeleine communications, RPC style).
    Pm2,
    /// MPICH/Madeleine — thread-safe MPI on top of Marcel.
    MpiMadeleine,
    /// OmniORB 4 — a CORBA object request broker.
    OmniOrb,
}

impl EnvKind {
    /// All environments, in the order the paper's tables list them.
    pub const ALL: [EnvKind; 4] = [
        EnvKind::MpiSync,
        EnvKind::Pm2,
        EnvKind::MpiMadeleine,
        EnvKind::OmniOrb,
    ];

    /// The three environments used for the asynchronous (AIAC) versions.
    pub const ASYNC: [EnvKind; 3] = [EnvKind::Pm2, EnvKind::MpiMadeleine, EnvKind::OmniOrb];

    /// Short display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            EnvKind::MpiSync => "sync MPI",
            EnvKind::Pm2 => "async PM2",
            EnvKind::MpiMadeleine => "async MPI/Mad",
            EnvKind::OmniOrb => "async OmniORB 4",
        }
    }

    /// Builds the boxed environment model for this kind.
    pub fn build(self) -> Box<dyn Environment> {
        match self {
            EnvKind::MpiSync => Box::new(crate::mpi_sync::MpiSync::new()),
            EnvKind::Pm2 => Box::new(crate::pm2::Pm2::new()),
            EnvKind::MpiMadeleine => Box::new(crate::mpi_mad::MpiMadeleine::new()),
            EnvKind::OmniOrb => Box::new(crate::omniorb::OmniOrb::new()),
        }
    }
}

impl std::fmt::Display for EnvKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The conceptual communication style of an environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommStyle {
    /// Explicit message passing (send/receive pairs localised in the code).
    ExplicitMessage,
    /// Remote procedure call with explicit data packing (PM2).
    RemoteProcedureCall,
    /// Object-oriented remote invocation (CORBA).
    ObjectInvocation,
}

/// The cost model of one message exchanged through an environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageCost {
    /// CPU time the *sender* spends packing / marshalling the message,
    /// expressed in seconds on the reference machine.
    pub sender_cpu: SimTime,
    /// CPU time the *receiver* spends dispatching / unpacking the message,
    /// in reference-machine seconds.
    pub receiver_cpu: SimTime,
    /// Protocol framing added to the payload on the wire (headers,
    /// marshalling expansion), in bytes.
    pub protocol_bytes: u64,
    /// Extra one-way latency introduced by the environment's dispatch path
    /// (RPC handshake, ORB request routing, thread wake-up).
    pub dispatch_latency: SimTime,
}

impl MessageCost {
    /// A zero-cost message, useful as an identity element in tests.
    pub fn free() -> Self {
        Self {
            sender_cpu: SimTime::ZERO,
            receiver_cpu: SimTime::ZERO,
            protocol_bytes: 0,
            dispatch_latency: SimTime::ZERO,
        }
    }
}

/// A model of a parallel programming environment.
pub trait Environment: Send + Sync {
    /// Which environment this is.
    fn kind(&self) -> EnvKind;

    /// Human-readable name (e.g. `"MPICH/Madeleine"`).
    fn name(&self) -> &str;

    /// The conceptual communication style.
    fn comm_style(&self) -> CommStyle;

    /// Whether the environment provides the multi-threading needed to run
    /// AIAC algorithms efficiently (the paper's key requirement from
    /// Section 2). The mono-threaded MPI baseline returns `false`.
    fn supports_async(&self) -> bool;

    /// The cost of one message carrying `payload_bytes` of application data.
    fn message_cost(&self, payload_bytes: u64) -> MessageCost;

    /// The thread configuration the paper's implementation of `problem` used
    /// with this environment on `num_procs` processors (Table 4).
    fn thread_config(&self, problem: ProblemKind, num_procs: usize) -> ThreadConfig;

    /// Deployment characteristics (Section 5.3).
    fn deployment(&self) -> DeploymentProfile;

    /// Ease-of-programming score on a 1–5 scale as discussed in Section 5.2
    /// (5 = easiest). Subjective in the paper, encoded here so the harness
    /// can print the qualitative comparison alongside the timings.
    fn ease_of_programming(&self) -> u8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build_consistent_models() {
        for kind in EnvKind::ALL {
            let env = kind.build();
            assert_eq!(env.kind(), kind);
            assert!(!env.name().is_empty());
            let score = env.ease_of_programming();
            assert!((1..=5).contains(&score));
        }
    }

    #[test]
    fn async_environments_support_async() {
        for kind in EnvKind::ASYNC {
            assert!(kind.build().supports_async(), "{kind} must support AIAC");
        }
        assert!(!EnvKind::MpiSync.build().supports_async());
    }

    #[test]
    fn labels_match_paper_wording() {
        assert_eq!(EnvKind::MpiSync.label(), "sync MPI");
        assert_eq!(EnvKind::OmniOrb.label(), "async OmniORB 4");
        assert_eq!(format!("{}", EnvKind::Pm2), "async PM2");
    }

    #[test]
    fn message_costs_grow_with_payload() {
        for kind in EnvKind::ALL {
            let env = kind.build();
            let small = env.message_cost(1_000);
            let large = env.message_cost(1_000_000);
            assert!(
                large.sender_cpu >= small.sender_cpu,
                "{kind}: sender cost must not shrink with payload"
            );
            assert!(large.receiver_cpu >= small.receiver_cpu);
        }
    }

    #[test]
    fn free_cost_is_all_zero() {
        let c = MessageCost::free();
        assert_eq!(c.sender_cpu, SimTime::ZERO);
        assert_eq!(c.receiver_cpu, SimTime::ZERO);
        assert_eq!(c.protocol_bytes, 0);
        assert_eq!(c.dispatch_latency, SimTime::ZERO);
    }

    #[test]
    fn orb_marshalling_is_heavier_than_mpi() {
        let mpi = EnvKind::MpiMadeleine.build().message_cost(100_000);
        let orb = EnvKind::OmniOrb.build().message_cost(100_000);
        assert!(orb.sender_cpu > mpi.sender_cpu);
        assert!(orb.protocol_bytes > mpi.protocol_bytes);
    }
}
