//! The classical single-threaded MPI model (the SISC baseline).
//!
//! Section 2 of the paper explains why plain MPI was abandoned for AIAC
//! implementations: message receipts must be explicitly localised in the
//! program sequence, so asynchronous receptions "at any time" are awkward and
//! inefficient. In this workspace the model is therefore used for the
//! *synchronous* baseline rows of Tables 2 and 3 and the `sync MPI` curve of
//! Figure 3: low per-message overhead (it is a thin layer over TCP), but no
//! multi-threading, which forces the runtime into synchronous iterations with
//! a global exchange/barrier at the end of every iteration.

use crate::deploy::{ConnectionGraph, DeploymentProfile};
use crate::env::{CommStyle, EnvKind, Environment, MessageCost};
use crate::threads::{ProblemKind, ThreadConfig};
use aiac_netsim::time::SimTime;

/// Model of a classical mono-threaded MPI implementation.
#[derive(Debug, Clone, Default)]
pub struct MpiSync {
    _private: (),
}

impl MpiSync {
    /// Creates the model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Environment for MpiSync {
    fn kind(&self) -> EnvKind {
        EnvKind::MpiSync
    }

    fn name(&self) -> &str {
        "MPI (single-threaded, synchronous baseline)"
    }

    fn comm_style(&self) -> CommStyle {
        CommStyle::ExplicitMessage
    }

    fn supports_async(&self) -> bool {
        false
    }

    fn message_cost(&self, payload_bytes: u64) -> MessageCost {
        MessageCost {
            // A thin copy in/out of MPI buffers.
            sender_cpu: SimTime::from_micros(20.0 + payload_bytes as f64 * 0.3e-3),
            receiver_cpu: SimTime::from_micros(20.0 + payload_bytes as f64 * 0.3e-3),
            protocol_bytes: 64,
            dispatch_latency: SimTime::from_micros(5.0),
        }
    }

    fn thread_config(&self, _problem: ProblemKind, _num_procs: usize) -> ThreadConfig {
        // Mono-threaded: the single program thread both sends and receives.
        ThreadConfig::dedicated(1, 1)
    }

    fn deployment(&self) -> DeploymentProfile {
        DeploymentProfile {
            connection_graph: ConnectionGraph::Complete,
            auto_data_conversion: false,
            needs_runtime_service: false,
            multi_protocol: false,
            config_files: 1,
            launch_commands: 1,
            notes: "machine file + mpirun; all machines must reach each other",
        }
    }

    fn ease_of_programming(&self) -> u8 {
        // Easy for synchronous algorithms, but the paper stresses it is not
        // convenient for AIACs.
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_the_synchronous_baseline() {
        let env = MpiSync::new();
        assert_eq!(env.kind(), EnvKind::MpiSync);
        assert!(!env.supports_async());
        assert_eq!(env.comm_style(), CommStyle::ExplicitMessage);
    }

    #[test]
    fn single_thread_for_everything() {
        let env = MpiSync::new();
        for problem in [ProblemKind::SparseLinear, ProblemKind::NonLinearChemical] {
            let cfg = env.thread_config(problem, 16);
            assert_eq!(cfg.sending_threads, 1);
            assert_eq!(cfg.receive.concurrency(), 1);
        }
    }

    #[test]
    fn message_cost_has_the_lowest_protocol_overhead() {
        let env = MpiSync::new();
        let c = env.message_cost(10_000);
        assert_eq!(c.protocol_bytes, 64);
        assert!(c.sender_cpu < SimTime::from_millis(1.0));
    }
}
