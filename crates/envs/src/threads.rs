//! Thread configurations (Table 4 of the paper).
//!
//! The paper could not use the exact same threading scheme in every
//! environment ("we have been confronted with some thread management problems
//! in the PM2 and MPI/Mad environments"), so Table 4 records, per environment
//! and per problem, how many sending threads were used and how receptions
//! were handled. Those configurations are what [`ThreadConfig`] encodes; the
//! simulated runtime uses them to decide which per-message CPU costs are
//! serialised on a processor and which overlap.

use aiac_netsim::time::SimTime;
use serde::{Deserialize, Serialize};

/// The two benchmark problems, which use different thread configurations in
/// Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProblemKind {
    /// The banded sparse linear system (all-to-all dependency communications).
    SparseLinear,
    /// The non-linear advection–diffusion chemical problem (neighbour-only
    /// communications).
    NonLinearChemical,
}

/// How message receptions are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReceiveDiscipline {
    /// A fixed pool of dedicated receiving threads; concurrent arrivals beyond
    /// the pool size are dispatched one after the other.
    Dedicated(usize),
    /// A receiving thread is created on demand for every incoming message
    /// (the OmniORB and PM2 scheme); arrivals are handled concurrently at the
    /// price of a per-message thread-creation cost.
    OnDemand {
        /// CPU cost of creating/waking the handler thread, in
        /// reference-machine seconds.
        spawn_cost: SimTime,
    },
}

impl ReceiveDiscipline {
    /// True for the on-demand variant.
    pub fn is_on_demand(&self) -> bool {
        matches!(self, ReceiveDiscipline::OnDemand { .. })
    }

    /// Number of receptions that can make progress concurrently
    /// (`usize::MAX` for on-demand threads).
    pub fn concurrency(&self) -> usize {
        match self {
            ReceiveDiscipline::Dedicated(n) => *n,
            ReceiveDiscipline::OnDemand { .. } => usize::MAX,
        }
    }
}

/// The thread configuration of one environment for one problem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadConfig {
    /// Number of threads available to perform sends; packing costs of
    /// messages in excess of this number are serialised.
    pub sending_threads: usize,
    /// How receptions are handled.
    pub receive: ReceiveDiscipline,
}

impl ThreadConfig {
    /// Builds a configuration with a dedicated receiver pool.
    pub fn dedicated(sending_threads: usize, receiving_threads: usize) -> Self {
        assert!(sending_threads > 0, "need at least one sending thread");
        assert!(receiving_threads > 0, "need at least one receiving thread");
        Self {
            sending_threads,
            receive: ReceiveDiscipline::Dedicated(receiving_threads),
        }
    }

    /// Builds a configuration with receiving threads created on demand.
    pub fn on_demand(sending_threads: usize, spawn_cost: SimTime) -> Self {
        assert!(sending_threads > 0, "need at least one sending thread");
        Self {
            sending_threads,
            receive: ReceiveDiscipline::OnDemand { spawn_cost },
        }
    }

    /// Time at which the packing of the `k`-th concurrent outgoing message
    /// (0-based) can *start*, given that packing one message costs
    /// `pack_cost` CPU seconds and only `sending_threads` packings can run
    /// concurrently.
    ///
    /// This is the quantity the simulated runtime adds to a send initiated
    /// while `k` other sends are already in flight on the same processor.
    pub fn send_queue_delay(&self, k: usize, pack_cost: SimTime) -> SimTime {
        let rounds = k / self.sending_threads;
        pack_cost * rounds as f64
    }

    /// Extra receiver-side delay for the `k`-th message (0-based) arriving in
    /// the same dispatch window, given a per-message handling cost.
    ///
    /// Dedicated pools serialise arrivals beyond the pool size; on-demand
    /// threads handle all arrivals concurrently but pay the spawn cost.
    pub fn receive_queue_delay(&self, k: usize, handle_cost: SimTime) -> SimTime {
        match self.receive {
            ReceiveDiscipline::Dedicated(pool) => {
                let rounds = k / pool.max(1);
                handle_cost * rounds as f64
            }
            ReceiveDiscipline::OnDemand { spawn_cost } => spawn_cost,
        }
    }

    /// A human-readable description matching the wording of Table 4.
    pub fn describe(&self) -> String {
        let send = match self.sending_threads {
            1 => "one sending thread".to_string(),
            2 => "two sending threads".to_string(),
            n => format!("{n} sending threads"),
        };
        let recv = match self.receive {
            ReceiveDiscipline::Dedicated(1) => "one receiving thread".to_string(),
            ReceiveDiscipline::Dedicated(2) => "two receiving threads".to_string(),
            ReceiveDiscipline::Dedicated(n) => format!("{n} receiving threads"),
            ReceiveDiscipline::OnDemand { .. } => "receiving threads created on demand".to_string(),
        };
        format!("{send}, {recv}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_config_reports_pool_size() {
        let c = ThreadConfig::dedicated(1, 2);
        assert_eq!(c.receive.concurrency(), 2);
        assert!(!c.receive.is_on_demand());
    }

    #[test]
    fn on_demand_config_has_unbounded_concurrency() {
        let c = ThreadConfig::on_demand(2, SimTime::from_micros(50.0));
        assert!(c.receive.is_on_demand());
        assert_eq!(c.receive.concurrency(), usize::MAX);
    }

    #[test]
    fn send_queue_delay_serialises_beyond_thread_count() {
        let c = ThreadConfig::dedicated(2, 1);
        let pack = SimTime::from_millis(1.0);
        assert_eq!(c.send_queue_delay(0, pack), SimTime::ZERO);
        assert_eq!(c.send_queue_delay(1, pack), SimTime::ZERO);
        assert_eq!(c.send_queue_delay(2, pack), pack);
        assert_eq!(c.send_queue_delay(5, pack), pack * 2.0);
    }

    #[test]
    fn single_sender_serialises_everything() {
        let c = ThreadConfig::dedicated(1, 1);
        let pack = SimTime::from_millis(2.0);
        assert_eq!(c.send_queue_delay(3, pack), pack * 3.0);
    }

    #[test]
    fn dedicated_receive_queues_but_on_demand_does_not() {
        let handle = SimTime::from_millis(1.0);
        let dedicated = ThreadConfig::dedicated(1, 1);
        assert_eq!(dedicated.receive_queue_delay(0, handle), SimTime::ZERO);
        assert_eq!(dedicated.receive_queue_delay(2, handle), handle * 2.0);

        let spawn = SimTime::from_micros(80.0);
        let on_demand = ThreadConfig::on_demand(1, spawn);
        assert_eq!(on_demand.receive_queue_delay(0, handle), spawn);
        assert_eq!(on_demand.receive_queue_delay(7, handle), spawn);
    }

    #[test]
    fn describe_matches_table4_wording() {
        assert_eq!(
            ThreadConfig::dedicated(1, 1).describe(),
            "one sending thread, one receiving thread"
        );
        assert_eq!(
            ThreadConfig::on_demand(2, SimTime::ZERO).describe(),
            "two sending threads, receiving threads created on demand"
        );
        assert_eq!(
            ThreadConfig::on_demand(8, SimTime::ZERO).describe(),
            "8 sending threads, receiving threads created on demand"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sending thread")]
    fn zero_sending_threads_rejected() {
        ThreadConfig::dedicated(0, 1);
    }
}
