//! Deployment characteristics (Section 5.3 of the paper).
//!
//! Besides raw performance, the paper compares how easily each environment is
//! deployed over a multi-site grid: whether every machine must see every
//! other one (complete connection graph), whether heterogeneous data
//! representations are converted automatically, whether a run-time service
//! (the CORBA naming service) must be operated, and how many configuration
//! files / launch commands a run takes. [`DeploymentProfile`] captures those
//! facts so the harness can print the qualitative comparison next to the
//! timings, and so tests can assert that the models agree with the paper's
//! conclusions (OmniORB easiest to deploy, PM2 the most restrictive).

use serde::{Deserialize, Serialize};

/// Connection-graph requirement of an environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionGraph {
    /// Every processor must be able to open a connection to every other one.
    Complete,
    /// An incomplete graph is tolerated (e.g. client/server relaying through
    /// reachable nodes), which helps with firewalls between sites.
    IncompleteAllowed,
}

/// Deployment profile of an environment.
///
/// Serialize-only: the `notes` field borrows static text, so this type is
/// reported in JSON output but never decoded back.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeploymentProfile {
    /// Connection-graph requirement.
    pub connection_graph: ConnectionGraph,
    /// Whether data representation differences between heterogeneous machines
    /// are converted automatically by the environment.
    pub auto_data_conversion: bool,
    /// Whether a separate run-time service (e.g. a naming service) must be
    /// running somewhere on the grid.
    pub needs_runtime_service: bool,
    /// Whether several communication protocols can be mixed in one
    /// application (the Madeleine 3 feature).
    pub multi_protocol: bool,
    /// Number of configuration files needed for a run.
    pub config_files: u8,
    /// Number of commands needed to launch a run.
    pub launch_commands: u8,
    /// Free-text summary, used by the harness when printing the comparison.
    pub notes: &'static str,
}

impl DeploymentProfile {
    /// A coarse ease-of-deployment score on a 1–5 scale (5 = easiest),
    /// derived from the recorded facts: incomplete graphs and automatic data
    /// conversion help, mandatory run-time services and extra configuration
    /// files hurt.
    pub fn ease_score(&self) -> u8 {
        let mut score: i32 = 3;
        if self.connection_graph == ConnectionGraph::IncompleteAllowed {
            score += 1;
        }
        if self.auto_data_conversion {
            score += 1;
        }
        if self.needs_runtime_service {
            score -= 1;
        }
        score -= i32::from(self.config_files.saturating_sub(1)) / 2;
        score.clamp(1, 5) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvKind;

    #[test]
    fn ease_score_stays_in_range() {
        for kind in EnvKind::ALL {
            let profile = kind.build().deployment();
            let score = profile.ease_score();
            assert!((1..=5).contains(&score), "{kind}: score {score}");
        }
    }

    #[test]
    fn omniorb_is_easiest_to_deploy() {
        // Section 5.3: "the advantage clearly goes to OmniORB 4".
        let orb = EnvKind::OmniOrb.build().deployment().ease_score();
        let pm2 = EnvKind::Pm2.build().deployment().ease_score();
        let mpi_mad = EnvKind::MpiMadeleine.build().deployment().ease_score();
        assert!(orb > pm2);
        assert!(orb >= mpi_mad);
    }

    #[test]
    fn pm2_requires_complete_graph_without_data_conversion() {
        let p = EnvKind::Pm2.build().deployment();
        assert_eq!(p.connection_graph, ConnectionGraph::Complete);
        assert!(!p.auto_data_conversion);
        assert!(!p.needs_runtime_service);
    }

    #[test]
    fn omniorb_tolerates_incomplete_graphs_but_needs_naming_service() {
        let p = EnvKind::OmniOrb.build().deployment();
        assert_eq!(p.connection_graph, ConnectionGraph::IncompleteAllowed);
        assert!(p.auto_data_conversion);
        assert!(p.needs_runtime_service);
    }

    #[test]
    fn mpi_mad_is_multi_protocol() {
        let p = EnvKind::MpiMadeleine.build().deployment();
        assert!(p.multi_protocol);
        assert_eq!(p.config_files, 2);
    }

    #[test]
    fn scoring_rewards_flexibility_and_penalises_services() {
        let easy = DeploymentProfile {
            connection_graph: ConnectionGraph::IncompleteAllowed,
            auto_data_conversion: true,
            needs_runtime_service: false,
            multi_protocol: false,
            config_files: 1,
            launch_commands: 1,
            notes: "",
        };
        let hard = DeploymentProfile {
            connection_graph: ConnectionGraph::Complete,
            auto_data_conversion: false,
            needs_runtime_service: true,
            multi_protocol: false,
            config_files: 3,
            launch_commands: 3,
            notes: "",
        };
        assert!(easy.ease_score() > hard.ease_score());
    }
}
