//! Criterion micro-benchmark: the restarted GMRES solver used as the inner
//! sequential solver of the multi-splitting Newton method.

use aiac_linalg::banded::BandedSpec;
use aiac_linalg::gmres::{Gmres, GmresParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_gmres(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmres");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        let spec = BandedSpec::paper(n, 3);
        let a = spec.generate();
        let (_, b) = spec.generate_rhs(&a);
        for &restart in &[10usize, 30] {
            let gmres = Gmres::new(GmresParams {
                restart,
                tol: 1e-8,
                abs_tol: 1e-12,
                max_restarts: 500,
            });
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("restart{restart}")),
                &restart,
                |bench, _| {
                    bench.iter(|| {
                        let (x, outcome) = gmres.solve_from_zero(black_box(&a), black_box(&b));
                        assert!(outcome.converged);
                        black_box(x)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gmres);
criterion_main!(benches);
