//! Criterion micro-benchmark: per-iteration overhead of the runtime layers
//! (block state updates, convergence detection, dependency graph
//! construction) independently of any numerical kernel cost.

use aiac_core::block::BlockState;
use aiac_core::convergence::{GlobalDetector, LocalConvergence};
use aiac_core::depgraph::DependencyGraph;
use aiac_core::kernel::{BlockUpdate, DependencyView, IterativeKernel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A trivial kernel with a configurable all-to-all dependency pattern, so the
/// benchmark isolates the bookkeeping cost of the runtime structures.
struct NoopKernel {
    blocks: usize,
    len: usize,
}

impl IterativeKernel for NoopKernel {
    fn num_blocks(&self) -> usize {
        self.blocks
    }
    fn block_len(&self, _b: usize) -> usize {
        self.len
    }
    fn initial_block(&self, _b: usize) -> Vec<f64> {
        vec![1.0; self.len]
    }
    fn dependencies(&self, b: usize) -> Vec<usize> {
        (0..self.blocks).filter(|&o| o != b).collect()
    }
    fn update_block(&self, _b: usize, local: &[f64], _o: &DependencyView) -> BlockUpdate {
        BlockUpdate {
            values: local.to_vec(),
            residual: 0.0,
        }
    }
}

fn bench_runtime_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_overhead");
    group.sample_size(30);

    for &blocks in &[8usize, 32] {
        let kernel = NoopKernel { blocks, len: 256 };
        group.bench_with_input(
            BenchmarkId::new("dependency_graph", blocks),
            &blocks,
            |b, _| b.iter(|| black_box(DependencyGraph::from_kernel(&kernel))),
        );
        group.bench_with_input(
            BenchmarkId::new("block_iterate_and_incorporate", blocks),
            &blocks,
            |b, _| {
                let mut state = BlockState::new(&kernel, 0);
                let payload = vec![1.0; 256];
                b.iter(|| {
                    state.incorporate(1, state.iteration, payload.clone());
                    black_box(state.iterate(&kernel))
                });
            },
        );
    }

    group.bench_function("convergence_detector_1000_reports", |b| {
        b.iter(|| {
            let mut det = GlobalDetector::new(64);
            let mut lc = LocalConvergence::new(1e-6, 3);
            for i in 0..1000u64 {
                let r = if i % 7 == 0 { 1e-3 } else { 1e-9 };
                if lc.observe(r) {
                    det.report((i % 64) as usize, lc.is_converged());
                }
            }
            black_box(det.converged_blocks())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_runtime_overhead);
criterion_main!(benches);
