//! Criterion micro-benchmark: sparse matrix-vector product on the paper's two
//! sparsity patterns (contiguous band versus 30 scattered sub-diagonals).

use aiac_linalg::banded::{BandedSpec, ScatteredDiagonalsSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group.sample_size(20);
    for &n in &[2_000usize, 10_000, 40_000] {
        let banded = BandedSpec::paper(n, 1).generate();
        let scattered = ScatteredDiagonalsSpec::paper(n, 1).generate();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("contiguous_band", n), &n, |b, _| {
            b.iter(|| banded.spmv(black_box(&x), black_box(&mut y)));
        });
        group.bench_with_input(BenchmarkId::new("scattered_diagonals", n), &n, |b, _| {
            b.iter(|| scattered.spmv(black_box(&x), black_box(&mut y)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
