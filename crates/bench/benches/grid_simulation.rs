//! Criterion benchmark: throughput of the discrete-event grid simulation
//! itself (how much host wall-clock time one simulated AIAC run costs), plus
//! the network transfer model in isolation.

use aiac_core::config::RunConfig;
use aiac_core::runtime::simulated::SimulatedRuntime;
use aiac_envs::env::EnvKind;
use aiac_envs::threads::ProblemKind;
use aiac_netsim::host::HostId;
use aiac_netsim::network::Network;
use aiac_netsim::time::SimTime;
use aiac_netsim::topology::GridTopology;
use aiac_solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_network_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_simulation");
    group.sample_size(20);

    group.bench_function("network_10k_transfers", |b| {
        let topo = GridTopology::ethernet_adsl_4_sites(16);
        b.iter(|| {
            let mut net = Network::new(topo.clone());
            let mut last = SimTime::ZERO;
            for i in 0..10_000u64 {
                let src = HostId((i % 16) as usize);
                let dst = HostId(((i + 3) % 16) as usize);
                last = net.transfer(src, dst, 4_096, 128, last);
            }
            black_box(last)
        });
    });

    group.bench_function("simulated_aiac_run_8_procs", |b| {
        let problem = SparseLinearProblem::new(SparseLinearParams::paper_scaled(1_600, 8));
        let topo = GridTopology::ethernet_3_sites(8);
        let config = RunConfig::asynchronous(1e-6).with_streak(3);
        b.iter(|| {
            let runtime =
                SimulatedRuntime::new(topo.clone(), EnvKind::Pm2, ProblemKind::SparseLinear);
            black_box(runtime.run(&problem, &config).report.elapsed_secs)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_network_model);
criterion_main!(benches);
