//! Criterion benchmark: synchronous versus asynchronous execution on the
//! *real* threaded runtime (wall-clock time on the build machine).
//!
//! This is the multicore analogue of the paper's grid experiments: the same
//! sparse linear problem is solved with the SISC barrier-per-iteration scheme
//! and with the AIAC free-running scheme. The asynchronous version is
//! expected to win whenever the per-block work is unbalanced or the machine
//! is loaded, and at worst to tie.

use aiac_core::config::RunConfig;
use aiac_core::runtime::threaded::ThreadedRuntime;
use aiac_solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_threaded_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_sync_vs_async");
    group.sample_size(10);
    let problem = SparseLinearProblem::new(SparseLinearParams::paper_scaled(2_000, 4));
    let runtime = ThreadedRuntime::new();

    group.bench_function("sisc_sync", |b| {
        let config = RunConfig::synchronous(1e-8);
        b.iter(|| black_box(runtime.run(&problem, &config)));
    });
    group.bench_function("aiac_async", |b| {
        let config = RunConfig::asynchronous(1e-8).with_streak(3);
        b.iter(|| black_box(runtime.run(&problem, &config)));
    });
    group.finish();
}

criterion_group!(benches, bench_threaded_modes);
criterion_main!(benches);
