//! End-to-end tests of the committed baseline and the `bench_gate` /
//! `bench_all` command-line contracts: the committed `BENCH_baseline.json`
//! must stay schema-valid and cover the whole suite, an identical candidate
//! must pass the gate binary (exit 0), a synthetic 2x slowdown must fail it
//! (exit 1), and usage errors must exit 2 uniformly across the bench
//! binaries.

use aiac_bench::harness::BenchRecord;
use aiac_envs::profile::EnvProfile;
use std::path::PathBuf;
use std::process::Command;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json")
}

fn load_baseline() -> BenchRecord {
    let text = std::fs::read_to_string(baseline_path())
        .expect("BENCH_baseline.json is committed at the repo root");
    BenchRecord::from_json(&text).expect("the committed baseline is schema-valid")
}

/// A scratch file that cleans up after itself.
struct TempJson(PathBuf);

impl TempJson {
    fn write(name: &str, contents: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("aiac-gate-{}-{name}.json", std::process::id()));
        std::fs::write(&path, contents).expect("temp JSON writes");
        TempJson(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp paths are UTF-8")
    }
}

impl Drop for TempJson {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn committed_baseline_covers_all_experiments_and_profiles() {
    let baseline = load_baseline();
    assert_eq!(baseline.suite, "smoke");
    assert!(baseline.all_checks_passed(), "the baseline must be healthy");

    let names: Vec<&str> = baseline
        .experiments
        .iter()
        .map(|e| e.experiment.as_str())
        .collect();
    assert_eq!(
        names,
        ["table1", "table2", "scale_pool", "oversub", "service_load"],
        "the five standing experiments must all be present"
    );

    let envs: Vec<String> = baseline
        .experiments
        .iter()
        .flat_map(|e| e.cells.iter().map(|c| c.env.clone()))
        .collect();
    for profile in EnvProfile::ALL {
        assert!(
            envs.iter().any(|e| e == profile.slug()),
            "baseline must cover the {} profile",
            profile.slug()
        );
    }

    assert!(
        baseline.gateable_metrics().len() >= 50,
        "the gate needs a substantial deterministic surface, found {}",
        baseline.gateable_metrics().len()
    );
}

#[test]
fn gate_binary_passes_identical_candidate_and_fails_a_2x_slowdown() {
    let gate = env!("CARGO_BIN_EXE_bench_gate");
    let baseline_text = std::fs::read_to_string(baseline_path()).expect("baseline is committed");
    let baseline = TempJson::write("baseline", &baseline_text);

    // Identical candidate: within tolerance by definition.
    let status = Command::new(gate)
        .args([baseline.path(), baseline.path()])
        .output()
        .expect("bench_gate runs");
    assert!(
        status.status.success(),
        "identical records must pass: {}",
        String::from_utf8_lossy(&status.stderr)
    );

    // Synthetic regression: double every simulated time.
    let mut slow = load_baseline();
    for exp in slow.experiments.iter_mut() {
        for cell in exp.cells.iter_mut() {
            for metric in cell.metrics.iter_mut() {
                if metric.name == "sim_time_secs" {
                    metric.value *= 2.0;
                }
            }
        }
    }
    let candidate = TempJson::write("slowdown", &slow.to_json_pretty());
    let output = Command::new(gate)
        .args([baseline.path(), candidate.path()])
        .output()
        .expect("bench_gate runs");
    assert_eq!(
        output.status.code(),
        Some(1),
        "a 2x slowdown must exit 1: {}",
        String::from_utf8_lossy(&output.stdout)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");

    // A regression smaller than the tolerance passes when the tolerance
    // is widened accordingly.
    let status = Command::new(gate)
        .args([baseline.path(), candidate.path(), "--rel-tolerance", "1.5"])
        .output()
        .expect("bench_gate runs");
    assert!(
        status.status.success(),
        "a 100% regression is within a 150% tolerance"
    );
}

#[test]
fn gate_binary_exits_2_on_usage_and_io_errors() {
    let gate = env!("CARGO_BIN_EXE_bench_gate");
    for args in [
        vec![],
        vec!["/nonexistent/baseline.json".to_string()],
        vec!["--bogus-flag".to_string()],
    ] {
        let output = Command::new(gate)
            .args(&args)
            .output()
            .expect("bench_gate runs");
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
}

#[test]
fn gate_binary_filters_to_a_single_experiment() {
    let gate = env!("CARGO_BIN_EXE_bench_gate");
    let baseline_text = std::fs::read_to_string(baseline_path()).expect("baseline is committed");
    let baseline = TempJson::write("filter-baseline", &baseline_text);

    // An identical candidate passes when the comparison is narrowed to the
    // service experiment alone.
    let output = Command::new(gate)
        .args([
            "--experiment",
            "service_load",
            baseline.path(),
            baseline.path(),
        ])
        .output()
        .expect("bench_gate runs");
    assert!(
        output.status.success(),
        "filtered identical records must pass: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // A name absent from the baseline is a usage error, not a silent pass.
    let output = Command::new(gate)
        .args([
            "--experiment",
            "no-such-experiment",
            baseline.path(),
            baseline.path(),
        ])
        .output()
        .expect("bench_gate runs");
    assert_eq!(
        output.status.code(),
        Some(2),
        "an unknown experiment filter must exit 2: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn bench_binaries_exit_2_uniformly_on_malformed_arguments() {
    for (bin, args) in [
        (env!("CARGO_BIN_EXE_bench_all"), vec!["--bogus"]),
        (env!("CARGO_BIN_EXE_bench_all"), vec!["--json"]),
        (env!("CARGO_BIN_EXE_scale_pool"), vec!["not-a-number"]),
        (env!("CARGO_BIN_EXE_scale_pool"), vec!["0"]),
        (env!("CARGO_BIN_EXE_scale_pool"), vec!["1024", "0"]),
        (env!("CARGO_BIN_EXE_scale_pool"), vec!["8", "2", "extra"]),
        (env!("CARGO_BIN_EXE_oversub"), vec!["not-a-number"]),
        (env!("CARGO_BIN_EXE_oversub"), vec!["0"]),
        (env!("CARGO_BIN_EXE_service_load"), vec!["--bogus"]),
        (env!("CARGO_BIN_EXE_service_load"), vec!["--json"]),
    ] {
        let output = Command::new(bin).args(&args).output().expect("binary runs");
        assert_eq!(
            output.status.code(),
            Some(2),
            "{bin} {args:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
}

#[test]
fn oversub_help_prints_usage_and_exits_0() {
    let output = Command::new(env!("CARGO_BIN_EXE_oversub"))
        .arg("--help")
        .output()
        .expect("oversub runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("usage: oversub"), "{stdout}");
    assert!(stdout.contains("placement"), "{stdout}");
}
