//! Shared experiment runners.
//!
//! The table and figure binaries all boil down to two operations: run the
//! sparse linear problem on a simulated platform with one of the environment
//! models, and run the chemical problem the same way. Both are provided here
//! so the binaries stay small and the runs stay comparable (same problem
//! instance, same thresholds, only the environment and mode change — exactly
//! the methodology of Section 5).

use aiac_core::config::RunConfig;
use aiac_core::report::RunReport;
use aiac_core::runtime::simulated::SimulatedRuntime;
use aiac_envs::env::EnvKind;
use aiac_envs::threads::ProblemKind;
use aiac_netsim::topology::GridTopology;
use aiac_solvers::chemical::{ChemicalParams, ChemicalProblem};
use aiac_solvers::sparse_linear::SparseLinearProblem;
use serde::{Deserialize, Serialize};

/// The outcome of one experiment cell (one environment on one platform).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Environment that produced the run.
    pub env: String,
    /// Platform name.
    pub platform: String,
    /// Virtual execution time in seconds.
    pub time_secs: f64,
    /// Whether every (time) step converged.
    pub converged: bool,
    /// Total number of data messages.
    pub data_messages: u64,
    /// Total data payload in bytes.
    pub data_bytes: u64,
    /// Mean number of local iterations per block (per time step for the
    /// chemical problem).
    pub mean_iterations: f64,
}

/// Builds the run configuration an environment uses: the synchronous SISC
/// algorithm for the mono-threaded MPI baseline, the asynchronous AIAC
/// algorithm for the three multi-threaded environments.
pub fn run_config_for(env: EnvKind, epsilon: f64, streak: usize) -> RunConfig {
    match env {
        EnvKind::MpiSync => RunConfig::synchronous(epsilon),
        _ => RunConfig::asynchronous(epsilon).with_streak(streak),
    }
}

/// Runs the sparse linear problem on `topology` with `env` and returns the
/// run report (virtual time in `elapsed_secs`).
pub fn sparse_experiment(
    problem: &SparseLinearProblem,
    topology: &GridTopology,
    env: EnvKind,
    epsilon: f64,
    streak: usize,
) -> RunReport {
    let runtime = SimulatedRuntime::new(topology.clone(), env, ProblemKind::SparseLinear);
    let config = run_config_for(env, epsilon, streak);
    runtime.run(problem, &config).report
}

/// Runs the chemical problem (all its time steps) on `topology` with `env`
/// and returns the aggregated experiment result.
pub fn chemical_experiment(
    params: &ChemicalParams,
    topology: &GridTopology,
    env: EnvKind,
    streak: usize,
) -> ExperimentResult {
    let problem = ChemicalProblem::new(params.clone());
    let config = run_config_for(env, params.epsilon, streak);
    let runtime = SimulatedRuntime::new(topology.clone(), env, ProblemKind::NonLinearChemical);
    let solution = problem.solve_with(|kernel, _| runtime.run(kernel, &config).report);
    ExperimentResult {
        env: env.label().to_string(),
        platform: topology.name().to_string(),
        time_secs: solution.total_elapsed_secs,
        converged: solution.all_converged,
        data_messages: solution.total_data_messages,
        data_bytes: solution.total_data_bytes,
        mean_iterations: solution.mean_inner_iterations(),
    }
}

/// Wraps a sparse run report into an [`ExperimentResult`].
pub fn sparse_result(report: &RunReport, platform: &str) -> ExperimentResult {
    ExperimentResult {
        env: report.backend.clone(),
        platform: platform.to_string(),
        time_secs: report.elapsed_secs,
        converged: report.converged,
        data_messages: report.data_messages,
        data_bytes: report.data_bytes,
        mean_iterations: report.mean_iterations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use aiac_core::config::ExecutionMode;
    use aiac_solvers::sparse_linear::SparseLinearParams;

    fn tiny_sparse() -> SparseLinearProblem {
        SparseLinearProblem::new(SparseLinearParams::paper_scaled(240, 6))
    }

    fn tiny_chemical() -> ChemicalParams {
        // Keep the processor count of the real experiment (the synchronous
        // penalty scales with it) but shrink the grid and the time interval.
        let mut p = ChemicalParams::paper_scaled(12, 12, 12);
        p.t_end = 360.0;
        p
    }

    #[test]
    fn run_config_matches_environment_capabilities() {
        assert_eq!(
            run_config_for(EnvKind::MpiSync, 1e-7, 3).mode,
            ExecutionMode::Synchronous
        );
        for env in EnvKind::ASYNC {
            assert_eq!(
                run_config_for(env, 1e-7, 3).mode,
                ExecutionMode::Asynchronous
            );
        }
    }

    #[test]
    fn sparse_experiment_converges_and_async_beats_sync() {
        let problem = tiny_sparse();
        let topo = GridTopology::ethernet_3_sites(6);
        let scale = ExperimentScale::scaled();
        let sync = sparse_experiment(
            &problem,
            &topo,
            EnvKind::MpiSync,
            scale.epsilon,
            scale.streak,
        );
        assert!(sync.converged);
        for env in EnvKind::ASYNC {
            let run = sparse_experiment(&problem, &topo, env, scale.epsilon, scale.streak);
            assert!(run.converged, "{env} did not converge");
            assert!(
                run.elapsed_secs < sync.elapsed_secs,
                "{env} ({} s) should beat sync MPI ({} s)",
                run.elapsed_secs,
                sync.elapsed_secs
            );
            assert!(problem.error_of(&run.solution) < 1e-4);
        }
    }

    #[test]
    fn chemical_experiment_converges_on_both_grid_platforms() {
        let params = tiny_chemical();
        for topo in [
            GridTopology::ethernet_3_sites(12),
            GridTopology::ethernet_adsl_4_sites(12),
        ] {
            let sync = chemical_experiment(&params, &topo, EnvKind::MpiSync, 3);
            let pm2 = chemical_experiment(&params, &topo, EnvKind::Pm2, 3);
            assert!(sync.converged && pm2.converged, "{}", topo.name());
            assert!(
                pm2.time_secs < sync.time_secs,
                "{}: async {} vs sync {}",
                topo.name(),
                pm2.time_secs,
                sync.time_secs
            );
        }
    }

    #[test]
    fn sparse_result_copies_report_fields() {
        let problem = tiny_sparse();
        let topo = GridTopology::ethernet_3_sites(6);
        let report = sparse_experiment(&problem, &topo, EnvKind::Pm2, 1e-6, 3);
        let result = sparse_result(&report, topo.name());
        assert_eq!(result.env, report.backend);
        assert_eq!(result.platform, "ethernet-3-sites");
        assert_eq!(result.data_messages, report.data_messages);
    }
}
