//! Worker-pool scale experiment: many blocks over few OS threads.
//!
//! Drives a block count far beyond anything the paper's grids used (default
//! 1024) through the threaded executor in both modes:
//!
//! * the synchronous (SISC) path, whose barrier-separated supersteps keep the
//!   old per-iteration exchange semantics and stay bit-comparable to the
//!   sequential sweep;
//! * the asynchronous (AIAC) worker pool, which multiplexes all blocks over a
//!   fixed number of workers and exchanges data through newest-wins
//!   coalescing mailboxes.
//!
//! The run proves two properties the one-thread-per-block executor could not
//! offer: the process needs only `num_workers` OS threads regardless of the
//! block count, and the peak in-flight data storage stays bounded by the
//! dependency-edge count (checked here, and the process exits non-zero if
//! either mode violates it).
//!
//! Usage: `scale_pool [blocks] [workers]` — `blocks` defaults to 1024,
//! `workers` to the machine's available parallelism. Malformed arguments and
//! invalid configurations are *reported* (exit code 2), not panicked on.

use aiac_bench::scale::ScaleRing;
use aiac_core::config::RunConfig;
use aiac_core::depgraph::DependencyGraph;
use aiac_core::report::RunReport;
use aiac_core::runtime::threaded::ThreadedRuntime;

/// Parsed command line: block count and optional explicit worker count.
struct Args {
    blocks: usize,
    workers: Option<usize>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        blocks: 1024,
        workers: None,
    };
    if let Some(raw) = argv.next() {
        args.blocks = raw
            .parse()
            .map_err(|_| format!("blocks must be a positive integer, got {raw:?}"))?;
        if args.blocks == 0 {
            return Err("blocks must be at least 1".to_string());
        }
    }
    if let Some(raw) = argv.next() {
        args.workers = Some(
            raw.parse()
                .map_err(|_| format!("workers must be an integer, got {raw:?}"))?,
        );
    }
    if let Some(extra) = argv.next() {
        return Err(format!("unexpected extra argument {extra:?}"));
    }
    Ok(args)
}

fn describe(label: &str, report: &RunReport, workers: usize, edges: u64) {
    println!(
        "{label}: {:.3} s wall, converged = {}, {} OS workers, \
         mean {:.1} iterations/block, {} data messages ({} coalesced), \
         peak in-flight slots {} / {} edges",
        report.elapsed_secs,
        report.converged,
        workers,
        report.mean_iterations(),
        report.data_messages,
        report.coalesced_messages,
        report.peak_mailbox_occupancy,
        edges,
    );
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("scale_pool: {err}");
            eprintln!("usage: scale_pool [blocks] [workers]");
            std::process::exit(2);
        }
    };

    let kernel = ScaleRing::new(args.blocks);
    let edges = DependencyGraph::from_kernel(&kernel).num_edges() as u64;
    let mut sync_config = RunConfig::synchronous(1e-8);
    let mut async_config = RunConfig::asynchronous(1e-8).with_streak(3);
    if let Some(workers) = args.workers {
        sync_config = sync_config.with_num_workers(workers);
        async_config = async_config.with_num_workers(workers);
    }
    // Report malformed configurations (e.g. `scale_pool 1024 0`) instead of
    // panicking deep inside run().
    for config in [&sync_config, &async_config] {
        if let Err(err) = config.try_validate() {
            eprintln!("scale_pool: invalid configuration: {err}");
            std::process::exit(2);
        }
    }

    println!(
        "scale experiment: {} blocks, {} dependency edges, fixed point {:.6}",
        args.blocks,
        edges,
        kernel.fixed_point()
    );

    let runtime = ThreadedRuntime::new();
    let mut failures = 0;
    for (label, config) in [
        ("sync  (SISC)", &sync_config),
        ("async (AIAC)", &async_config),
    ] {
        let workers = config.effective_num_workers(args.blocks);
        let report = match runtime.try_run(&kernel, config) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("scale_pool: {label} run failed: {err}");
                std::process::exit(1);
            }
        };
        describe(label, &report, workers, edges);
        let max_err = report
            .solution
            .iter()
            .map(|v| (v - kernel.fixed_point()).abs())
            .fold(0.0f64, f64::max);
        if !report.converged || max_err > 1e-5 {
            eprintln!("scale_pool: {label} missed the fixed point (max error {max_err:.3e})");
            failures += 1;
        }
        if report.peak_mailbox_occupancy > edges {
            eprintln!(
                "scale_pool: {label} exceeded the O(edges) bound: {} slots > {} edges",
                report.peak_mailbox_occupancy, edges
            );
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("ok: both modes bounded in-flight data by the edge count");
}
