//! Worker-pool scale experiment: many blocks over few OS threads.
//!
//! A thin wrapper over the harness's `scale_pool` spec
//! ([`aiac_bench::harness::spec::scale_pool_spec`]): the ring contraction
//! driven through the threaded executor three ways — the synchronous (SISC)
//! barrier-separated supersteps, the asynchronous (AIAC) work-stealing
//! worker pool, and the shared-FIFO scheduling baseline the stealing pool
//! replaced. The spec's checks assert the properties the one-thread-per-
//! block executor could not offer: the process needs only `num_workers` OS
//! threads regardless of the block count, peak in-flight data stays bounded
//! by the dependency-edge count, an oversubscribed stealing pool actually
//! steals, and stealing is not slower than the FIFO queue.
//!
//! Usage: `scale_pool [blocks] [workers]` — `blocks` defaults to 1024,
//! `workers` to the machine's available parallelism.
//!
//! Exit codes: 0 = all cells hit the fixed point within bounds,
//! 1 = a check failed, 2 = malformed arguments.

use aiac_bench::harness::run_spec;
use aiac_bench::harness::spec::scale_pool_spec;

/// Parsed command line: block count and optional explicit worker count.
struct Args {
    blocks: usize,
    workers: Option<usize>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        blocks: 1024,
        workers: None,
    };
    if let Some(raw) = argv.next() {
        args.blocks = raw
            .parse()
            .map_err(|_| format!("blocks must be a positive integer, got {raw:?}"))?;
        if args.blocks == 0 {
            return Err("blocks must be at least 1".to_string());
        }
    }
    if let Some(raw) = argv.next() {
        let workers: usize = raw
            .parse()
            .map_err(|_| format!("workers must be an integer, got {raw:?}"))?;
        if workers == 0 {
            return Err("workers must be at least 1".to_string());
        }
        args.workers = Some(workers);
    }
    if let Some(extra) = argv.next() {
        return Err(format!("unexpected extra argument {extra:?}"));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("scale_pool: {err}");
            eprintln!("usage: scale_pool [blocks] [workers]");
            std::process::exit(2);
        }
    };

    let spec = scale_pool_spec(args.blocks, args.workers);
    let record = run_spec(&spec);

    let mut failed = false;
    for cell in &record.cells {
        let metric = |name: &str| cell.metric(name).map(|m| m.value);
        println!(
            "{:<10}: {:.3} s wall, {} OS workers, {} iterations total, \
             {} data messages ({} coalesced), peak in-flight slots {} / {} edges, \
             {} steals ({} failed attempts), {} local pushes, {} queue waits",
            cell.cell,
            metric("wall_median_secs").unwrap_or(f64::NAN),
            metric("workers").unwrap_or(f64::NAN),
            metric("total_iterations").unwrap_or(f64::NAN),
            metric("data_messages").unwrap_or(f64::NAN),
            metric("coalesced_messages").unwrap_or(f64::NAN),
            metric("peak_mailbox_occupancy").unwrap_or(f64::NAN),
            metric("edges").unwrap_or(f64::NAN),
            metric("steals").unwrap_or(f64::NAN),
            metric("failed_steal_attempts").unwrap_or(f64::NAN),
            metric("local_pushes").unwrap_or(f64::NAN),
            metric("queue_wait_events").unwrap_or(f64::NAN),
        );
        for failure in &cell.check_failures {
            eprintln!("scale_pool: {}: {failure}", cell.cell);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("ok: all cells bounded in-flight data and the stealing pool held its checks");
}
