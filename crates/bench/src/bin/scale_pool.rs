//! Worker-pool scale experiment: many blocks over few OS threads.
//!
//! A thin wrapper over the harness's `scale_pool` spec
//! ([`aiac_bench::harness::spec::scale_pool_spec`]): the ring contraction
//! driven through the threaded executor three ways — the synchronous (SISC)
//! barrier-separated supersteps, the asynchronous (AIAC) work-stealing
//! worker pool, and the shared-FIFO scheduling baseline the stealing pool
//! replaced. The spec's checks assert the properties the one-thread-per-
//! block executor could not offer: the process needs only `num_workers` OS
//! threads regardless of the block count, peak in-flight data stays bounded
//! by the dependency-edge count, an oversubscribed stealing pool actually
//! steals, and stealing is not slower than the FIFO queue.
//!
//! Usage: `scale_pool [blocks] [workers] [--trace PATH] [--overhead-gate]` —
//! `blocks` defaults to 1024, `workers` to the machine's available
//! parallelism.
//!
//! * `--trace PATH` — additionally runs the asynchronous stealing cell once
//!   with tracing enabled and writes the per-worker Chrome trace-event JSON
//!   to `PATH` (schema-checked before writing).
//! * `--overhead-gate` — additionally measures the wall-clock cost of
//!   tracing itself: interleaved repeats of the asynchronous cell with
//!   tracing off and on, gated on min-wall on/off ratio ≤ 1.03 (3%) with a
//!   0.05 s absolute slack for sub-noise runs, printed as the
//!   `tracing_overhead` metric.
//!
//! Exit codes: 0 = all cells hit the fixed point within bounds (and the
//! trace exported / the overhead gate passed, when requested), 1 = a check
//! or gate failed, 2 = malformed arguments.

use std::time::Instant;

use aiac_bench::harness::run_spec;
use aiac_bench::harness::spec::{scale_pool_spec, ExperimentSpec, ProblemSpec};
use aiac_bench::scale::ScaleRing;
use aiac_core::config::{RunConfig, StealPolicy};
use aiac_core::runtime::threaded::ThreadedRuntime;
use aiac_obs::{to_chrome_json, validate_chrome_trace, TraceConfig};

/// Largest tolerated traced/untraced min-wall ratio (the ≤3% overhead gate).
const OVERHEAD_GATE_RATIO: f64 = 1.03;

/// Absolute slack for runs so short the ratio is pure scheduling noise
/// (mirrors the harness's not-slower check slack).
const OVERHEAD_GATE_ABS_SLACK_SECS: f64 = 0.05;

/// Interleaved off/on repetitions the overhead gate measures (after one
/// unrecorded warmup pair).
const OVERHEAD_GATE_REPEATS: usize = 5;

const USAGE: &str = "usage: scale_pool [blocks] [workers] [--trace PATH] [--overhead-gate]";

/// Parsed command line: block count, optional explicit worker count and the
/// optional tracing extras.
struct Args {
    blocks: usize,
    workers: Option<usize>,
    trace: Option<String>,
    overhead_gate: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        blocks: 1024,
        workers: None,
        trace: None,
        overhead_gate: false,
    };
    let mut positional = 0;
    while let Some(raw) = argv.next() {
        match raw.as_str() {
            "--trace" => {
                args.trace = Some(argv.next().ok_or("--trace needs a file path")?);
            }
            "--overhead-gate" => args.overhead_gate = true,
            "--help" | "-h" => return Err(String::new()),
            _ if positional == 0 => {
                args.blocks = raw
                    .parse()
                    .map_err(|_| format!("blocks must be a positive integer, got {raw:?}"))?;
                if args.blocks == 0 {
                    return Err("blocks must be at least 1".to_string());
                }
                positional = 1;
            }
            _ if positional == 1 => {
                let workers: usize = raw
                    .parse()
                    .map_err(|_| format!("workers must be an integer, got {raw:?}"))?;
                if workers == 0 {
                    return Err("workers must be at least 1".to_string());
                }
                args.workers = Some(workers);
                positional = 2;
            }
            _ => return Err(format!("unexpected extra argument {raw:?}")),
        }
    }
    Ok(args)
}

/// The asynchronous stealing cell's kernel and configuration, rebuilt from
/// the spec so the extras measure exactly what the record measured.
fn async_cell(spec: &ExperimentSpec) -> (ScaleRing, RunConfig) {
    let ProblemSpec::Ring { blocks, cost_secs } = spec.problem else {
        panic!("scale_pool always runs the ring problem");
    };
    let kernel = ScaleRing::new(blocks).with_cost(cost_secs);
    let mut config = RunConfig::asynchronous(spec.epsilon)
        .with_streak(spec.streak)
        .with_steal_policy(StealPolicy::WorkStealing);
    if let Some(workers) = spec.workers {
        config = config.with_num_workers(workers);
    }
    (kernel, config)
}

/// Runs the asynchronous cell once with tracing on and writes the Chrome
/// trace to `path` (validated against the in-repo schema first).
fn export_trace(spec: &ExperimentSpec, path: &str) -> Result<(), String> {
    let (kernel, config) = async_cell(spec);
    let config = config.with_tracing(TraceConfig::on());
    let (report, trace) = ThreadedRuntime::new().run_traced(&kernel, &config);
    if !report.converged {
        return Err("the traced run did not converge".to_string());
    }
    let json = to_chrome_json(&trace);
    let stats = validate_chrome_trace(&json)
        .map_err(|err| format!("the exporter produced an invalid trace: {err}"))?;
    std::fs::write(path, &json).map_err(|err| format!("cannot write {path}: {err}"))?;
    eprintln!(
        "scale_pool: wrote {path} ({} events on {} tracks)",
        stats.events, stats.tracks
    );
    Ok(())
}

/// Measures the wall-clock cost of tracing on the asynchronous cell:
/// interleaved untraced/traced repetitions (tracing state alternating
/// within each pair, so drift hits both sides equally), compared on the
/// minimum wall — the estimator least sensitive to scheduling noise.
fn overhead_gate(spec: &ExperimentSpec) -> Result<(), String> {
    let (kernel, config_off) = async_cell(spec);
    let config_on = config_off.clone().with_tracing(TraceConfig::on());
    let runtime = ThreadedRuntime::new();
    let timed_run = |config: &RunConfig| {
        let start = Instant::now();
        let report = runtime.run(&kernel, config);
        let wall = start.elapsed().as_secs_f64();
        assert!(report.converged, "the overhead-gate run must converge");
        wall
    };
    // Unrecorded warmup pair.
    timed_run(&config_off);
    timed_run(&config_on);
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..OVERHEAD_GATE_REPEATS {
        off = off.min(timed_run(&config_off));
        on = on.min(timed_run(&config_on));
    }
    let ratio = on / off;
    let diff = on - off;
    println!(
        "tracing_overhead: on {on:.4} s vs off {off:.4} s -> ratio {ratio:.4} \
         (gate: ratio <= {OVERHEAD_GATE_RATIO} or diff <= {OVERHEAD_GATE_ABS_SLACK_SECS} s)"
    );
    if ratio <= OVERHEAD_GATE_RATIO || diff <= OVERHEAD_GATE_ABS_SLACK_SECS {
        Ok(())
    } else {
        Err(format!(
            "tracing overhead gate failed: traced min wall {on:.4} s is \
             {ratio:.4}x the untraced {off:.4} s (allowed ratio \
             {OVERHEAD_GATE_RATIO}, absolute slack {OVERHEAD_GATE_ABS_SLACK_SECS} s)"
        ))
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            if err.is_empty() {
                println!("{USAGE}");
                return;
            }
            eprintln!("scale_pool: {err}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let spec = scale_pool_spec(args.blocks, args.workers);
    let record = run_spec(&spec);

    let mut failed = false;
    for cell in &record.cells {
        let metric = |name: &str| cell.metric(name).map(|m| m.value);
        println!(
            "{:<10}: {:.3} s wall, {} OS workers, {} iterations total, \
             {} data messages ({} coalesced), peak in-flight slots {} / {} edges, \
             {} steals ({} failed attempts), {} local pushes, {} queue waits",
            cell.cell,
            metric("wall_median_secs").unwrap_or(f64::NAN),
            metric("workers").unwrap_or(f64::NAN),
            metric("total_iterations").unwrap_or(f64::NAN),
            metric("data_messages").unwrap_or(f64::NAN),
            metric("coalesced_messages").unwrap_or(f64::NAN),
            metric("peak_mailbox_occupancy").unwrap_or(f64::NAN),
            metric("edges").unwrap_or(f64::NAN),
            metric("steals").unwrap_or(f64::NAN),
            metric("failed_steal_attempts").unwrap_or(f64::NAN),
            metric("local_pushes").unwrap_or(f64::NAN),
            metric("queue_wait_events").unwrap_or(f64::NAN),
        );
        for failure in &cell.check_failures {
            eprintln!("scale_pool: {}: {failure}", cell.cell);
            failed = true;
        }
    }
    if let Some(path) = &args.trace {
        if let Err(err) = export_trace(&spec, path) {
            eprintln!("scale_pool: {err}");
            failed = true;
        }
    }
    if args.overhead_gate {
        if let Err(err) = overhead_gate(&spec) {
            eprintln!("scale_pool: {err}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("ok: all cells bounded in-flight data and the stealing pool held its checks");
}
