//! Ablation: sensitivity of the environment comparison to the per-message
//! overhead model.
//!
//! The paper attributes the (small) differences between the three
//! asynchronous environments to their communication overheads and thread
//! management. This ablation re-runs the Table 2 experiment while scaling the
//! message payload (and hence the relative weight of the per-message fixed
//! costs) by decomposing the same matrix over fewer or more processors, and
//! prints how the environment ranking evolves — the paper's prediction is
//! that coarser grains (more data per processor) shrink the differences.

use aiac_bench::experiments::sparse_experiment;
use aiac_bench::scale::ExperimentScale;
use aiac_envs::env::EnvKind;
use aiac_netsim::topology::GridTopology;
use aiac_solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!("{}", scale.describe());
    println!("Ablation - environment spread versus decomposition grain (sparse linear problem)");
    println!(
        "{:>10}  {:>14}  {:>14}  {:>16}  {:>10}",
        "processors", "async PM2 (s)", "async MPI/Mad", "async OmniORB 4", "spread %"
    );
    for &blocks in &[6usize, 12, 24] {
        let problem =
            SparseLinearProblem::new(SparseLinearParams::paper_scaled(scale.sparse_n, blocks));
        let topology = GridTopology::ethernet_3_sites(blocks);
        let mut times = Vec::new();
        for env in EnvKind::ASYNC {
            let report = sparse_experiment(&problem, &topology, env, scale.epsilon, scale.streak);
            times.push(report.elapsed_secs);
        }
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:>10}  {:>14.1}  {:>14.1}  {:>16.1}  {:>9.1}%",
            blocks,
            times[0],
            times[1],
            times[2],
            (max - min) / min * 100.0
        );
    }
}
