//! Regenerates Table 1: the parameters chosen for each problem.
//!
//! A thin wrapper over the harness's parameter listing
//! ([`aiac_bench::harness::spec::parameter_listing`]), which prints both
//! the paper's original values and the scaled values the default experiment
//! runs use (see `ExperimentScale`). The same parameters travel in every
//! `bench_all` record as the `table1` experiment.

use aiac_bench::harness::spec::parameter_listing;
use aiac_bench::scale::ExperimentScale;
use aiac_bench::table::render_listing;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("{}", scale.describe());
    println!();
    for (title, entries) in parameter_listing(&scale) {
        println!("{}", render_listing(&title, &entries));
    }
}
