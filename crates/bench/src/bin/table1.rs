//! Regenerates Table 1: the parameters chosen for each problem.
//!
//! Prints both the paper's original values and the scaled values actually
//! used by the default experiment runs (see `ExperimentScale`).

use aiac_bench::scale::ExperimentScale;
use aiac_bench::table::render_listing;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("{}", scale.describe());
    println!();

    let sparse = vec![
        (
            "matrix size (paper)".to_string(),
            "2000000 x 2000000".to_string(),
        ),
        (
            "matrix size (this run)".to_string(),
            format!("{n} x {n}", n = scale.sparse_n),
        ),
        (
            "repartition of non-zero values".to_string(),
            "30 sub-diagonals (scattered)".to_string(),
        ),
        (
            "Jacobi contraction bound".to_string(),
            "0.9 (spectral radius < 1)".to_string(),
        ),
        ("processors".to_string(), format!("{}", scale.sparse_blocks)),
    ];
    println!(
        "{}",
        render_listing("Table 1a - Sparse linear system", &sparse)
    );

    let chemical = vec![
        (
            "discretization grid (paper)".to_string(),
            "600 x 600".to_string(),
        ),
        (
            "discretization grid (this run)".to_string(),
            format!("{g} x {g}", g = scale.chem_grid),
        ),
        (
            "time interval".to_string(),
            format!("{} s", scale.chem_t_end),
        ),
        ("time step".to_string(), "180 s".to_string()),
        ("processors".to_string(), format!("{}", scale.chem_blocks)),
    ];
    println!(
        "{}",
        render_listing("Table 1b - Non-linear problem", &chemical)
    );
}
