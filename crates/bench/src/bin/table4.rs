//! Regenerates Table 4: the thread configuration each environment's
//! implementation uses for each problem.
//!
//! The configurations are the ones the environment models expose to the
//! runtimes (and therefore the ones every other experiment actually ran
//! with), phrased with the same wording as the paper.

use aiac_bench::table::render_listing;
use aiac_envs::env::EnvKind;
use aiac_envs::threads::ProblemKind;

fn main() {
    let processors = 12;
    for (title, problem) in [
        (
            "Table 4a - Sparse linear problem",
            ProblemKind::SparseLinear,
        ),
        (
            "Table 4b - Non-linear problem",
            ProblemKind::NonLinearChemical,
        ),
    ] {
        let entries: Vec<(String, String)> = EnvKind::ASYNC
            .iter()
            .map(|kind| {
                let env = kind.build();
                let cfg = env.thread_config(problem, processors);
                (kind.label().to_string(), cfg.describe())
            })
            .collect();
        println!("{}", render_listing(title, &entries));
    }
    println!("(N is the number of processors; configurations shown for N = {processors})");
}
