//! Regenerates Figures 1 and 2: the execution flow of a SISC and of an AIAC
//! algorithm on two processors.
//!
//! The paper's figures are schematic; here they are produced from actual
//! simulated runs of the sparse linear problem on a two-machine grid. `#`
//! marks computation, `.` idle time, `>` message packing. The synchronous
//! trace shows the idle gaps between iterations, the asynchronous one shows
//! back-to-back iterations.

use aiac_core::config::RunConfig;
use aiac_core::runtime::simulated::SimulatedRuntime;
use aiac_envs::env::EnvKind;
use aiac_envs::threads::ProblemKind;
use aiac_netsim::topology::GridTopology;
use aiac_solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};

fn main() {
    let problem = SparseLinearProblem::new(SparseLinearParams::paper_scaled(400, 2));
    let topology = GridTopology::ethernet_3_sites(2);
    let width = 100;

    let sync = SimulatedRuntime::new(
        topology.clone(),
        EnvKind::MpiSync,
        ProblemKind::SparseLinear,
    )
    .with_trace(true)
    .run(&problem, &RunConfig::synchronous(1e-4));
    let sync_trace = sync.trace.expect("tracing enabled");
    println!("Figure 1 - Execution flow of a SISC algorithm with two processors");
    println!("{}", sync_trace.gantt_ascii(width));
    println!(
        "idle fraction: P0 = {:.0}%, P1 = {:.0}%\n",
        sync_trace.idle_fraction(0) * 100.0,
        sync_trace.idle_fraction(1) * 100.0
    );

    let async_run = SimulatedRuntime::new(topology, EnvKind::Pm2, ProblemKind::SparseLinear)
        .with_trace(true)
        .run(&problem, &RunConfig::asynchronous(1e-4).with_streak(3));
    let async_trace = async_run.trace.expect("tracing enabled");
    println!("Figure 2 - Execution flow of an AIAC algorithm with two processors");
    println!("{}", async_trace.gantt_ascii(width));
    println!(
        "idle fraction: P0 = {:.0}%, P1 = {:.0}%",
        async_trace.idle_fraction(0) * 100.0,
        async_trace.idle_fraction(1) * 100.0
    );
    println!(
        "\nsync time: {:.1} s, async time: {:.1} s",
        sync.report.elapsed_secs, async_run.report.elapsed_secs
    );
}
