//! Regenerates Table 3: execution times for the non-linear chemical problem
//! on the two distant-grid platforms (plain Ethernet, and Ethernet + ADSL).

use aiac_bench::experiments::chemical_experiment;
use aiac_bench::scale::ExperimentScale;
use aiac_bench::table::{render_table, TableRow};
use aiac_envs::env::EnvKind;
use aiac_netsim::topology::GridTopology;
use aiac_solvers::chemical::ChemicalParams;

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!("{}", scale.describe());
    let mut params =
        ChemicalParams::paper_scaled(scale.chem_grid, scale.chem_grid, scale.chem_blocks);
    params.t_end = scale.chem_t_end;
    params.epsilon = scale.epsilon;

    let platforms = [
        (
            "Ethernet",
            GridTopology::ethernet_3_sites(scale.chem_blocks),
        ),
        (
            "Ethernet and ADSL",
            GridTopology::ethernet_adsl_4_sites(scale.chem_blocks),
        ),
    ];

    let mut rows = Vec::new();
    for (label, topology) in &platforms {
        let sync = chemical_experiment(&params, topology, EnvKind::MpiSync, scale.streak);
        eprintln!(
            "{label} / sync MPI: {:.1} s (converged: {})",
            sync.time_secs, sync.converged
        );
        rows.push(TableRow::new(
            label,
            EnvKind::MpiSync.label(),
            sync.time_secs,
            sync.time_secs,
        ));
        for env in EnvKind::ASYNC {
            let result = chemical_experiment(&params, topology, env, scale.streak);
            eprintln!(
                "{label} / {}: {:.1} s (converged: {}, mean inner iterations: {:.1})",
                env.label(),
                result.time_secs,
                result.converged,
                result.mean_iterations
            );
            rows.push(TableRow::new(
                label,
                env.label(),
                result.time_secs,
                sync.time_secs,
            ));
        }
    }

    println!(
        "{}",
        render_table(
            "Table 3 - Execution times (virtual seconds) for the non-linear problem",
            &rows
        )
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("rows serialise to JSON")
    );
}
