//! The CI perf-regression gate.
//!
//! ```text
//! bench_gate BASELINE [CANDIDATE] [--rel-tolerance F] [--abs-tolerance F]
//!            [--experiment NAME]
//! ```
//!
//! Compares a candidate [`BenchRecord`] against the committed baseline
//! (`BENCH_baseline.json` at the repo root) and exits non-zero when any
//! deterministic metric regressed beyond tolerance or disappeared. When no
//! candidate file is given, the smoke registry is run in-process — one
//! command gives CI its verdict.
//!
//! Only *deterministic* metrics are compared (simulated virtual-clock
//! totals, which replay bit-identically on any machine), so the gate is
//! flake-free on shared runners; wall-clock samples are carried in the
//! records for trend-watching but never gated.
//!
//! `--experiment NAME` narrows both records to one experiment before
//! comparing — the per-subsystem CI jobs (e.g. `service-smoke`) gate their
//! own record against the full committed baseline this way.
//!
//! Exit codes: 0 = within tolerance, 1 = regression (or a candidate check
//! failure), 2 = usage / IO error.

use aiac_bench::harness::spec::registry;
use aiac_bench::harness::{compare, run_specs, BenchRecord, Fidelity, Tolerance};
use aiac_bench::scale::ExperimentScale;

struct Args {
    baseline: String,
    candidate: Option<String>,
    tolerance: Tolerance,
    experiment: Option<String>,
}

const USAGE: &str = "usage: bench_gate BASELINE [CANDIDATE] [--rel-tolerance F] \
     [--abs-tolerance F] [--experiment NAME]";

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut baseline = None;
    let mut candidate = None;
    let mut tolerance = Tolerance::default();
    let mut experiment = None;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--rel-tolerance" => {
                let raw = argv.next().ok_or("--rel-tolerance needs a number")?;
                tolerance.rel = parse_bound(&raw)?;
            }
            "--abs-tolerance" => {
                let raw = argv.next().ok_or("--abs-tolerance needs a number")?;
                tolerance.abs = parse_bound(&raw)?;
            }
            "--experiment" => {
                experiment = Some(argv.next().ok_or("--experiment needs a name")?);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            path if baseline.is_none() => baseline = Some(path.to_string()),
            path if candidate.is_none() => candidate = Some(path.to_string()),
            extra => return Err(format!("unexpected extra argument {extra:?}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("a baseline file is required")?,
        candidate,
        tolerance,
        experiment,
    })
}

fn parse_bound(raw: &str) -> Result<f64, String> {
    let value: f64 = raw
        .parse()
        .map_err(|_| format!("tolerances must be numbers, got {raw:?}"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("tolerances must be >= 0, got {raw}"));
    }
    Ok(value)
}

fn load_record(path: &str) -> Result<BenchRecord, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    BenchRecord::from_json(&text).map_err(|err| format!("{path}: {err}"))
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            if err.is_empty() {
                println!("{USAGE}");
                return;
            }
            eprintln!("bench_gate: {err}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let mut baseline = match load_record(&args.baseline) {
        Ok(record) => record,
        Err(err) => {
            eprintln!("bench_gate: {err}");
            std::process::exit(2);
        }
    };

    let mut candidate = match &args.candidate {
        Some(path) => match load_record(path) {
            Ok(record) => record,
            Err(err) => {
                eprintln!("bench_gate: {err}");
                std::process::exit(2);
            }
        },
        None => {
            let scale = ExperimentScale::from_env();
            eprintln!("bench_gate: no candidate file, running the smoke suite in-process");
            let specs = registry(&scale, Fidelity::Smoke);
            run_specs(&specs, Fidelity::Smoke.suite(), scale.full_scale)
        }
    };

    if let Some(name) = &args.experiment {
        baseline.experiments.retain(|e| &e.experiment == name);
        if baseline.experiments.is_empty() {
            eprintln!(
                "bench_gate: experiment {name:?} is not in the baseline {} — \
                 refresh it with `bench_all --smoke --json BENCH_baseline.json`",
                args.baseline
            );
            std::process::exit(2);
        }
        candidate.experiments.retain(|e| &e.experiment == name);
    }

    // A candidate that failed its own invariants must not pass the gate,
    // however its metrics compare.
    let mut failed = false;
    for failure in candidate.check_failures() {
        eprintln!("bench_gate: candidate check failed: {failure}");
        failed = true;
    }

    let report = match compare(&baseline, &candidate, args.tolerance) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("bench_gate: {err}");
            std::process::exit(2);
        }
    };
    for line in report.summary_lines() {
        println!("{line}");
    }
    let failures = report.failures();
    if !failures.is_empty() {
        eprintln!(
            "bench_gate: {} metric(s) regressed beyond tolerance \
             (rel {:.0}%, abs {:.1e}); see REGRESSED/MISSING lines above. \
             If the change is intended, refresh BENCH_baseline.json with \
             `bench_all --smoke --json BENCH_baseline.json`.",
            failures.len(),
            args.tolerance.rel * 100.0,
            args.tolerance.abs
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "ok: {} gateable metrics within tolerance of {}",
        report.deltas.len(),
        args.baseline
    );
}
