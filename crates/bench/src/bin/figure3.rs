//! Regenerates Figure 3: execution time of the non-linear problem on the
//! local heterogeneous cluster as a function of the number of processors
//! (10 to 40 machines, Duron 800 / P4 1.7 / P4 2.4 interleaved, 100 Mb
//! Ethernet), for the synchronous MPI version and the three asynchronous
//! versions.
//!
//! Prints one line per processor count with the four execution times, i.e.
//! the data series of the figure (the paper plots them on a log scale).

use aiac_bench::experiments::chemical_experiment;
use aiac_bench::scale::ExperimentScale;
use aiac_envs::env::EnvKind;
use aiac_netsim::topology::GridTopology;
use aiac_solvers::chemical::ChemicalParams;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SeriesPoint {
    processors: usize,
    sync_mpi: f64,
    async_pm2: f64,
    async_mpi_mad: f64,
    async_omniorb: f64,
}

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!("{}", scale.describe());

    let mut series = Vec::new();
    for &n in &scale.fig3_processors {
        let mut params = ChemicalParams::paper_scaled(scale.fig3_grid, scale.fig3_grid, n);
        params.t_end = scale.fig3_t_end;
        params.epsilon = scale.epsilon;
        let topology = GridTopology::local_hetero_cluster(n);

        let mut times = std::collections::BTreeMap::new();
        for env in EnvKind::ALL {
            let result = chemical_experiment(&params, &topology, env, scale.streak);
            eprintln!(
                "{n:>2} processors / {}: {:.1} s (converged: {})",
                env.label(),
                result.time_secs,
                result.converged
            );
            times.insert(env.label().to_string(), result.time_secs);
        }
        series.push(SeriesPoint {
            processors: n,
            sync_mpi: times[EnvKind::MpiSync.label()],
            async_pm2: times[EnvKind::Pm2.label()],
            async_mpi_mad: times[EnvKind::MpiMadeleine.label()],
            async_omniorb: times[EnvKind::OmniOrb.label()],
        });
    }

    println!("Figure 3 - Execution times (virtual seconds) on the local heterogeneous cluster");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>14}  {:>14}",
        "processors", "sync MPI", "async PM2", "async MPI/Mad", "async OmniORB"
    );
    for p in &series {
        println!(
            "{:>10}  {:>12.1}  {:>12.1}  {:>14.1}  {:>14.1}",
            p.processors, p.sync_mpi, p.async_pm2, p.async_mpi_mad, p.async_omniorb
        );
    }
    println!();
    println!(
        "{}",
        serde_json::to_string_pretty(&series).expect("series serialise to JSON")
    );
}
