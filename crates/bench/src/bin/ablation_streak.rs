//! Ablation: effect of the local-convergence streak length.
//!
//! Section 4.3 of the paper explains that each processor waits for "a
//! specified number of iterations under local convergence" before reporting
//! it, to filter the oscillations caused by asynchronous arrivals. This
//! ablation sweeps that threshold on the sparse linear problem and reports
//! the execution time, the number of state messages and the final error:
//! too small a streak costs extra state traffic (and risks premature
//! detection), too large a streak delays termination.

use aiac_bench::experiments::run_config_for;
use aiac_bench::scale::ExperimentScale;
use aiac_core::runtime::simulated::SimulatedRuntime;
use aiac_envs::env::EnvKind;
use aiac_envs::threads::ProblemKind;
use aiac_netsim::topology::GridTopology;
use aiac_solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!("{}", scale.describe());
    let problem = SparseLinearProblem::new(SparseLinearParams::paper_scaled(
        scale.sparse_n,
        scale.sparse_blocks,
    ));
    let topology = GridTopology::ethernet_3_sites(scale.sparse_blocks);

    println!("Ablation - local-convergence streak (async PM2, sparse linear problem)");
    println!(
        "{:>8}  {:>12}  {:>16}  {:>14}",
        "streak", "time (s)", "state messages", "error vs exact"
    );
    for streak in [1usize, 2, 3, 5, 10, 20] {
        let mut config = run_config_for(EnvKind::Pm2, scale.epsilon, streak);
        config.convergence_streak = streak;
        let runtime =
            SimulatedRuntime::new(topology.clone(), EnvKind::Pm2, ProblemKind::SparseLinear);
        let outcome = runtime.run(&problem, &config);
        println!(
            "{:>8}  {:>12.1}  {:>16}  {:>14.2e}",
            streak,
            outcome.report.elapsed_secs,
            outcome.report.control_messages,
            problem.error_of(&outcome.report.solution)
        );
    }
}
