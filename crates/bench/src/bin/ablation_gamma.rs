//! Ablation: effect of the fixed step γ of the gradient descent.
//!
//! Section 4.1 notes that γ "must be conveniently chosen (around 1) to
//! accelerate the convergence" and that γ = 1 recovers the Jacobi method.
//! This ablation sweeps γ on the sparse linear problem (sequential reference
//! runtime, so only the iteration count matters) and reports the number of
//! iterations to convergence and the final error.

use aiac_core::config::RunConfig;
use aiac_core::runtime::sequential::SequentialRuntime;
use aiac_solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};

fn main() {
    println!("Ablation - fixed step gamma of the gradient descent (sequential runtime)");
    println!(
        "{:>8}  {:>12}  {:>14}  {:>10}",
        "gamma", "iterations", "error vs exact", "converged"
    );
    for &gamma in &[0.4, 0.6, 0.8, 1.0, 1.1, 1.2] {
        let mut params = SparseLinearParams::paper_scaled(2_000, 8);
        params.gamma = gamma;
        let problem = SparseLinearProblem::new(params);
        let config = RunConfig::synchronous(1e-9).with_max_iterations(5_000);
        let report = SequentialRuntime::new().run(&problem, &config);
        println!(
            "{:>8.2}  {:>12}  {:>14.2e}  {:>10}",
            gamma,
            report.iterations[0],
            problem.error_of(&report.solution),
            report.converged
        );
    }
}
