//! Exercises all three traced layers and dumps one merged Chrome trace.
//!
//! ```text
//! trace_dump [--out PATH] [--summary]
//! trace_dump --check PATH [--expect-layer LAYER]...
//! ```
//!
//! * default mode — runs a small workload on each instrumented layer with
//!   tracing on (the work-stealing pool → `runtime` tracks, the virtual-clock
//!   grid simulation → `netsim` tracks, the virtual-clock service replay →
//!   `service` tracks), merges the three snapshots and writes the Chrome
//!   trace-event JSON to `--out PATH` (default `trace_dump.json`). Open the
//!   file in Perfetto or `chrome://tracing`. `--summary` also prints the
//!   deterministic text rendering to stdout.
//! * `--check PATH` — validates an existing export against the in-repo
//!   schema checker instead of running anything; each `--expect-layer`
//!   (`runtime`, `netsim` or `service`) must appear among the trace's
//!   process names. This is the CI half: the `trace-smoke` job exports with
//!   the default mode (or the `--trace` flags of `scale_pool` /
//!   `service_load`) and verifies with `--check`.
//!
//! Exit codes: 0 = exported (or validated) successfully, 1 = the export
//! failed validation or an expected layer is missing, 2 = usage error.

use aiac_bench::harness::spec::service_load_spec;
use aiac_bench::harness::Fidelity;
use aiac_bench::scale::ScaleRing;
use aiac_core::config::{RunConfig, StealPolicy};
use aiac_core::runtime::simulated::SimulatedRuntime;
use aiac_core::runtime::threaded::ThreadedRuntime;
use aiac_envs::profile::EnvProfile;
use aiac_envs::threads::ProblemKind;
use aiac_netsim::topology::GridTopology;
use aiac_obs::{text_summary, to_chrome_json, validate_chrome_trace, TraceConfig, TraceSnapshot};
use aiac_service::run_virtual_traced;

struct Args {
    out: String,
    summary: bool,
    check: Option<String>,
    expect_layers: Vec<String>,
}

const USAGE: &str = "usage: trace_dump [--out PATH] [--summary]\n\
                     \x20      trace_dump --check PATH [--expect-layer LAYER]...";

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        out: "trace_dump.json".to_string(),
        summary: false,
        check: None,
        expect_layers: Vec::new(),
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--out" => {
                args.out = argv.next().ok_or("--out needs a file path")?;
            }
            "--summary" => args.summary = true,
            "--check" => {
                args.check = Some(argv.next().ok_or("--check needs a file path")?);
            }
            "--expect-layer" => {
                let layer = argv.next().ok_or("--expect-layer needs a layer name")?;
                match layer.as_str() {
                    "runtime" | "netsim" | "service" => args.expect_layers.push(layer),
                    other => {
                        return Err(format!(
                            "unknown layer {other:?} (expected runtime, netsim or service)"
                        ))
                    }
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.check.is_none() && !args.expect_layers.is_empty() {
        return Err("--expect-layer only makes sense with --check".to_string());
    }
    Ok(args)
}

/// A traced asynchronous run on the real work-stealing pool (`runtime`
/// tracks, one per worker, wall-clock timestamps).
fn runtime_snapshot() -> TraceSnapshot {
    let kernel = ScaleRing::new(64).with_cost(1e-6);
    let config = RunConfig::asynchronous(1e-8)
        .with_streak(3)
        .with_num_workers(4)
        .with_steal_policy(StealPolicy::WorkStealing)
        .with_tracing(TraceConfig::on());
    let (report, trace) = ThreadedRuntime::new().run_traced(&kernel, &config);
    assert!(report.converged, "the traced ring run must converge");
    trace
}

/// A traced asynchronous run on the simulated grid (`netsim` tracks, one
/// per host, virtual-clock timestamps — bit-identical across runs).
fn netsim_snapshot() -> TraceSnapshot {
    let kernel = ScaleRing::new(12).with_cost(1e-4);
    let profile = EnvProfile::AsyncMpiMad;
    let env_kind = profile.env_kind().expect("grid profile has an env kind");
    let config = RunConfig::asynchronous(1e-8)
        .with_streak(3)
        .with_tracing(TraceConfig::on());
    let runtime = SimulatedRuntime::new(
        GridTopology::local_hetero_cluster(4),
        env_kind,
        ProblemKind::SparseLinear,
    );
    let outcome = runtime.run(&kernel, &config);
    assert!(outcome.report.converged, "the simulated run must converge");
    outcome.obs_trace
}

/// A traced virtual-clock replay of the smoke service load (`service`
/// tracks, one per tenant, virtual-clock timestamps).
fn service_snapshot() -> TraceSnapshot {
    let mut load = service_load_spec(Fidelity::Smoke)
        .service
        .expect("the service spec carries a load");
    load.service.tracing = TraceConfig::on();
    let (report, trace) = run_virtual_traced(&load);
    assert!(
        report.completed > 0,
        "the service replay must complete jobs"
    );
    trace
}

fn run_export(args: &Args) -> Result<(), String> {
    let mut merged = runtime_snapshot();
    merged.merge(netsim_snapshot());
    merged.merge(service_snapshot());

    let json = to_chrome_json(&merged);
    let stats = validate_chrome_trace(&json)
        .map_err(|err| format!("the exporter produced an invalid trace: {err}"))?;
    for layer in ["runtime", "netsim", "service"] {
        if !stats.layers.contains(layer) {
            return Err(format!("the merged trace is missing the {layer} layer"));
        }
    }

    std::fs::write(&args.out, &json).map_err(|err| format!("cannot write {}: {err}", args.out))?;
    eprintln!(
        "trace_dump: wrote {} ({} events on {} tracks across {} layers)",
        args.out,
        stats.events,
        stats.tracks,
        stats.layers.len()
    );
    if args.summary {
        print!("{}", text_summary(&merged));
    }
    Ok(())
}

fn run_check(path: &str, expect_layers: &[String]) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let stats = validate_chrome_trace(&text).map_err(|err| format!("{path}: {err}"))?;
    for layer in expect_layers {
        if !stats.layers.contains(layer.as_str()) {
            return Err(format!(
                "{path}: expected layer {layer:?} but the trace only has {:?}",
                stats.layers
            ));
        }
    }
    println!(
        "ok: {path} is a valid Chrome trace ({} events, {} tracks, layers {:?})",
        stats.events, stats.tracks, stats.layers
    );
    Ok(())
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            if err.is_empty() {
                println!("{USAGE}");
                return;
            }
            eprintln!("trace_dump: {err}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let result = match &args.check {
        Some(path) => run_check(path, &args.expect_layers),
        None => run_export(&args),
    };
    if let Err(err) = result {
        eprintln!("trace_dump: {err}");
        std::process::exit(1);
    }
}
