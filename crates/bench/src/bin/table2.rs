//! Regenerates Table 2: execution times for the sparse linear problem on the
//! distant heterogeneous grid (three sites over 10 Mb Ethernet).
//!
//! Four versions are compared, exactly as in the paper: the synchronous MPI
//! baseline and the asynchronous AIAC implementations over the PM2,
//! MPICH/Madeleine and OmniORB 4 environment models. Speed ratios are
//! computed against the synchronous run.

use aiac_bench::experiments::sparse_experiment;
use aiac_bench::scale::ExperimentScale;
use aiac_bench::table::{render_table, TableRow};
use aiac_envs::env::EnvKind;
use aiac_netsim::topology::GridTopology;
use aiac_solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!("{}", scale.describe());
    eprintln!(
        "generating the sparse matrix ({} unknowns)...",
        scale.sparse_n
    );
    let problem = SparseLinearProblem::new(SparseLinearParams::paper_scaled(
        scale.sparse_n,
        scale.sparse_blocks,
    ));
    let topology = GridTopology::ethernet_3_sites(scale.sparse_blocks);

    let mut rows = Vec::new();
    let sync = sparse_experiment(
        &problem,
        &topology,
        EnvKind::MpiSync,
        scale.epsilon,
        scale.streak,
    );
    eprintln!(
        "sync MPI: {:.1} s (converged: {}, error vs exact: {:.2e})",
        sync.elapsed_secs,
        sync.converged,
        problem.error_of(&sync.solution)
    );
    rows.push(TableRow::new(
        "Ethernet",
        EnvKind::MpiSync.label(),
        sync.elapsed_secs,
        sync.elapsed_secs,
    ));
    for env in EnvKind::ASYNC {
        let report = sparse_experiment(&problem, &topology, env, scale.epsilon, scale.streak);
        eprintln!(
            "{}: {:.1} s (converged: {}, error vs exact: {:.2e}, {} data messages)",
            env.label(),
            report.elapsed_secs,
            report.converged,
            problem.error_of(&report.solution),
            report.data_messages
        );
        rows.push(TableRow::new(
            "Ethernet",
            env.label(),
            report.elapsed_secs,
            sync.elapsed_secs,
        ));
    }

    println!(
        "{}",
        render_table(
            "Table 2 - Execution times (virtual seconds) for the sparse linear problem",
            &rows
        )
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("rows serialise to JSON")
    );
}
