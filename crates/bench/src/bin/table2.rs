//! Regenerates Table 2: execution times for the sparse linear problem on
//! the distant heterogeneous grid (three sites over 10 Mb Ethernet).
//!
//! A thin wrapper over the harness: the experiment itself is the `table2`
//! spec ([`aiac_bench::harness::spec::table2_spec`]) — the synchronous MPI
//! baseline and the three asynchronous AIAC environments, speed ratios
//! against the synchronous run — and this binary renders its record in the
//! paper's table layout plus the JSON rows.
//!
//! Exits 1 if any of the spec's checks (convergence, async-beats-sync,
//! solution error) failed.

use aiac_bench::harness::spec::table2_spec;
use aiac_bench::harness::{run_spec, ExperimentRecord};
use aiac_bench::scale::ExperimentScale;
use aiac_bench::table::{render_table, TableRow};
use aiac_envs::profile::EnvProfile;

/// Maps the record's cells onto the paper's table rows.
fn rows_of(record: &ExperimentRecord) -> Vec<TableRow> {
    let sync_time = record
        .cell(EnvProfile::SyncMpi.slug())
        .and_then(|c| c.metric("sim_time_secs"))
        .map(|m| m.value)
        .expect("the spec always runs the synchronous baseline");
    record
        .cells
        .iter()
        .filter_map(|cell| {
            let time = cell.metric("sim_time_secs")?.value;
            let label = cell
                .env
                .parse::<EnvProfile>()
                .map(|p| p.label().to_string())
                .unwrap_or_else(|_| cell.env.clone());
            Some(TableRow::new("Ethernet", &label, time, sync_time))
        })
        .collect()
}

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!("{}", scale.describe());
    eprintln!(
        "generating the sparse matrix ({} unknowns)...",
        scale.sparse_n
    );
    let spec = table2_spec(scale.sparse_n, scale.sparse_blocks, &scale);
    let record = run_spec(&spec);

    let rows = rows_of(&record);
    println!(
        "{}",
        render_table(
            "Table 2 - Execution times (virtual seconds) for the sparse linear problem",
            &rows
        )
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("rows serialise to JSON")
    );

    let mut failed = false;
    for cell in &record.cells {
        for failure in &cell.check_failures {
            eprintln!("table2: {}: {failure}", cell.cell);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
