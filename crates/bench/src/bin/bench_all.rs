//! Runs the standing experiment registry and emits a machine-readable
//! [`BenchRecord`].
//!
//! ```text
//! bench_all [--smoke | --full] [--json PATH] [--list]
//! ```
//!
//! * `--smoke` (default) — seconds-scale sizes; the suite CI gates on.
//! * `--full` — the historical default sizes of the standalone binaries.
//! * `--json PATH` — also write the record as pretty JSON to `PATH`.
//! * `--list` — print the specs that would run, without running them.
//!
//! Setting `AIAC_FULL=1` additionally switches the *problem parameters* to
//! the paper's original sizes (orthogonal to `--smoke`/`--full`, which pick
//! the sweep breadth).
//!
//! Exit codes: 0 = every check passed, 1 = a run violated one of its
//! spec'd invariants, 2 = usage error.

use aiac_bench::harness::spec::registry;
use aiac_bench::harness::{run_specs, BenchRecord, Fidelity};
use aiac_bench::scale::ExperimentScale;

struct Args {
    fidelity: Fidelity,
    json: Option<String>,
    list: bool,
}

const USAGE: &str = "usage: bench_all [--smoke | --full] [--json PATH] [--list]";

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        fidelity: Fidelity::Smoke,
        json: None,
        list: false,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => args.fidelity = Fidelity::Smoke,
            "--full" => args.fidelity = Fidelity::Full,
            "--json" => {
                args.json = Some(argv.next().ok_or("--json needs a file path")?);
            }
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// One human-readable block per experiment: its cells with the headline
/// metrics and any check failures.
fn render(record: &BenchRecord) -> String {
    let mut out = String::new();
    for exp in &record.experiments {
        out.push_str(&format!("## {}\n", exp.experiment));
        for cell in &exp.cells {
            let sim = cell
                .metric("sim_time_secs")
                .map(|m| format!("{:>10.2} s virtual", m.value))
                .unwrap_or_else(|| format!("{:>19}", "-"));
            let wall = cell
                .metric("wall_median_secs")
                .map(|m| format!("{:>8.3} s wall", m.value))
                .unwrap_or_else(|| format!("{:>15}", "-"));
            let ratio = cell
                .metric("speed_ratio")
                .map(|m| format!("  ratio {:>5.2}", m.value))
                .unwrap_or_default();
            out.push_str(&format!("  {:<32} {sim}  {wall}{ratio}\n", cell.cell));
            for failure in &cell.check_failures {
                out.push_str(&format!("    CHECK FAILED: {failure}\n"));
            }
        }
    }
    out
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            if err.is_empty() {
                println!("{USAGE}");
                return;
            }
            eprintln!("bench_all: {err}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let scale = ExperimentScale::from_env();
    let specs = registry(&scale, args.fidelity);
    eprintln!(
        "bench_all: {} suite, {}",
        args.fidelity.suite(),
        scale.describe()
    );
    if args.list {
        for spec in &specs {
            println!(
                "{:<12} {:?} on {} ({} profiles, {} placements, sweep {:?})",
                spec.name,
                spec.kind,
                spec.platform.label(),
                spec.profiles.len(),
                spec.placements.len(),
                spec.block_sweep
            );
        }
        return;
    }

    let record = run_specs(&specs, args.fidelity.suite(), scale.full_scale);
    print!("{}", render(&record));

    if let Some(path) = &args.json {
        if let Err(err) = std::fs::write(path, record.to_json_pretty() + "\n") {
            eprintln!("bench_all: cannot write {path}: {err}");
            std::process::exit(2);
        }
        eprintln!("bench_all: wrote {path}");
    }

    if !record.all_checks_passed() {
        for failure in record.check_failures() {
            eprintln!("bench_all: check failed: {failure}");
        }
        std::process::exit(1);
    }
    println!("ok: every experiment passed its checks");
}
