//! Runs the `service_load` experiment: thousands of concurrent multi-tenant
//! solve jobs through admission, DRR fairness and the result cache over the
//! shared worker pool.
//!
//! ```text
//! service_load [--smoke | --full] [--json PATH] [--trace PATH] [--list]
//! ```
//!
//! * `--smoke` (default) — the seeded ~1.8 k-job stream CI gates on.
//! * `--full` — the sustained 12 k-job stream with skewed tenant weights.
//! * `--json PATH` — also write the record as pretty JSON to `PATH`.
//! * `--trace PATH` — additionally replay the load with tracing enabled
//!   (the deterministic virtual-clock replay plus the real pool, merged)
//!   and write the per-tenant Chrome trace-event JSON to `PATH`
//!   (schema-checked before writing).
//! * `--list` — print the spec that would run, without running it.
//!
//! The record carries two cells: `virtual` (deterministic virtual-clock
//! replay — latency percentiles, throughput, fairness ratio, cache hit
//! rate, all gateable by `bench_gate --experiment service_load`) and `real`
//! (the same traffic on the real OS-thread pool, wall-clock, informational).
//!
//! Exit codes: 0 = every check passed, 1 = a service invariant failed
//! (lost jobs, breached admission bound, starving tenant, missed
//! concurrency floor), 2 = usage error.

use aiac_bench::harness::spec::service_load_spec;
use aiac_bench::harness::{run_specs, BenchRecord, Fidelity};
use aiac_obs::{to_chrome_json, validate_chrome_trace, TraceConfig};
use aiac_service::{run_real_load_traced, run_virtual_traced};

struct Args {
    fidelity: Fidelity,
    json: Option<String>,
    trace: Option<String>,
    list: bool,
}

const USAGE: &str = "usage: service_load [--smoke | --full] [--json PATH] [--trace PATH] [--list]";

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        fidelity: Fidelity::Smoke,
        json: None,
        trace: None,
        list: false,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => args.fidelity = Fidelity::Smoke,
            "--full" => args.fidelity = Fidelity::Full,
            "--json" => {
                args.json = Some(argv.next().ok_or("--json needs a file path")?);
            }
            "--trace" => {
                args.trace = Some(argv.next().ok_or("--trace needs a file path")?);
            }
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// Replays the spec's load with tracing enabled — the deterministic
/// virtual-clock replay merged with the real-pool run — and writes the
/// per-tenant Chrome trace to `path` (validated against the in-repo schema
/// first).
fn export_trace(spec: &aiac_bench::harness::ExperimentSpec, path: &str) -> Result<(), String> {
    let mut load = spec
        .service
        .clone()
        .ok_or("the service spec carries no load")?;
    load.service.tracing = TraceConfig::on();
    let (virt, mut trace) = run_virtual_traced(&load);
    if virt.completed == 0 {
        return Err("the traced virtual replay completed no jobs".to_string());
    }
    let (real, real_trace) = run_real_load_traced(&load.service, &load.traffic);
    if real.completed == 0 {
        return Err("the traced real load completed no jobs".to_string());
    }
    trace.merge(real_trace);
    let json = to_chrome_json(&trace);
    let stats = validate_chrome_trace(&json)
        .map_err(|err| format!("the exporter produced an invalid trace: {err}"))?;
    std::fs::write(path, &json).map_err(|err| format!("cannot write {path}: {err}"))?;
    eprintln!(
        "service_load: wrote {path} ({} events on {} tracks)",
        stats.events, stats.tracks
    );
    Ok(())
}

/// The headline metrics of each load cell, one line per metric.
fn render(record: &BenchRecord) -> String {
    let mut out = String::new();
    for exp in &record.experiments {
        out.push_str(&format!("## {}\n", exp.experiment));
        for cell in &exp.cells {
            out.push_str(&format!("  [{}]\n", cell.cell));
            for (name, unit) in [
                ("throughput_jobs_per_sec", "jobs/s"),
                ("real_throughput_jobs_per_sec", "jobs/s"),
                ("latency_p50_secs", "s"),
                ("latency_p95_secs", "s"),
                ("latency_p99_secs", "s"),
                ("fairness_ratio", "x"),
                ("cache_hit_rate", ""),
                ("rejection_rate", ""),
                ("jobs_generated", "jobs"),
                ("jobs_completed", "jobs"),
                ("peak_in_flight", "jobs"),
            ] {
                if let Some(metric) = cell.metric(name) {
                    out.push_str(&format!(
                        "    {:<28} {:>14.6} {unit}\n",
                        metric.name, metric.value
                    ));
                }
            }
            for failure in &cell.check_failures {
                out.push_str(&format!("    CHECK FAILED: {failure}\n"));
            }
        }
    }
    out
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            if err.is_empty() {
                println!("{USAGE}");
                return;
            }
            eprintln!("service_load: {err}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let spec = service_load_spec(args.fidelity);
    if args.list {
        let load = spec.service.as_ref().expect("service spec carries a load");
        println!(
            "{:<12} {:?}: {} jobs, {} tenants, {} workers, in-flight bound {}, \
             tenant depth {}, quantum {}, cache {}",
            spec.name,
            spec.kind,
            load.traffic.jobs,
            load.traffic.tenant_weights.len(),
            load.service.workers,
            load.service.max_in_flight,
            load.service.tenant_queue_depth,
            load.service.drr_quantum,
            load.service.cache_capacity,
        );
        return;
    }

    eprintln!("service_load: {} suite", args.fidelity.suite());
    let record = run_specs(
        std::slice::from_ref(&spec),
        args.fidelity.suite(),
        args.fidelity == Fidelity::Full,
    );
    print!("{}", render(&record));

    if let Some(path) = &args.json {
        if let Err(err) = std::fs::write(path, record.to_json_pretty() + "\n") {
            eprintln!("service_load: cannot write {path}: {err}");
            std::process::exit(2);
        }
        eprintln!("service_load: wrote {path}");
    }

    if let Some(path) = &args.trace {
        if let Err(err) = export_trace(&spec, path) {
            eprintln!("service_load: {err}");
            std::process::exit(1);
        }
    }

    if !record.all_checks_passed() {
        for failure in record.check_failures() {
            eprintln!("service_load: check failed: {failure}");
        }
        std::process::exit(1);
    }
    println!("ok: the service survived its load with every invariant intact");
}
