//! Runs the `service_load` experiment: thousands of concurrent multi-tenant
//! solve jobs through admission, DRR fairness and the result cache over the
//! shared worker pool.
//!
//! ```text
//! service_load [--smoke | --full] [--json PATH] [--list]
//! ```
//!
//! * `--smoke` (default) — the seeded ~1.8 k-job stream CI gates on.
//! * `--full` — the sustained 12 k-job stream with skewed tenant weights.
//! * `--json PATH` — also write the record as pretty JSON to `PATH`.
//! * `--list` — print the spec that would run, without running it.
//!
//! The record carries two cells: `virtual` (deterministic virtual-clock
//! replay — latency percentiles, throughput, fairness ratio, cache hit
//! rate, all gateable by `bench_gate --experiment service_load`) and `real`
//! (the same traffic on the real OS-thread pool, wall-clock, informational).
//!
//! Exit codes: 0 = every check passed, 1 = a service invariant failed
//! (lost jobs, breached admission bound, starving tenant, missed
//! concurrency floor), 2 = usage error.

use aiac_bench::harness::spec::service_load_spec;
use aiac_bench::harness::{run_specs, BenchRecord, Fidelity};

struct Args {
    fidelity: Fidelity,
    json: Option<String>,
    list: bool,
}

const USAGE: &str = "usage: service_load [--smoke | --full] [--json PATH] [--list]";

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        fidelity: Fidelity::Smoke,
        json: None,
        list: false,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => args.fidelity = Fidelity::Smoke,
            "--full" => args.fidelity = Fidelity::Full,
            "--json" => {
                args.json = Some(argv.next().ok_or("--json needs a file path")?);
            }
            "--list" => args.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// The headline metrics of each load cell, one line per metric.
fn render(record: &BenchRecord) -> String {
    let mut out = String::new();
    for exp in &record.experiments {
        out.push_str(&format!("## {}\n", exp.experiment));
        for cell in &exp.cells {
            out.push_str(&format!("  [{}]\n", cell.cell));
            for (name, unit) in [
                ("throughput_jobs_per_sec", "jobs/s"),
                ("real_throughput_jobs_per_sec", "jobs/s"),
                ("latency_p50_secs", "s"),
                ("latency_p95_secs", "s"),
                ("latency_p99_secs", "s"),
                ("fairness_ratio", "x"),
                ("cache_hit_rate", ""),
                ("rejection_rate", ""),
                ("jobs_generated", "jobs"),
                ("jobs_completed", "jobs"),
                ("peak_in_flight", "jobs"),
            ] {
                if let Some(metric) = cell.metric(name) {
                    out.push_str(&format!(
                        "    {:<28} {:>14.6} {unit}\n",
                        metric.name, metric.value
                    ));
                }
            }
            for failure in &cell.check_failures {
                out.push_str(&format!("    CHECK FAILED: {failure}\n"));
            }
        }
    }
    out
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            if err.is_empty() {
                println!("{USAGE}");
                return;
            }
            eprintln!("service_load: {err}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let spec = service_load_spec(args.fidelity);
    if args.list {
        let load = spec.service.as_ref().expect("service spec carries a load");
        println!(
            "{:<12} {:?}: {} jobs, {} tenants, {} workers, in-flight bound {}, \
             tenant depth {}, quantum {}, cache {}",
            spec.name,
            spec.kind,
            load.traffic.jobs,
            load.traffic.tenant_weights.len(),
            load.service.workers,
            load.service.max_in_flight,
            load.service.tenant_queue_depth,
            load.service.drr_quantum,
            load.service.cache_capacity,
        );
        return;
    }

    eprintln!("service_load: {} suite", args.fidelity.suite());
    let record = run_specs(
        std::slice::from_ref(&spec),
        args.fidelity.suite(),
        args.fidelity == Fidelity::Full,
    );
    print!("{}", render(&record));

    if let Some(path) = &args.json {
        if let Err(err) = std::fs::write(path, record.to_json_pretty() + "\n") {
            eprintln!("service_load: cannot write {path}: {err}");
            std::process::exit(2);
        }
        eprintln!("service_load: wrote {path}");
    }

    if !record.all_checks_passed() {
        for failure in record.check_failures() {
            eprintln!("service_load: check failed: {failure}");
        }
        std::process::exit(1);
    }
    println!("ok: the service survived its load with every invariant intact");
}
