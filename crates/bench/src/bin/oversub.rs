//! Oversubscription decomposition sweep (the Figure-3 scenario pushed past
//! one block per machine).
//!
//! The paper's decomposition experiments stop at 40 machines; this
//! experiment keeps the 40-host heterogeneous cluster fixed and instead
//! raises the number of *blocks* far beyond it (64 to 1024 by default), so
//! several blocks share each simulated machine. With per-host CPU scheduling
//! the co-located compute phases serialise over the host's cores, which is
//! exactly where the block-to-host placement policy starts to matter:
//!
//! * **round-robin** gives every host the same number of blocks, leaving the
//!   run bound by the Duron 800 machines (3x slower than the P4 2.4);
//! * **site-packed** keeps neighbouring blocks co-located (one site here, so
//!   it mostly differs from round-robin in which blocks share a host);
//! * **speed-weighted** hands out block counts proportional to host speed
//!   and should win on any heterogeneous platform.
//!
//! Prints one Figure-3-style table row per block count with the virtual
//! execution time under each policy (plus queueing and utilization detail on
//! stderr), then the JSON series. Exits non-zero if speed-weighted placement
//! fails to beat round-robin anywhere, so CI can run it as a smoke check.
//!
//! Usage: `oversub [blocks...]` — block counts default to `64 128 256 512
//! 1024`; `oversub 256` is the CI configuration.

use aiac_bench::scale::ScaleRing;
use aiac_core::config::RunConfig;
use aiac_core::placement::PlacementPolicy;
use aiac_core::runtime::simulated::SimulatedRuntime;
use aiac_envs::env::EnvKind;
use aiac_envs::threads::ProblemKind;
use aiac_netsim::topology::GridTopology;
use serde::Serialize;

/// Number of hosts of the paper's local heterogeneous cluster.
const HOSTS: usize = 40;
/// Reference-machine cost of one local iteration: large enough (2 ms) that
/// compute, not LAN latency, dominates — the regime of the paper's problems.
const ITERATION_COST_SECS: f64 = 2e-3;

#[derive(Debug, Serialize)]
struct PolicyCell {
    policy: String,
    time_secs: f64,
    converged: bool,
    cpu_queue_secs: f64,
    max_colocation: usize,
    mean_utilization: f64,
}

#[derive(Debug, Serialize)]
struct SweepRow {
    blocks: usize,
    cells: Vec<PolicyCell>,
}

fn parse_blocks(argv: impl Iterator<Item = String>) -> Result<Vec<usize>, String> {
    let mut blocks = Vec::new();
    for raw in argv {
        let n: usize = raw
            .parse()
            .map_err(|_| format!("block counts must be positive integers, got {raw:?}"))?;
        if n == 0 {
            return Err("block counts must be at least 1".to_string());
        }
        blocks.push(n);
    }
    if blocks.is_empty() {
        blocks = vec![64, 128, 256, 512, 1024];
    }
    Ok(blocks)
}

fn main() {
    let blocks = match parse_blocks(std::env::args().skip(1)) {
        Ok(blocks) => blocks,
        Err(err) => {
            eprintln!("oversub: {err}");
            eprintln!("usage: oversub [blocks...]");
            std::process::exit(2);
        }
    };

    let topology = GridTopology::local_hetero_cluster(HOSTS);
    let config = RunConfig::asynchronous(1e-8).with_streak(3);
    println!(
        "Oversubscription sweep: {} hosts ({}), {} cores total, {}",
        HOSTS,
        topology.name(),
        topology.total_cores(),
        EnvKind::MpiMadeleine.label(),
    );
    println!(
        "{:>7}  {:>14}  {:>14}  {:>16}  {:>8}",
        "blocks", "round-robin", "site-packed", "speed-weighted", "best"
    );

    let mut rows = Vec::new();
    let mut failures = 0;
    for &m in &blocks {
        let kernel = ScaleRing::new(m).with_cost(ITERATION_COST_SECS);
        let mut cells = Vec::new();
        for policy in PlacementPolicy::ALL {
            let runtime = SimulatedRuntime::new(
                topology.clone(),
                EnvKind::MpiMadeleine,
                ProblemKind::SparseLinear,
            )
            .with_placement(policy);
            let sim = runtime.run(&kernel, &config);
            let mean_utilization = if sim.host_loads.is_empty() {
                0.0
            } else {
                sim.host_loads.iter().map(|l| l.utilization).sum::<f64>()
                    / sim.host_loads.len() as f64
            };
            eprintln!(
                "{m:>5} blocks / {:<14}: {:>9.2} s virtual, colocation <= {}, \
                 cpu queue {:.2} s, mean utilization {:.0}%, converged: {}",
                policy.label(),
                sim.sim_time.as_secs(),
                sim.placement.max_colocation(),
                sim.report.cpu_queue_secs,
                mean_utilization * 100.0,
                sim.report.converged,
            );
            if !sim.report.converged {
                eprintln!(
                    "oversub: {m} blocks under {} did not converge",
                    policy.label()
                );
                failures += 1;
            }
            cells.push(PolicyCell {
                policy: policy.label().to_string(),
                time_secs: sim.sim_time.as_secs(),
                converged: sim.report.converged,
                cpu_queue_secs: sim.report.cpu_queue_secs,
                max_colocation: sim.placement.max_colocation(),
                mean_utilization,
            });
        }
        let best = cells
            .iter()
            .min_by(|a, b| a.time_secs.partial_cmp(&b.time_secs).expect("finite times"))
            .map(|c| c.policy.clone())
            .unwrap_or_default();
        println!(
            "{:>7}  {:>14.2}  {:>14.2}  {:>16.2}  {}",
            m, cells[0].time_secs, cells[1].time_secs, cells[2].time_secs, best
        );
        // The heterogeneous cluster is the speed-weighted policy's home turf:
        // equal per-host block counts leave the Durons on the critical path.
        if cells[2].time_secs >= cells[0].time_secs {
            eprintln!(
                "oversub: speed-weighted ({:.2} s) failed to beat round-robin ({:.2} s) \
                 at {m} blocks",
                cells[2].time_secs, cells[0].time_secs
            );
            failures += 1;
        }
        rows.push(SweepRow { blocks: m, cells });
    }

    println!();
    println!(
        "{}",
        serde_json::to_string_pretty(&rows).expect("rows serialise to JSON")
    );
    if failures > 0 {
        std::process::exit(1);
    }
    println!("ok: speed-weighted placement beat round-robin at every block count");
}
