//! Oversubscription decomposition sweep (the Figure-3 scenario pushed past
//! one block per machine).
//!
//! A thin wrapper over the harness's `oversub` spec
//! ([`aiac_bench::harness::spec::oversub_spec`]): the 40-host heterogeneous
//! cluster stays fixed while the number of *blocks* rises far beyond it, so
//! several blocks share each simulated machine and the block-to-host
//! placement policy starts to matter. The spec sweeps all three policies
//! (round-robin, site-packed, speed-weighted) and its checks assert that
//! every run converges and that speed-weighted placement beats round-robin
//! at every block count — the property CI smoke-checks.
//!
//! Prints one Figure-3-style table row per block count plus the record's
//! JSON.
//!
//! Usage: `oversub [blocks...]` — block counts default to
//! `64 128 256 512 1024`; `oversub 256` is the CI configuration.
//!
//! Exit codes: 0 = all checks passed, 1 = a check failed, 2 = malformed
//! arguments (`--help` prints this usage and exits 0).

use aiac_bench::harness::run_spec;
use aiac_bench::harness::spec::oversub_spec;
use aiac_core::placement::PlacementPolicy;

const USAGE: &str = "usage: oversub [blocks...]\n\
    \n\
    Sweeps block counts (default: 64 128 256 512 1024) over the 40-host\n\
    heterogeneous cluster under all three placement policies. Exits 2 on\n\
    malformed arguments, 1 if any run fails its checks (convergence,\n\
    speed-weighted beats round-robin).";

fn parse_blocks(argv: impl Iterator<Item = String>) -> Result<Option<Vec<usize>>, String> {
    let mut blocks = Vec::new();
    for raw in argv {
        if raw == "--help" || raw == "-h" {
            return Ok(None);
        }
        let n: usize = raw
            .parse()
            .map_err(|_| format!("block counts must be positive integers, got {raw:?}"))?;
        if n == 0 {
            return Err("block counts must be at least 1".to_string());
        }
        blocks.push(n);
    }
    if blocks.is_empty() {
        blocks = vec![64, 128, 256, 512, 1024];
    }
    Ok(Some(blocks))
}

fn main() {
    let blocks = match parse_blocks(std::env::args().skip(1)) {
        Ok(Some(blocks)) => blocks,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(err) => {
            eprintln!("oversub: {err}");
            eprintln!("usage: oversub [blocks...] (see oversub --help)");
            std::process::exit(2);
        }
    };

    let spec = oversub_spec(&blocks);
    println!(
        "Oversubscription sweep: {} on {} ({} block counts)",
        spec.profiles[0].label(),
        spec.platform.label(),
        blocks.len(),
    );
    let record = run_spec(&spec);

    println!(
        "{:>7}  {:>14}  {:>14}  {:>16}  {:>8}",
        "blocks", "round-robin", "site-packed", "speed-weighted", "best"
    );
    let mut failed = false;
    for &m in &blocks {
        let time_of = |policy: PlacementPolicy| {
            record
                .cell(&format!("{m}-blocks/{}", policy.label()))
                .and_then(|c| c.metric("sim_time_secs"))
                .map(|metric| metric.value)
                .unwrap_or(f64::NAN)
        };
        let times: Vec<(PlacementPolicy, f64)> = PlacementPolicy::ALL
            .into_iter()
            .map(|p| (p, time_of(p)))
            .collect();
        // A missing cell/metric shows as NaN in the table; skip it here so
        // the "best" column degrades to "-" instead of panicking.
        let best = times
            .iter()
            .filter(|(_, t)| !t.is_nan())
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN filtered out"))
            .map(|(p, _)| p.label())
            .unwrap_or("-");
        println!(
            "{:>7}  {:>14.2}  {:>14.2}  {:>16.2}  {}",
            m, times[0].1, times[1].1, times[2].1, best
        );
    }
    for cell in &record.cells {
        for failure in &cell.check_failures {
            eprintln!("oversub: {}: {failure}", cell.cell);
            failed = true;
        }
    }

    println!();
    println!(
        "{}",
        serde_json::to_string_pretty(&record).expect("records serialise to JSON")
    );
    if failed {
        std::process::exit(1);
    }
    println!("ok: speed-weighted placement beat round-robin at every block count");
}
