//! Experiment scaling.
//!
//! The paper's problem sizes (a 2 000 000 × 2 000 000 matrix, a 600 × 600 and
//! a 1000 × 1000 grid) are far beyond what a unit-test or CI budget allows,
//! and the comparison the paper makes — synchronous versus asynchronous, and
//! environment versus environment, at a *fixed* problem size — is preserved
//! at smaller sizes. [`ExperimentScale`] centralises the sizes used by every
//! binary so they stay consistent, and switches to the paper's original
//! values when the environment variable `AIAC_FULL` is set to `1`.

use aiac_core::kernel::{BlockUpdate, DependencyView, InPlaceUpdate, IterativeKernel};
use serde::{Deserialize, Serialize};

/// The problem sizes used by the experiment binaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Whether the paper-scale sizes are in force.
    pub full_scale: bool,
    /// Sparse linear problem: matrix dimension (paper: 2 000 000).
    pub sparse_n: usize,
    /// Sparse linear problem: number of processors on the distant grid.
    pub sparse_blocks: usize,
    /// Chemical problem: grid points per axis for Tables 1 and 3 (paper: 600).
    pub chem_grid: usize,
    /// Chemical problem: number of processors for Table 3.
    pub chem_blocks: usize,
    /// Chemical problem: simulated time interval in seconds (paper: 2160).
    pub chem_t_end: f64,
    /// Figure 3: grid points per axis (paper: 1000).
    pub fig3_grid: usize,
    /// Figure 3: simulated time interval in seconds.
    pub fig3_t_end: f64,
    /// Figure 3: processor counts swept on the local cluster (paper: 10–40).
    pub fig3_processors: Vec<usize>,
    /// Stopping threshold used by both problems.
    pub epsilon: f64,
    /// Local-convergence streak used by the asynchronous runs.
    pub streak: usize,
}

impl ExperimentScale {
    /// The scaled-down configuration used by default.
    pub fn scaled() -> Self {
        Self {
            full_scale: false,
            sparse_n: 6_000,
            sparse_blocks: 12,
            chem_grid: 60,
            chem_blocks: 12,
            chem_t_end: 720.0,
            fig3_grid: 60,
            fig3_t_end: 360.0,
            fig3_processors: vec![10, 15, 20, 25, 30, 35, 40],
            epsilon: 1e-7,
            streak: 3,
        }
    }

    /// The paper's original sizes (Table 1 and Figure 3).
    pub fn full() -> Self {
        Self {
            full_scale: true,
            sparse_n: 2_000_000,
            sparse_blocks: 12,
            chem_grid: 600,
            chem_blocks: 12,
            chem_t_end: 2_160.0,
            fig3_grid: 1_000,
            fig3_t_end: 2_160.0,
            fig3_processors: vec![10, 15, 20, 25, 30, 35, 40],
            epsilon: 1e-7,
            streak: 3,
        }
    }

    /// Reads `AIAC_FULL` from the environment and returns the matching scale.
    pub fn from_env() -> Self {
        match std::env::var("AIAC_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Self::full(),
            _ => Self::scaled(),
        }
    }

    /// A one-line description printed at the top of every experiment.
    pub fn describe(&self) -> String {
        format!(
            "{} scale: sparse n = {}, chemical grid = {}x{}, figure-3 grid = {}x{} ({} procs swept)",
            if self.full_scale { "paper" } else { "scaled" },
            self.sparse_n,
            self.chem_grid,
            self.chem_grid,
            self.fig3_grid,
            self.fig3_grid,
            self.fig3_processors.len()
        )
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::scaled()
    }
}

/// A lightweight ring-coupled contraction used by the worker-pool scale
/// experiment (`scale_pool`): `x_i ← a·x_{i−1} + b·x_i + c·x_{i+1} + d` with
/// `|a| + |b| + |c| < 1`, one scalar unknown per block.
///
/// Unlike the paper's benchmark problems this kernel costs almost nothing per
/// iteration, which is the point: at 1024+ blocks the experiment measures the
/// *executor* — thread-pool scheduling and mailbox traffic — rather than the
/// numerics, and the known fixed point `d / (1 − a − b − c)` makes the result
/// checkable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleRing {
    /// Number of blocks (= processors being emulated).
    pub blocks: usize,
    /// Virtual cost of one local iteration on the reference machine, in
    /// seconds. The default (one microsecond, matching the trait default for
    /// a one-unknown block) measures the executor; the simulated
    /// oversubscription experiments raise it so compute — not network
    /// latency — dominates, as in the paper's workloads.
    pub cost_secs: f64,
}

impl ScaleRing {
    const A: f64 = 0.2;
    const B: f64 = 0.3;
    const C: f64 = 0.2;
    const D: f64 = 1.0;

    /// Creates a ring of `blocks` scalar blocks.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks > 0, "the ring needs at least one block");
        Self {
            blocks,
            cost_secs: 1e-6,
        }
    }

    /// Sets the virtual per-iteration cost (builder style).
    pub fn with_cost(mut self, cost_secs: f64) -> Self {
        assert!(cost_secs > 0.0, "iteration cost must be positive");
        self.cost_secs = cost_secs;
        self
    }

    /// The exact fixed point every component converges to.
    pub fn fixed_point(&self) -> f64 {
        Self::D / (1.0 - Self::A - Self::B - Self::C)
    }
}

impl IterativeKernel for ScaleRing {
    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn block_len(&self, _block: usize) -> usize {
        1
    }

    fn initial_block(&self, _block: usize) -> Vec<f64> {
        vec![0.0]
    }

    fn dependencies(&self, block: usize) -> Vec<usize> {
        if self.blocks == 1 {
            return Vec::new();
        }
        let left = (block + self.blocks - 1) % self.blocks;
        let right = (block + 1) % self.blocks;
        if left == right {
            vec![left]
        } else {
            vec![left, right]
        }
    }

    fn update_block(&self, block: usize, local: &[f64], others: &DependencyView) -> BlockUpdate {
        let mut values = vec![0.0];
        let update = self.update_block_into(block, local, others, &mut values);
        BlockUpdate {
            values,
            residual: update.residual,
        }
    }

    fn update_block_into(
        &self,
        block: usize,
        local: &[f64],
        others: &DependencyView,
        out: &mut [f64],
    ) -> InPlaceUpdate {
        let left = (block + self.blocks - 1) % self.blocks;
        let right = (block + 1) % self.blocks;
        let xl = others.get(left).map_or(0.0, |v| v[0]);
        let xr = others.get(right).map_or(0.0, |v| v[0]);
        let new = Self::A * xl + Self::B * local[0] + Self::C * xr + Self::D;
        out[0] = new;
        InPlaceUpdate {
            residual: (new - local[0]).abs(),
            copied: false,
        }
    }

    fn iteration_cost(&self, _block: usize) -> f64 {
        self.cost_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_configuration_is_small_enough_for_tests() {
        let s = ExperimentScale::scaled();
        assert!(!s.full_scale);
        assert!(s.sparse_n <= 20_000);
        assert!(s.chem_grid <= 100);
        assert!(s.chem_t_end <= 2_160.0);
        assert_eq!(s.fig3_processors.first(), Some(&10));
        assert_eq!(s.fig3_processors.last(), Some(&40));
    }

    #[test]
    fn full_configuration_matches_table1() {
        let f = ExperimentScale::full();
        assert!(f.full_scale);
        assert_eq!(f.sparse_n, 2_000_000);
        assert_eq!(f.chem_grid, 600);
        assert_eq!(f.fig3_grid, 1_000);
        assert_eq!(f.chem_t_end, 2_160.0);
    }

    #[test]
    fn describe_mentions_the_scale() {
        assert!(ExperimentScale::scaled().describe().contains("scaled"));
        assert!(ExperimentScale::full().describe().contains("paper"));
    }

    #[test]
    fn scale_ring_is_a_ring_with_a_known_fixed_point() {
        let ring = ScaleRing::new(5);
        assert_eq!(ring.dependencies(0), vec![4, 1]);
        assert_eq!(ring.total_len(), 5);
        assert!((ring.fixed_point() - 1.0 / 0.3).abs() < 1e-12);
        assert_eq!(ring.iteration_cost(0), 1e-6);
        assert_eq!(ring.with_cost(2e-3).iteration_cost(0), 2e-3);
        // two blocks collapse to a single shared neighbour, one block to none
        assert_eq!(ScaleRing::new(2).dependencies(0), vec![1]);
        assert!(ScaleRing::new(1).dependencies(0).is_empty());
    }

    #[test]
    fn scale_ring_converges_sequentially() {
        use aiac_core::config::RunConfig;
        use aiac_core::runtime::sequential::SequentialRuntime;
        let ring = ScaleRing::new(16);
        let report = SequentialRuntime::new().run(&ring, &RunConfig::synchronous(1e-10));
        assert!(report.converged);
        for v in &report.solution {
            assert!((v - ring.fixed_point()).abs() < 1e-8);
        }
    }
}
