//! Plain-text table rendering in the style of the paper's tables.

use serde::{Deserialize, Serialize};

/// One row of an execution-time table (Tables 2 and 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// Cluster / platform label (e.g. `"Ethernet"`, `"Ethernet and ADSL"`).
    pub cluster: String,
    /// Version label (e.g. `"sync MPI"`, `"async PM2"`).
    pub version: String,
    /// Execution time in (virtual) seconds.
    pub time_secs: f64,
    /// Speed ratio against the synchronous reference of the same cluster.
    pub ratio: f64,
}

impl TableRow {
    /// Builds a row; the ratio is computed against `reference_time`.
    pub fn new(cluster: &str, version: &str, time_secs: f64, reference_time: f64) -> Self {
        assert!(time_secs > 0.0, "execution time must be positive");
        Self {
            cluster: cluster.to_string(),
            version: version.to_string(),
            time_secs,
            ratio: reference_time / time_secs,
        }
    }
}

/// Renders rows as an aligned text table with the same columns as the paper:
/// cluster, version, execution time, speed ratio.
pub fn render_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"=".repeat(title.len()));
    out.push('\n');
    let cluster_width = rows
        .iter()
        .map(|r| r.cluster.len())
        .chain(["Cluster".len()])
        .max()
        .unwrap_or(8);
    let version_width = rows
        .iter()
        .map(|r| r.version.len())
        .chain(["Version".len()])
        .max()
        .unwrap_or(8);
    out.push_str(&format!(
        "{:<cw$}  {:<vw$}  {:>12}  {:>10}\n",
        "Cluster",
        "Version",
        "Exec time (s)",
        "Speed ratio",
        cw = cluster_width,
        vw = version_width
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<cw$}  {:<vw$}  {:>12.1}  {:>10.2}\n",
            row.cluster,
            row.version,
            row.time_secs,
            row.ratio,
            cw = cluster_width,
            vw = version_width
        ));
    }
    out
}

/// Renders a generic two-column listing (used for Table 1 and Table 4).
pub fn render_listing(title: &str, entries: &[(String, String)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"=".repeat(title.len()));
    out.push('\n');
    let key_width = entries.iter().map(|(k, _)| k.len()).max().unwrap_or(8);
    for (k, v) in entries {
        out.push_str(&format!("{:<kw$}  {}\n", k, v, kw = key_width));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_reference_over_time() {
        let row = TableRow::new("Ethernet", "async PM2", 500.0, 1000.0);
        assert!((row.ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sync_reference_has_ratio_one() {
        let row = TableRow::new("Ethernet", "sync MPI", 914.0, 914.0);
        assert!((row.ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_table_contains_every_row_and_header() {
        let rows = vec![
            TableRow::new("Ethernet", "sync MPI", 914.0, 914.0),
            TableRow::new("Ethernet", "async OmniORB 4", 507.0, 914.0),
        ];
        let text = render_table("Table 2", &rows);
        assert!(text.contains("Table 2"));
        assert!(text.contains("sync MPI"));
        assert!(text.contains("async OmniORB 4"));
        assert!(text.contains("Speed ratio"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn render_listing_aligns_keys() {
        let text = render_listing(
            "Table 1",
            &[
                ("matrix size".to_string(), "2000000 x 2000000".to_string()),
                ("time step".to_string(), "180 s".to_string()),
            ],
        );
        assert!(text.contains("matrix size"));
        assert!(text.contains("180 s"));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_time_is_rejected() {
        TableRow::new("c", "v", 0.0, 1.0);
    }
}
