//! `aiac-bench` — the experiment harness.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it:
//!
//! | paper artefact | binary          |
//! |----------------|-----------------|
//! | Table 1        | `table1`        |
//! | Table 2        | `table2`        |
//! | Table 3        | `table3`        |
//! | Table 4        | `table4`        |
//! | Figures 1–2    | `figure12_traces` |
//! | Figure 3       | `figure3`       |
//! | extensions     | `ablation_overhead`, `ablation_streak`, `ablation_gamma` |
//!
//! The experiments default to scaled-down problem sizes so the whole suite
//! runs in minutes on a laptop; setting `AIAC_FULL=1` switches to the paper's
//! original sizes (two million unknowns, 600×600 grid), which needs a much
//! larger machine and a lot of patience. Either way the *structure* of every
//! experiment — platform, environments, algorithms, measurement — follows the
//! paper; `EXPERIMENTS.md` records the measured numbers next to the published
//! ones.
//!
//! Criterion micro-benchmarks for the individual components (SpMV, GMRES,
//! runtime overhead, threaded sync-vs-async, simulation throughput) live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod scale;
pub mod table;

pub use experiments::{chemical_experiment, sparse_experiment, ExperimentResult};
pub use harness::{BenchRecord, ExperimentSpec, Fidelity};
pub use scale::ExperimentScale;
pub use table::{render_listing, render_table, TableRow};
