//! The versioned benchmark-record schema.
//!
//! A [`BenchRecord`] is the machine-readable output of one harness
//! invocation: one [`ExperimentRecord`] per spec, one [`CellRecord`] per
//! swept configuration, and one [`MetricSample`] per measured quantity.
//! Records serialise to JSON (`BENCH_results.json` artifacts,
//! `BENCH_baseline.json` committed in the repo root) and parse back, which
//! is what the [`baseline`](crate::harness::baseline) comparator gates on.
//!
//! Two attributes drive the gate:
//!
//! * `deterministic` — virtual-clock quantities from the simulated runtime
//!   reproduce bit-identically on any machine and are compared against the
//!   baseline; wall-clock quantities vary with the host and are recorded
//!   for trend-watching only.
//! * `direction` — whether a larger value is a regression
//!   ([`MetricDirection::LowerIsBetter`]), an improvement, or neither
//!   (purely informational).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version of the record layout. Bump when the schema changes shape;
/// the comparator refuses to gate across versions.
pub const SCHEMA_VERSION: u32 = 1;

/// How a metric's value relates to "better".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricDirection {
    /// Smaller is better (times, message counts): growth is a regression.
    LowerIsBetter,
    /// Larger is better (speed ratios): shrinkage is a regression.
    HigherIsBetter,
    /// Neither: recorded for context, never gated.
    Informational,
}

/// One measured quantity of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name, unique within its cell (e.g. `"sim_time_secs"`).
    pub name: String,
    /// The value.
    pub value: f64,
    /// True when the value reproduces bit-identically on any machine
    /// (simulated virtual-clock quantities). Only deterministic metrics
    /// are compared against the baseline.
    pub deterministic: bool,
    /// Which way "worse" points.
    pub direction: MetricDirection,
}

impl MetricSample {
    /// A deterministic, gateable lower-is-better sample.
    pub fn gauge(name: &str, value: f64) -> Self {
        MetricSample {
            name: name.to_string(),
            value,
            deterministic: true,
            direction: MetricDirection::LowerIsBetter,
        }
    }

    /// A nondeterministic (wall-clock) lower-is-better sample.
    pub fn wall(name: &str, value: f64) -> Self {
        MetricSample {
            name: name.to_string(),
            value,
            deterministic: false,
            direction: MetricDirection::LowerIsBetter,
        }
    }

    /// A deterministic context sample that is never gated.
    pub fn info(name: &str, value: f64) -> Self {
        MetricSample {
            name: name.to_string(),
            value,
            deterministic: true,
            direction: MetricDirection::Informational,
        }
    }

    /// Flips the direction to higher-is-better (builder style).
    pub fn higher_is_better(mut self) -> Self {
        self.direction = MetricDirection::HigherIsBetter;
        self
    }
}

/// One swept configuration of an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Cell key, unique within the experiment (e.g. `"async-pm2"` or
    /// `"128-blocks/speed-weighted"`).
    pub cell: String,
    /// Environment-profile slug the cell ran under.
    pub env: String,
    /// Number of blocks of the run (0 for parameter-only cells).
    pub blocks: usize,
    /// The measured quantities.
    pub metrics: Vec<MetricSample>,
    /// Human-readable descriptions of every failed [`Check`]
    /// (empty = the cell is healthy).
    ///
    /// [`Check`]: crate::harness::spec::Check
    pub check_failures: Vec<String>,
}

impl CellRecord {
    /// Looks a metric up by name.
    pub fn metric(&self, name: &str) -> Option<&MetricSample> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// All cells of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// The spec's name (`"table2"`, `"oversub"`, ...).
    pub experiment: String,
    /// One record per swept configuration, in sweep order.
    pub cells: Vec<CellRecord>,
}

impl ExperimentRecord {
    /// Looks a cell up by key.
    pub fn cell(&self, key: &str) -> Option<&CellRecord> {
        self.cells.iter().find(|c| c.cell == key)
    }
}

/// The root of the schema: one harness invocation's complete output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Which suite produced the record (`"smoke"` or `"full"`).
    pub suite: String,
    /// Whether the paper-scale problem sizes (`AIAC_FULL=1`) were in force.
    pub full_scale: bool,
    /// One record per experiment, in registry order.
    pub experiments: Vec<ExperimentRecord>,
}

impl BenchRecord {
    /// Creates an empty record for `suite`.
    pub fn new(suite: &str, full_scale: bool) -> Self {
        BenchRecord {
            schema_version: SCHEMA_VERSION,
            suite: suite.to_string(),
            full_scale,
            experiments: Vec::new(),
        }
    }

    /// Looks an experiment up by name.
    pub fn experiment(&self, name: &str) -> Option<&ExperimentRecord> {
        self.experiments.iter().find(|e| e.experiment == name)
    }

    /// Renders the record as pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("records always serialise")
    }

    /// Parses and validates a record from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let record: BenchRecord =
            serde_json::from_str(text).map_err(|e| format!("malformed record JSON: {e}"))?;
        record.validate()?;
        Ok(record)
    }

    /// Checks the schema invariants: supported version, unique
    /// experiment/cell/metric keys, finite deterministic values.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema version {} (this build reads version {})",
                self.schema_version, SCHEMA_VERSION
            ));
        }
        let mut seen = BTreeMap::new();
        for exp in &self.experiments {
            for cell in &exp.cells {
                for metric in &cell.metrics {
                    let key = metric_key(&exp.experiment, &cell.cell, &metric.name);
                    if seen.insert(key.clone(), ()).is_some() {
                        return Err(format!("duplicate metric key {key:?}"));
                    }
                    if metric.deterministic && !metric.value.is_finite() {
                        return Err(format!(
                            "deterministic metric {key:?} has non-finite value {}",
                            metric.value
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Flattens the record's *gateable* metrics — deterministic and with a
    /// non-informational direction — keyed `experiment/cell/metric`.
    pub fn gateable_metrics(&self) -> BTreeMap<String, (f64, MetricDirection)> {
        let mut out = BTreeMap::new();
        for exp in &self.experiments {
            for cell in &exp.cells {
                for metric in &cell.metrics {
                    if metric.deterministic && metric.direction != MetricDirection::Informational {
                        out.insert(
                            metric_key(&exp.experiment, &cell.cell, &metric.name),
                            (metric.value, metric.direction),
                        );
                    }
                }
            }
        }
        out
    }

    /// Every check failure across every cell, prefixed with its location.
    pub fn check_failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for exp in &self.experiments {
            for cell in &exp.cells {
                for failure in &cell.check_failures {
                    out.push(format!("{}/{}: {failure}", exp.experiment, cell.cell));
                }
            }
        }
        out
    }

    /// True when no cell recorded a check failure.
    pub fn all_checks_passed(&self) -> bool {
        self.experiments
            .iter()
            .all(|e| e.cells.iter().all(|c| c.check_failures.is_empty()))
    }
}

/// The canonical `experiment/cell/metric` key of one metric.
pub fn metric_key(experiment: &str, cell: &str, metric: &str) -> String {
    format!("{experiment}/{cell}/{metric}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> BenchRecord {
        BenchRecord {
            schema_version: SCHEMA_VERSION,
            suite: "smoke".to_string(),
            full_scale: false,
            experiments: vec![ExperimentRecord {
                experiment: "table2".to_string(),
                cells: vec![CellRecord {
                    cell: "async-pm2".to_string(),
                    env: "async-pm2".to_string(),
                    blocks: 6,
                    metrics: vec![
                        MetricSample::gauge("sim_time_secs", 12.5),
                        MetricSample::wall("wall_median_secs", 0.3),
                        MetricSample::info("max_colocation", 1.0),
                        MetricSample::gauge("speed_ratio", 1.8).higher_is_better(),
                    ],
                    check_failures: Vec::new(),
                }],
            }],
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let record = sample_record();
        let text = record.to_json_pretty();
        let back = BenchRecord::from_json(&text).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn gateable_metrics_exclude_wall_and_informational_samples() {
        let metrics = sample_record().gateable_metrics();
        assert_eq!(metrics.len(), 2);
        assert!(metrics.contains_key("table2/async-pm2/sim_time_secs"));
        assert!(metrics.contains_key("table2/async-pm2/speed_ratio"));
        assert!(!metrics.contains_key("table2/async-pm2/wall_median_secs"));
        assert!(!metrics.contains_key("table2/async-pm2/max_colocation"));
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut record = sample_record();
        record.schema_version = SCHEMA_VERSION + 1;
        let err = BenchRecord::from_json(&record.to_json_pretty()).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn duplicate_metric_keys_are_rejected() {
        let mut record = sample_record();
        let dup = record.experiments[0].cells[0].metrics[0].clone();
        record.experiments[0].cells[0].metrics.push(dup);
        let err = record.validate().unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn non_finite_deterministic_values_are_rejected() {
        let mut record = sample_record();
        record.experiments[0].cells[0].metrics[0].value = f64::INFINITY;
        assert!(record.validate().is_err());
        // ... but a non-finite *wall* sample is tolerated (a hung warmup
        // on a loaded machine should not corrupt the record).
        let mut record = sample_record();
        record.experiments[0].cells[0].metrics[1].value = f64::INFINITY;
        assert!(record.validate().is_ok());
    }

    #[test]
    fn check_failures_are_located_and_flip_the_verdict() {
        let mut record = sample_record();
        assert!(record.all_checks_passed());
        record.experiments[0].cells[0]
            .check_failures
            .push("did not converge".to_string());
        assert!(!record.all_checks_passed());
        let failures = record.check_failures();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].starts_with("table2/async-pm2:"));
    }

    #[test]
    fn lookups_find_experiments_cells_and_metrics() {
        let record = sample_record();
        let cell = record
            .experiment("table2")
            .and_then(|e| e.cell("async-pm2"))
            .unwrap();
        assert_eq!(cell.metric("sim_time_secs").unwrap().value, 12.5);
        assert!(record.experiment("nope").is_none());
        assert!(cell.metric("nope").is_none());
    }
}
