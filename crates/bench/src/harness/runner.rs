//! Executes [`ExperimentSpec`]s and collects [`BenchRecord`]s.
//!
//! The runner is the only place where a spec meets a runtime: it builds the
//! kernel, picks the back-end each environment profile maps to (simulated
//! grid or real worker pool), repeats the run `warmup + repeats` times,
//! flattens the deterministic [`SimMetrics`] and the wall-clock [`Summary`]
//! into [`MetricSample`]s, and evaluates the spec's [`Check`]s — a failed
//! check lands in the cell's `check_failures`, which the driving binaries
//! turn into a non-zero exit.

use std::time::Instant;

use aiac_core::config::{RunConfig, StealPolicy};
use aiac_core::depgraph::DependencyGraph;
use aiac_core::kernel::IterativeKernel;
use aiac_core::report::RunReport;
use aiac_core::runtime::simulated::{SimMetrics, SimulatedRuntime};
use aiac_core::runtime::threaded::ThreadedRuntime;
use aiac_envs::profile::EnvProfile;
use aiac_envs::threads::ProblemKind;
use aiac_netsim::topology::GridTopology;
use aiac_obs::MetricsRegistry;
use aiac_service::{run_real_load, run_virtual, LoadReport};
use aiac_solvers::sparse_linear::{SparseLinearParams, SparseLinearProblem};

use crate::harness::record::{
    BenchRecord, CellRecord, ExperimentRecord, MetricDirection, MetricSample,
};
use crate::harness::spec::{Check, ExperimentKind, ExperimentSpec, Fidelity, ProblemSpec};
use crate::harness::stats::Summary;
use crate::scale::{ExperimentScale, ScaleRing};

/// A kernel built from a [`ProblemSpec`]. The sparse problem carries its
/// whole matrix, hence the box keeping the variants comparable in size.
enum Kernel {
    Sparse(Box<SparseLinearProblem>),
    Ring(ScaleRing),
}

impl Kernel {
    fn build(problem: &ProblemSpec, blocks_override: Option<usize>) -> Kernel {
        match *problem {
            ProblemSpec::SparseLinear { n, blocks } => {
                Kernel::Sparse(Box::new(SparseLinearProblem::new(
                    SparseLinearParams::paper_scaled(n, blocks_override.unwrap_or(blocks)),
                )))
            }
            ProblemSpec::Ring { blocks, cost_secs } => {
                Kernel::Ring(ScaleRing::new(blocks_override.unwrap_or(blocks)).with_cost(cost_secs))
            }
            ProblemSpec::Chemical { .. } => panic!(
                "chemical problems run through their own stepping loop and are \
                 not routed through the harness runner yet"
            ),
        }
    }

    fn as_kernel(&self) -> &dyn IterativeKernel {
        match self {
            Kernel::Sparse(p) => p.as_ref(),
            Kernel::Ring(r) => r,
        }
    }

    fn blocks(&self) -> usize {
        self.as_kernel().num_blocks()
    }

    fn problem_kind(&self) -> ProblemKind {
        // Both harness problems follow the sparse-linear communication
        // scheme of Table 4 (the chemical scheme is neighbour-only).
        ProblemKind::SparseLinear
    }
}

/// The run configuration for one cell under `spec`'s thresholds.
fn config_for_mode(synchronous: bool, policy: StealPolicy, spec: &ExperimentSpec) -> RunConfig {
    let mut config = if synchronous {
        RunConfig::synchronous(spec.epsilon)
    } else {
        RunConfig::asynchronous(spec.epsilon).with_streak(spec.streak)
    };
    if let Some(workers) = spec.workers {
        config = config.with_num_workers(workers);
    }
    config.with_steal_policy(policy)
}

/// The run configuration a profile uses under `spec`'s thresholds.
fn config_for(profile: EnvProfile, spec: &ExperimentSpec) -> RunConfig {
    config_for_mode(profile.is_synchronous(), StealPolicy::WorkStealing, spec)
}

/// Flattens the deterministic simulated-clock metrics into samples.
fn sim_metric_samples(sim: &SimMetrics) -> Vec<MetricSample> {
    vec![
        MetricSample::gauge("sim_time_secs", sim.sim_time_secs),
        MetricSample::gauge("cpu_queue_secs", sim.cpu_queue_secs),
        MetricSample::gauge("cpu_busy_secs", sim.cpu_busy_secs),
        MetricSample::gauge("net_queue_secs", sim.net_queue_secs),
        MetricSample::gauge("data_messages", sim.data_messages as f64),
        MetricSample::gauge("control_messages", sim.control_messages as f64),
        MetricSample::gauge("data_bytes", sim.data_bytes as f64),
        MetricSample::gauge("total_iterations", sim.total_iterations as f64),
        MetricSample::gauge("max_iterations", sim.max_iterations as f64),
        MetricSample::info("mean_utilization", sim.mean_utilization),
        MetricSample::info("max_colocation", sim.max_colocation as f64),
    ]
}

/// Renders every entry of a registry snapshot as a metric sample.
///
/// This is the one bridge between the observability plane's
/// [`MetricsRegistry`] and the bench-record schema: the reports build
/// their registry (`RunReport::metrics_registry`,
/// `LoadReport::metrics_registry`) and the harness renders *all* of it, so
/// a counter registered there becomes a bench metric — and, when flagged
/// deterministic with a non-informational direction, a gateable one — with
/// no hand-maintained name list here.
fn registry_samples(registry: &MetricsRegistry) -> Vec<MetricSample> {
    registry
        .snapshot()
        .iter()
        .map(|e| MetricSample {
            name: e.name.to_string(),
            value: e.value,
            deterministic: e.deterministic,
            direction: match e.direction {
                aiac_obs::MetricDirection::LowerIsBetter => MetricDirection::LowerIsBetter,
                aiac_obs::MetricDirection::HigherIsBetter => MetricDirection::HigherIsBetter,
                aiac_obs::MetricDirection::Informational => MetricDirection::Informational,
            },
        })
        .collect()
}

/// Flattens a wall-clock summary into (nondeterministic) samples.
fn wall_samples(summary: &Summary) -> Vec<MetricSample> {
    vec![
        MetricSample::wall("wall_min_secs", summary.min),
        MetricSample::wall("wall_median_secs", summary.median),
        MetricSample::wall("wall_p95_secs", summary.p95),
        MetricSample::wall("wall_p99_secs", summary.p99),
    ]
}

/// One executed cell, keeping the raw report around for check evaluation.
struct CellOutcome {
    record: CellRecord,
    report: Option<RunReport>,
    sim: Option<SimMetrics>,
}

impl CellOutcome {
    fn fail(&mut self, message: String) {
        self.record.check_failures.push(message);
    }
}

/// Runs one cell on the simulated runtime, measuring wall time over
/// `warmup + repeats` repetitions (the simulation itself is deterministic,
/// so the virtual metrics come from the last repetition).
fn run_simulated_cell(
    cell_key: &str,
    kernel: &Kernel,
    topology: &GridTopology,
    profile: EnvProfile,
    placement: Option<aiac_core::placement::PlacementPolicy>,
    spec: &ExperimentSpec,
) -> CellOutcome {
    let env_kind = profile
        .env_kind()
        .expect("simulated cells use grid profiles");
    let config = config_for(profile, spec);
    let mut runtime = SimulatedRuntime::new(topology.clone(), env_kind, kernel.problem_kind());
    if let Some(policy) = placement {
        runtime = runtime.with_placement(policy);
    }
    let mut walls = Vec::with_capacity(spec.repeats);
    let mut last = None;
    for rep in 0..(spec.warmup + spec.repeats.max(1)) {
        let start = Instant::now();
        let outcome = runtime.run(kernel.as_kernel(), &config);
        let wall = start.elapsed().as_secs_f64();
        if rep >= spec.warmup {
            walls.push(wall);
        }
        last = Some(outcome);
    }
    let outcome = last.expect("at least one repetition ran");
    let sim = outcome.metrics();
    let mut metrics = sim_metric_samples(&sim);
    metrics.extend(wall_samples(
        &Summary::from_samples(&walls).expect("wall samples are non-empty and non-NaN"),
    ));
    CellOutcome {
        record: CellRecord {
            cell: cell_key.to_string(),
            env: profile.slug().to_string(),
            blocks: kernel.blocks(),
            metrics,
            check_failures: Vec::new(),
        },
        report: Some(outcome.report),
        sim: Some(sim),
    }
}

/// Runs one cell on the real threaded executor. Everything measured here is
/// wall-clock or scheduling-dependent, so only structurally deterministic
/// quantities (edge counts) are marked gateable.
fn run_threaded_cell(
    cell_key: &str,
    kernel: &Kernel,
    profile: EnvProfile,
    synchronous: bool,
    policy: StealPolicy,
    spec: &ExperimentSpec,
) -> CellOutcome {
    let config = config_for_mode(synchronous, policy, spec);
    let runtime = ThreadedRuntime::new();
    let mut walls = Vec::with_capacity(spec.repeats);
    let mut last: Option<RunReport> = None;
    let mut run_error = None;
    for rep in 0..(spec.warmup + spec.repeats.max(1)) {
        let start = Instant::now();
        match runtime.try_run(kernel.as_kernel(), &config) {
            Ok(report) => {
                let wall = start.elapsed().as_secs_f64();
                if rep >= spec.warmup {
                    walls.push(wall);
                }
                last = Some(report);
            }
            Err(err) => {
                run_error = Some(err.to_string());
                break;
            }
        }
    }
    // An invalid config (e.g. an explicit zero worker count) already failed
    // `try_run` above; resolving the pool size would assert, so report the
    // unresolved placeholder instead.
    let workers = match config.try_validate() {
        Ok(()) => config.effective_num_workers(kernel.blocks()),
        Err(_) => 0,
    };
    let edges = DependencyGraph::from_kernel(kernel.as_kernel()).num_edges();
    let mut metrics = vec![
        MetricSample::info("edges", edges as f64),
        MetricSample::info("workers", workers as f64),
    ];
    if !walls.is_empty() {
        metrics.extend(wall_samples(
            &Summary::from_samples(&walls).expect("wall samples are non-NaN"),
        ));
    }
    if let Some(report) = &last {
        // The report knows which of its counters are gateable (structural
        // zero-copy counts always; the scheduler counters only on the
        // synchronous static partition, where they are structural zeros) —
        // the harness just renders the snapshot.
        metrics.extend(registry_samples(&report.metrics_registry(synchronous)));
    }
    let mut outcome = CellOutcome {
        record: CellRecord {
            cell: cell_key.to_string(),
            env: profile.slug().to_string(),
            blocks: kernel.blocks(),
            metrics,
            check_failures: Vec::new(),
        },
        report: last,
        sim: None,
    };
    if let Some(err) = run_error {
        outcome.fail(format!("run failed: {err}"));
    }
    outcome
}

/// Evaluates the per-cell checks (convergence, fixed point, solution error,
/// mailbox bound, zero-copy). Cross-cell checks are handled by the
/// kind-specific drivers below.
fn apply_cell_checks(outcome: &mut CellOutcome, kernel: &Kernel, spec: &ExperimentSpec) {
    let Some(report) = outcome.report.as_ref() else {
        return;
    };
    // Failures are collected locally so the (large) report can stay
    // borrowed instead of being cloned per cell.
    let mut failures = Vec::new();
    for check in &spec.checks {
        match check {
            Check::Converged => {
                if !report.converged {
                    failures.push(format!(
                        "did not converge (final residual {:.3e}{})",
                        report.final_residual,
                        if report.premature_stop {
                            ", premature stop"
                        } else {
                            ""
                        }
                    ));
                }
            }
            Check::FixedPoint { tolerance } => {
                if let Kernel::Ring(ring) = kernel {
                    let max_err = report
                        .solution
                        .iter()
                        .map(|v| (v - ring.fixed_point()).abs())
                        .fold(0.0f64, f64::max);
                    if max_err > *tolerance {
                        failures.push(format!(
                            "missed the fixed point: max error {max_err:.3e} > {tolerance:.1e}"
                        ));
                    }
                }
            }
            Check::SolutionError { tolerance } => {
                if let Kernel::Sparse(problem) = kernel {
                    let err = problem.error_of(&report.solution);
                    if err > *tolerance {
                        failures.push(format!("solution error {err:.3e} exceeds {tolerance:.1e}"));
                    }
                }
            }
            Check::MailboxBound => {
                let edges = DependencyGraph::from_kernel(kernel.as_kernel()).num_edges() as u64;
                if report.peak_mailbox_occupancy > edges {
                    failures.push(format!(
                        "exceeded the O(edges) bound: {} slots > {edges} edges",
                        report.peak_mailbox_occupancy
                    ));
                }
            }
            Check::ZeroCopy => {
                if report.payload_clones > 0 {
                    failures.push(format!(
                        "data plane copied payloads: {} clones ({} bytes)",
                        report.payload_clones, report.bytes_copied
                    ));
                }
            }
            // Cross-cell checks, evaluated by the experiment drivers — and
            // the service-load checks, evaluated on LoadReports rather than
            // RunReports by `apply_service_checks`.
            Check::AsyncBeatsSync
            | Check::SpeedWeightedBeatsRoundRobin
            | Check::StealsObserved
            | Check::StealingNotSlower { .. }
            | Check::NoLostJobs
            | Check::InFlightBounded
            | Check::MinPeakInFlight { .. }
            | Check::FairnessBounded { .. } => {}
        }
    }
    outcome.record.check_failures.extend(failures);
}

/// The Table 1 record: the spec's parameters as informational metrics.
fn run_parameters(spec: &ExperimentSpec) -> ExperimentRecord {
    let mut metrics = vec![
        MetricSample::info("epsilon", spec.epsilon),
        MetricSample::info("streak", spec.streak as f64),
    ];
    match spec.problem {
        ProblemSpec::SparseLinear { n, blocks } => {
            metrics.push(MetricSample::info("sparse_n", n as f64));
            metrics.push(MetricSample::info("blocks", blocks as f64));
        }
        ProblemSpec::Chemical {
            grid,
            blocks,
            t_end,
        } => {
            metrics.push(MetricSample::info("chem_grid", grid as f64));
            metrics.push(MetricSample::info("blocks", blocks as f64));
            metrics.push(MetricSample::info("t_end_secs", t_end));
        }
        ProblemSpec::Ring { blocks, cost_secs } => {
            metrics.push(MetricSample::info("blocks", blocks as f64));
            metrics.push(MetricSample::info("iteration_cost_secs", cost_secs));
        }
    }
    ExperimentRecord {
        experiment: spec.name.clone(),
        cells: vec![CellRecord {
            cell: "parameters".to_string(),
            env: "none".to_string(),
            blocks: spec.problem.blocks(),
            metrics,
            check_failures: Vec::new(),
        }],
    }
}

/// The Table 2 driver: one cell per profile, speed ratios against the
/// synchronous baseline, async-beats-sync verified on virtual time.
fn run_env_comparison(spec: &ExperimentSpec) -> ExperimentRecord {
    let kernel = Kernel::build(&spec.problem, None);
    let topology = spec.platform.topology();
    let mut outcomes: Vec<CellOutcome> = Vec::new();
    for &profile in &spec.profiles {
        let mut outcome = if profile.is_simulated() {
            let topo = topology
                .as_ref()
                .expect("grid profiles need a simulated platform");
            run_simulated_cell(profile.slug(), &kernel, topo, profile, None, spec)
        } else {
            run_threaded_cell(
                profile.slug(),
                &kernel,
                profile,
                false,
                StealPolicy::WorkStealing,
                spec,
            )
        };
        apply_cell_checks(&mut outcome, &kernel, spec);
        outcomes.push(outcome);
    }

    // Speed ratios and the async-beats-sync check hang off the synchronous
    // baseline's virtual time.
    let sync_time = outcomes
        .iter()
        .find(|o| o.record.env == EnvProfile::SyncMpi.slug())
        .and_then(|o| o.sim.as_ref())
        .map(|sim| sim.sim_time_secs);
    if let Some(sync_time) = sync_time {
        let check_async = spec.checks.contains(&Check::AsyncBeatsSync);
        for outcome in outcomes.iter_mut() {
            let Some(sim) = outcome.sim.as_ref() else {
                continue;
            };
            let time = sim.sim_time_secs;
            if time > 0.0 {
                outcome
                    .record
                    .metrics
                    .push(MetricSample::gauge("speed_ratio", sync_time / time).higher_is_better());
            }
            let is_async = outcome.record.env != EnvProfile::SyncMpi.slug();
            if check_async && is_async && time >= sync_time {
                outcome.fail(format!(
                    "async virtual time {time:.1} s did not beat sync {sync_time:.1} s"
                ));
            }
        }
    }
    ExperimentRecord {
        experiment: spec.name.clone(),
        cells: outcomes.into_iter().map(|o| o.record).collect(),
    }
}

/// Absolute wall-clock slack of the stealing-not-slower comparison: a
/// difference under this many seconds is scheduler noise at smoke sizes,
/// never a regression.
const NOT_SLOWER_ABS_SLACK_SECS: f64 = 0.05;

/// The `scale_pool` driver: synchronous supersteps, the asynchronous
/// work-stealing pool and the shared-FIFO baseline over the real worker
/// pool, with the two cross-cell scheduler checks (steals observed under
/// oversubscription; stealing not slower than the FIFO queue it replaced).
fn run_pool_scale(spec: &ExperimentSpec) -> ExperimentRecord {
    let kernel = Kernel::build(&spec.problem, None);
    let profile = *spec
        .profiles
        .first()
        .expect("pool-scale specs name a profile");
    let mut outcomes = Vec::new();
    for (key, synchronous, policy) in [
        ("sync", true, StealPolicy::WorkStealing),
        ("async", false, StealPolicy::WorkStealing),
        // The synchronous mode ignores the steal policy (static partition),
        // so the FIFO baseline only needs an asynchronous cell.
        ("async-fifo", false, StealPolicy::SharedFifo),
    ] {
        let mut outcome = run_threaded_cell(key, &kernel, profile, synchronous, policy, spec);
        apply_cell_checks(&mut outcome, &kernel, spec);
        outcomes.push(outcome);
    }

    let wall_min_of = |key: &str, outcomes: &[CellOutcome]| {
        outcomes
            .iter()
            .find(|o| o.record.cell == key)
            .and_then(|o| o.record.metric("wall_min_secs"))
            .map(|m| m.value)
    };
    let steals_of = |key: &str, outcomes: &[CellOutcome]| {
        outcomes
            .iter()
            .find(|o| o.record.cell == key)
            .and_then(|o| o.report.as_ref())
            .map(|r| r.steals)
    };

    if spec.checks.contains(&Check::StealsObserved) {
        let config = config_for_mode(false, StealPolicy::WorkStealing, spec);
        let workers = match config.try_validate() {
            Ok(()) => config.effective_num_workers(kernel.blocks()),
            Err(_) => 0,
        };
        let oversubscribed = workers > 1 && kernel.blocks() > workers;
        if oversubscribed {
            if let Some(0) = steals_of("async", &outcomes) {
                if let Some(outcome) = outcomes.iter_mut().find(|o| o.record.cell == "async") {
                    outcome.fail(format!(
                        "no steals observed on an oversubscribed pool \
                         ({} blocks over {workers} workers)",
                        kernel.blocks()
                    ));
                }
            }
        }
    }

    let not_slower = spec.checks.iter().find_map(|c| match c {
        Check::StealingNotSlower { tolerance } => Some(*tolerance),
        _ => None,
    });
    if let Some(mut tolerance) = not_slower {
        // On a machine with fewer cores than pool workers the stealing
        // pool's parallel advantage cannot materialize: every worker shares
        // the same cores and the per-worker deques, sweeps and wakeups are
        // pure overhead over one shared queue (measured ~1.8x on a
        // single-core CI container). Widen the gate there — it still
        // catches pathological scheduling (the publish-storm livelock this
        // check was written against measured ~50x) without flaking on
        // serialization overhead.
        let config = config_for_mode(false, StealPolicy::WorkStealing, spec);
        let workers = match config.try_validate() {
            Ok(()) => config.effective_num_workers(kernel.blocks()),
            Err(_) => 0,
        };
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < workers {
            tolerance += 2.0;
        }
        if let (Some(stealing), Some(fifo)) = (
            wall_min_of("async", &outcomes),
            wall_min_of("async-fifo", &outcomes),
        ) {
            if stealing > fifo * (1.0 + tolerance) && stealing - fifo > NOT_SLOWER_ABS_SLACK_SECS {
                if let Some(outcome) = outcomes.iter_mut().find(|o| o.record.cell == "async") {
                    outcome.fail(format!(
                        "work-stealing wall time {stealing:.3} s is more than \
                         {:.0}% slower than the shared-FIFO baseline {fifo:.3} s",
                        tolerance * 100.0
                    ));
                }
            }
        }
    }

    ExperimentRecord {
        experiment: spec.name.clone(),
        cells: outcomes.into_iter().map(|o| o.record).collect(),
    }
}

/// The `oversub` driver: block-count × placement sweep on the simulated
/// platform, speed-weighted-beats-round-robin verified per block count.
fn run_placement_sweep(spec: &ExperimentSpec) -> ExperimentRecord {
    use aiac_core::placement::PlacementPolicy;
    let profile = *spec
        .profiles
        .first()
        .expect("placement sweeps name a profile");
    let topology = spec
        .platform
        .topology()
        .expect("placement sweeps need a simulated platform");
    let block_counts: Vec<usize> = if spec.block_sweep.is_empty() {
        vec![spec.problem.blocks()]
    } else {
        spec.block_sweep.clone()
    };
    let check_speed = spec.checks.contains(&Check::SpeedWeightedBeatsRoundRobin);
    let mut cells = Vec::new();
    for &blocks in &block_counts {
        let kernel = Kernel::build(&spec.problem, Some(blocks));
        let mut row: Vec<CellOutcome> = Vec::new();
        for &policy in &spec.placements {
            let key = format!("{blocks}-blocks/{}", policy.label());
            let mut outcome =
                run_simulated_cell(&key, &kernel, &topology, profile, Some(policy), spec);
            apply_cell_checks(&mut outcome, &kernel, spec);
            row.push(outcome);
        }
        if check_speed {
            let time_of = |policy: PlacementPolicy, row: &[CellOutcome]| {
                row.iter()
                    .find(|o| o.record.cell.ends_with(policy.label()))
                    .and_then(|o| o.sim.as_ref())
                    .map(|sim| sim.sim_time_secs)
            };
            if let (Some(rr), Some(sw)) = (
                time_of(PlacementPolicy::RoundRobin, &row),
                time_of(PlacementPolicy::SpeedWeighted, &row),
            ) {
                if sw >= rr {
                    if let Some(outcome) = row.iter_mut().find(|o| {
                        o.record
                            .cell
                            .ends_with(PlacementPolicy::SpeedWeighted.label())
                    }) {
                        outcome.fail(format!(
                            "speed-weighted ({sw:.2} s) failed to beat round-robin \
                             ({rr:.2} s) at {blocks} blocks"
                        ));
                    }
                }
            }
        }
        cells.extend(row.into_iter().map(|o| o.record));
    }
    ExperimentRecord {
        experiment: spec.name.clone(),
        cells,
    }
}

/// Evaluates the service-load checks against a [`LoadReport`] (virtual or
/// real — both cells carry the same invariants).
fn apply_service_checks(cell: &mut CellRecord, report: &LoadReport, spec: &ExperimentSpec) {
    for check in &spec.checks {
        match check {
            Check::NoLostJobs if report.lost() != 0 => {
                cell.check_failures.push(format!(
                    "{} of {} jobs were neither completed nor rejected",
                    report.lost(),
                    report.generated
                ));
            }
            Check::InFlightBounded if report.peak_in_flight > report.in_flight_bound => {
                cell.check_failures.push(format!(
                    "peak in-flight {} breached the admission bound {}",
                    report.peak_in_flight, report.in_flight_bound
                ));
            }
            Check::MinPeakInFlight { jobs } if report.peak_in_flight < *jobs => {
                cell.check_failures.push(format!(
                    "peak in-flight {} never reached the required {jobs} \
                     concurrent jobs",
                    report.peak_in_flight
                ));
            }
            Check::FairnessBounded { max_ratio } if report.fairness_ratio() > *max_ratio => {
                cell.check_failures.push(format!(
                    "per-tenant goodput ratio {:.2} exceeds {max_ratio:.2} \
                     (a tenant is starving)",
                    report.fairness_ratio()
                ));
            }
            // Satisfied service checks and solver-run checks (the latter
            // are evaluated by `apply_cell_checks`).
            _ => {}
        }
    }
}

/// Latency percentiles of a load report as metric samples. Virtual-clock
/// latencies are deterministic and gateable; wall-clock ones are not.
fn latency_samples(report: &LoadReport, deterministic: bool) -> Vec<MetricSample> {
    let Ok(summary) = Summary::from_samples(&report.latencies) else {
        return Vec::new();
    };
    let sample = |name: &str, value: f64| {
        if deterministic {
            MetricSample::gauge(name, value)
        } else {
            MetricSample::wall(name, value)
        }
    };
    vec![
        sample("latency_p50_secs", summary.median),
        sample("latency_p95_secs", summary.p95),
        sample("latency_p99_secs", summary.p99),
    ]
}

/// The gauges and bookkeeping counters of one load cell, rendered from the
/// report's own registry, plus the latency percentiles (computed here —
/// [`Summary`] lives in the harness).
fn service_samples(report: &LoadReport, deterministic: bool) -> Vec<MetricSample> {
    let mut metrics = registry_samples(&report.metrics_registry(deterministic));
    metrics.extend(latency_samples(report, deterministic));
    metrics
}

/// The `service_load` driver: replays the spec's traffic twice — once on
/// the virtual clock (deterministic, gateable latency/throughput/fairness/
/// cache metrics) and once on the real worker pool (wall-clock,
/// informational) — and verifies the service invariants on both cells.
fn run_service_load(spec: &ExperimentSpec) -> ExperimentRecord {
    let load = spec
        .service
        .as_ref()
        .expect("service-load specs carry a LoadSpec");
    let profile = spec
        .profiles
        .first()
        .copied()
        .unwrap_or(EnvProfile::LocalThreads);

    let virt = run_virtual(load);
    let metrics = service_samples(&virt, true);
    let mut virtual_cell = CellRecord {
        cell: "virtual".to_string(),
        env: profile.slug().to_string(),
        blocks: spec.problem.blocks(),
        metrics,
        check_failures: Vec::new(),
    };
    apply_service_checks(&mut virtual_cell, &virt, spec);

    let real = run_real_load(&load.service, &load.traffic);
    let metrics = service_samples(&real, false);
    let mut real_cell = CellRecord {
        cell: "real".to_string(),
        env: profile.slug().to_string(),
        blocks: spec.problem.blocks(),
        metrics,
        check_failures: Vec::new(),
    };
    apply_service_checks(&mut real_cell, &real, spec);

    ExperimentRecord {
        experiment: spec.name.clone(),
        cells: vec![virtual_cell, real_cell],
    }
}

/// Executes one spec.
pub fn run_spec(spec: &ExperimentSpec) -> ExperimentRecord {
    match spec.kind {
        ExperimentKind::Parameters => run_parameters(spec),
        ExperimentKind::EnvComparison => run_env_comparison(spec),
        ExperimentKind::PoolScale => run_pool_scale(spec),
        ExperimentKind::PlacementSweep => run_placement_sweep(spec),
        ExperimentKind::ServiceLoad => run_service_load(spec),
    }
}

/// Executes a list of specs into one [`BenchRecord`].
pub fn run_specs(specs: &[ExperimentSpec], suite: &str, full_scale: bool) -> BenchRecord {
    let mut record = BenchRecord::new(suite, full_scale);
    for spec in specs {
        record.experiments.push(run_spec(spec));
    }
    record
}

/// Executes the standing registry at `fidelity` (see
/// [`crate::harness::spec::registry`]).
pub fn run_registry(scale: &ExperimentScale, fidelity: Fidelity) -> BenchRecord {
    let specs = crate::harness::spec::registry(scale, fidelity);
    run_specs(&specs, fidelity.suite(), scale.full_scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::spec;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale::scaled()
    }

    #[test]
    fn parameters_record_carries_the_problem_sizes() {
        let record = run_spec(&spec::table1_spec(&tiny_scale()));
        assert_eq!(record.experiment, "table1");
        let cell = record.cell("parameters").unwrap();
        assert_eq!(cell.metric("sparse_n").unwrap().value, 6_000.0);
        assert!(cell.check_failures.is_empty());
    }

    #[test]
    fn env_comparison_produces_gateable_metrics_and_speed_ratios() {
        let record = run_spec(&spec::table2_spec(240, 6, &tiny_scale()));
        assert_eq!(record.cells.len(), 4);
        let sync = record.cell("sync-mpi").unwrap();
        assert!(sync.metric("sim_time_secs").unwrap().deterministic);
        assert!((sync.metric("speed_ratio").unwrap().value - 1.0).abs() < 1e-12);
        for cell in &record.cells {
            assert!(cell.check_failures.is_empty(), "{:?}", cell.check_failures);
            let ratio = cell.metric("speed_ratio").unwrap().value;
            if cell.env != "sync-mpi" {
                assert!(ratio > 1.0, "{}: ratio {ratio}", cell.cell);
            }
        }
    }

    #[test]
    fn env_comparison_runs_are_reproducible() {
        let s = spec::table2_spec(240, 6, &tiny_scale());
        let a = run_spec(&s);
        let b = run_spec(&s);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            for (ma, mb) in ca.metrics.iter().zip(&cb.metrics) {
                if ma.deterministic {
                    assert_eq!(ma.value, mb.value, "{}/{}", ca.cell, ma.name);
                }
            }
        }
    }

    #[test]
    fn pool_scale_checks_the_fixed_point_and_the_mailbox_bound() {
        let record = run_spec(&spec::scale_pool_spec(32, Some(2)));
        assert_eq!(record.cells.len(), 3);
        for cell in &record.cells {
            assert!(
                cell.check_failures.is_empty(),
                "{}: {:?}",
                cell.cell,
                cell.check_failures
            );
            assert_eq!(cell.metric("edges").unwrap().value, 64.0);
            assert!(cell.metric("wall_median_secs").is_some());
        }
        // the sync cell's scheduler counters are structural zeros, gateable
        let sync = record.cell("sync").unwrap();
        for name in [
            "steals",
            "failed_steal_attempts",
            "local_pushes",
            "queue_wait_events",
        ] {
            let sample = sync.metric(name).unwrap();
            assert!(sample.deterministic, "{name} must be gateable on sync");
            assert_eq!(sample.value, 0.0, "{name} must be structurally zero");
        }
        // the FIFO baseline cell must report no stealing activity at all
        let fifo = record.cell("async-fifo").unwrap();
        assert_eq!(fifo.metric("steals").unwrap().value, 0.0);
        assert!(!fifo.metric("steals").unwrap().deterministic);
    }

    #[test]
    fn placement_sweep_keys_cells_by_blocks_and_policy() {
        let record = run_spec(&spec::oversub_spec(&[16]));
        assert_eq!(record.cells.len(), 3);
        assert!(record.cell("16-blocks/round-robin").is_some());
        assert!(record.cell("16-blocks/speed-weighted").is_some());
        for cell in &record.cells {
            assert!(cell.check_failures.is_empty(), "{:?}", cell.check_failures);
        }
    }

    #[test]
    fn service_load_produces_gateable_virtual_metrics_and_passes_its_checks() {
        let record = run_spec(&spec::service_load_spec(Fidelity::Smoke));
        assert_eq!(record.experiment, "service_load");
        assert_eq!(record.cells.len(), 2);

        let virt = record.cell("virtual").unwrap();
        assert!(
            virt.check_failures.is_empty(),
            "virtual cell: {:?}",
            virt.check_failures
        );
        for name in [
            "throughput_jobs_per_sec",
            "latency_p50_secs",
            "latency_p95_secs",
            "latency_p99_secs",
            "fairness_ratio",
            "cache_hit_rate",
            "rejection_rate",
        ] {
            let sample = virt.metric(name).unwrap();
            assert!(sample.deterministic, "{name} must be gateable");
            assert!(sample.value.is_finite(), "{name} must be finite");
        }
        assert!(virt.metric("peak_in_flight").unwrap().value >= 1_000.0);

        let real = record.cell("real").unwrap();
        assert!(
            real.check_failures.is_empty(),
            "real cell: {:?}",
            real.check_failures
        );
        assert!(!real.metric("latency_p99_secs").unwrap().deterministic);
        assert!(real.metric("peak_in_flight").unwrap().value >= 1_000.0);
        assert_eq!(
            real.metric("jobs_generated").unwrap().value,
            virt.metric("jobs_generated").unwrap().value,
            "both cells replay the same stream"
        );
    }

    #[test]
    fn service_load_virtual_cell_is_reproducible() {
        let s = spec::service_load_spec(Fidelity::Smoke);
        let a = run_spec(&s);
        let b = run_spec(&s);
        let (va, vb) = (a.cell("virtual").unwrap(), b.cell("virtual").unwrap());
        for (ma, mb) in va.metrics.iter().zip(&vb.metrics) {
            if ma.deterministic {
                assert_eq!(ma.value, mb.value, "{}", ma.name);
            }
        }
    }

    #[test]
    fn invalid_worker_counts_surface_as_check_failures_not_panics() {
        let s = spec::scale_pool_spec(8, Some(0));
        let record = run_spec(&s);
        assert!(!record.cells.is_empty());
        assert!(record.cells.iter().any(|c| !c.check_failures.is_empty()));
    }
}
