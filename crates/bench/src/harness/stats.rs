//! Sample statistics for repeated measurements.
//!
//! The harness runs every experiment cell `repeats` times and reduces the
//! wall-clock samples to a [`Summary`] (min / median / p95 / max / mean).
//! The reduction rejects NaN up front — a NaN sample means the measurement
//! itself is broken, and letting it propagate would silently poison every
//! order statistic — and uses linear interpolation between order statistics
//! for percentiles, so the p95 of a two-sample run is well-defined instead
//! of degenerating to the maximum.

use serde::{Deserialize, Serialize};

/// Why a set of samples could not be summarised.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatsError {
    /// No samples were provided.
    Empty,
    /// A sample was NaN (its index is recorded).
    NaNSample {
        /// Index of the offending sample in the input slice.
        index: usize,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::Empty => f.write_str("cannot summarise an empty sample set"),
            StatsError::NaNSample { index } => {
                write!(f, "sample {index} is NaN; refusing to summarise")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Order statistics of one cell's repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Smallest sample.
    pub min: f64,
    /// Median (mean of the two middle samples for even `n`).
    pub median: f64,
    /// 95th percentile (linear interpolation between order statistics).
    pub p95: f64,
    /// 99th percentile (linear interpolation between order statistics).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarises the samples.
    ///
    /// # Errors
    /// [`StatsError::Empty`] for an empty slice, [`StatsError::NaNSample`]
    /// if any sample is NaN (infinities are allowed — they are honest, if
    /// alarming, measurements and order statistics handle them).
    pub fn from_samples(samples: &[f64]) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::Empty);
        }
        if let Some(index) = samples.iter().position(|x| x.is_nan()) {
            return Err(StatsError::NaNSample { index });
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN was rejected above"));
        Ok(Summary {
            n: sorted.len(),
            min: sorted[0],
            median: percentile(&sorted, 0.5),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        })
    }
}

/// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) of an ascending-sorted, non-empty,
/// NaN-free slice, by linear interpolation between the two nearest order
/// statistics (the "R-7" rule most statistics packages default to).
///
/// # Panics
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`. Callers are
/// expected to have gone through [`Summary::from_samples`]'s validation.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median of an ascending-sorted, non-empty, NaN-free slice.
pub fn median(sorted: &[f64]) -> f64 {
    percentile(sorted, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_collapses_every_statistic() {
        let s = Summary::from_samples(&[3.5]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.p95, 3.5);
        assert_eq!(s.p99, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    fn even_sample_count_interpolates_the_median() {
        let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.5, "mean of the two middle samples");
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        // p95 interpolates between the 3rd and 4th order statistics:
        // rank = 0.95 * 3 = 2.85 → 3.0 * 0.15 + 4.0 * 0.85
        assert!((s.p95 - 3.85).abs() < 1e-12);
        // p99 sits closer to the max: rank = 0.99 * 3 = 2.97
        assert!((s.p99 - 3.97).abs() < 1e-12);
    }

    #[test]
    fn p99_dominates_p95_and_is_bounded_by_the_max() {
        let samples: Vec<f64> = (1..=200).map(f64::from).collect();
        let s = Summary::from_samples(&samples).unwrap();
        assert!(s.p99 >= s.p95, "p99 ({}) below p95 ({})", s.p99, s.p95);
        assert!(s.p99 <= s.max);
        // rank = 0.99 * 199 = 197.01 → between the 198th and 199th samples.
        assert!((s.p99 - 198.01).abs() < 1e-9);
    }

    #[test]
    fn p99_survives_nan_rejection_even_when_nan_is_last() {
        // A NaN anywhere — including in the tail that p99 would read — is
        // rejected before sorting, never silently ordered.
        assert_eq!(
            Summary::from_samples(&[1.0, 2.0, 3.0, f64::NAN]),
            Err(StatsError::NaNSample { index: 3 })
        );
    }

    #[test]
    fn odd_sample_count_takes_the_middle_sample() {
        let s = Summary::from_samples(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn nan_samples_are_rejected_with_their_index() {
        assert_eq!(
            Summary::from_samples(&[1.0, f64::NAN, 3.0]),
            Err(StatsError::NaNSample { index: 1 })
        );
        assert!(Summary::from_samples(&[1.0, f64::NAN])
            .unwrap_err()
            .to_string()
            .contains("sample 1"));
    }

    #[test]
    fn empty_sample_set_is_rejected() {
        assert_eq!(Summary::from_samples(&[]), Err(StatsError::Empty));
    }

    #[test]
    fn infinities_are_summarised_honestly() {
        let s = Summary::from_samples(&[1.0, f64::INFINITY]).unwrap();
        assert_eq!(s.max, f64::INFINITY);
        assert_eq!(s.min, 1.0);
    }

    #[test]
    fn percentile_endpoints_are_min_and_max() {
        let sorted = [1.0, 2.0, 10.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
        assert_eq!(median(&sorted), 2.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_quantile_panics() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = Summary::from_samples(&[2.0, 1.0, 4.0, 8.0, 16.0]).unwrap();
        let text = serde_json::to_string(&s).unwrap();
        let back: Summary = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
