//! Baseline comparison — the regression gate.
//!
//! [`compare`] takes a committed baseline [`BenchRecord`] and a freshly
//! measured candidate, matches their *gateable* metrics (deterministic,
//! directional — see [`BenchRecord::gateable_metrics`]) by their
//! `experiment/cell/metric` keys, and classifies each delta against a
//! [`Tolerance`]. The gate fails when any metric moved beyond tolerance in
//! its bad direction, or when a baseline metric disappeared from the
//! candidate (a silently dropped measurement must not pass as a green run).
//! Metrics that are new in the candidate are reported but do not fail the
//! gate — that is how a PR adds experiments before refreshing the baseline.

use crate::harness::record::{BenchRecord, MetricDirection};
use serde::{Deserialize, Serialize};

/// How far a metric may drift before the gate fails.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerance {
    /// Relative headroom (0.10 = 10% beyond the baseline is still fine).
    pub rel: f64,
    /// Absolute headroom, which keeps zero-valued baselines gateable
    /// (a queue that was 0.0 s may grow to `abs` before failing).
    pub abs: f64,
}

impl Tolerance {
    /// Builds a tolerance, validating both bounds.
    ///
    /// # Panics
    /// Panics if either bound is negative or not finite.
    pub fn new(rel: f64, abs: f64) -> Self {
        assert!(rel.is_finite() && rel >= 0.0, "rel tolerance must be >= 0");
        assert!(abs.is_finite() && abs >= 0.0, "abs tolerance must be >= 0");
        Tolerance { rel, abs }
    }

    /// The largest candidate value a baseline of `base` tolerates, in the
    /// worsening direction (add for lower-is-better, subtract for
    /// higher-is-better).
    fn headroom(&self, base: f64) -> f64 {
        base.abs() * self.rel + self.abs
    }
}

impl Default for Tolerance {
    /// 10% relative + 1e-6 absolute: deterministic metrics replay exactly,
    /// so any drift means the code changed behaviour; the headroom only
    /// keeps incidental changes (an extra control message, a reordered
    /// float sum) from blocking unrelated PRs.
    fn default() -> Self {
        Tolerance {
            rel: 0.10,
            abs: 1e-6,
        }
    }
}

/// Classification of one metric's movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaStatus {
    /// Within tolerance of the baseline.
    Within,
    /// Beyond tolerance in the *good* direction (worth refreshing the
    /// baseline so the gain is locked in).
    Improved,
    /// Beyond tolerance in the bad direction: fails the gate.
    Regressed,
    /// Present in the baseline, absent from the candidate: fails the gate.
    MissingInCandidate,
    /// Absent from the baseline (a new experiment or metric): reported,
    /// does not fail the gate.
    NewInCandidate,
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDelta {
    /// `experiment/cell/metric` key.
    pub key: String,
    /// Baseline value (`None` for [`DeltaStatus::NewInCandidate`]).
    pub baseline: Option<f64>,
    /// Candidate value (`None` for [`DeltaStatus::MissingInCandidate`]).
    pub candidate: Option<f64>,
    /// Signed relative change in the *bad* direction (+0.25 = 25% worse,
    /// −0.10 = 10% better); `None` when either side is absent.
    pub worsening: Option<f64>,
    /// The verdict.
    pub status: DeltaStatus,
}

/// The gate's full verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateReport {
    /// The tolerance the comparison used.
    pub tolerance: Tolerance,
    /// Every compared metric, in key order.
    pub deltas: Vec<MetricDelta>,
}

impl GateReport {
    /// The deltas that fail the gate.
    pub fn failures(&self) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| {
                matches!(
                    d.status,
                    DeltaStatus::Regressed | DeltaStatus::MissingInCandidate
                )
            })
            .collect()
    }

    /// True when no metric regressed or went missing.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// Human-readable one-line-per-delta summary (failures first).
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        let mut rest = Vec::new();
        for d in &self.deltas {
            let line = match d.status {
                DeltaStatus::Regressed => format!(
                    "REGRESSED  {}: {} -> {} ({:+.1}%)",
                    d.key,
                    fmt(d.baseline),
                    fmt(d.candidate),
                    d.worsening.unwrap_or(f64::NAN) * 100.0
                ),
                DeltaStatus::MissingInCandidate => {
                    format!(
                        "MISSING    {}: baseline {} has no candidate",
                        d.key,
                        fmt(d.baseline)
                    )
                }
                DeltaStatus::Improved => format!(
                    "improved   {}: {} -> {} ({:+.1}%)",
                    d.key,
                    fmt(d.baseline),
                    fmt(d.candidate),
                    d.worsening.unwrap_or(f64::NAN) * 100.0
                ),
                DeltaStatus::NewInCandidate => {
                    format!("new        {}: {}", d.key, fmt(d.candidate))
                }
                DeltaStatus::Within => format!(
                    "ok         {}: {} -> {}",
                    d.key,
                    fmt(d.baseline),
                    fmt(d.candidate)
                ),
            };
            if matches!(
                d.status,
                DeltaStatus::Regressed | DeltaStatus::MissingInCandidate
            ) {
                lines.push(line);
            } else {
                rest.push(line);
            }
        }
        lines.extend(rest);
        lines
    }
}

fn fmt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.6}"),
        None => "-".to_string(),
    }
}

/// Compares a candidate record against a baseline.
///
/// # Errors
/// Returns an error when the records validate differently (schema version)
/// or were produced by different suites or problem scales — comparing a
/// smoke candidate to a full baseline, or a paper-scale (`AIAC_FULL=1`)
/// run to a scaled one, would report nonsense deltas.
pub fn compare(
    baseline: &BenchRecord,
    candidate: &BenchRecord,
    tolerance: Tolerance,
) -> Result<GateReport, String> {
    baseline.validate().map_err(|e| format!("baseline: {e}"))?;
    candidate
        .validate()
        .map_err(|e| format!("candidate: {e}"))?;
    if baseline.suite != candidate.suite {
        return Err(format!(
            "suite mismatch: baseline is {:?}, candidate is {:?}",
            baseline.suite, candidate.suite
        ));
    }
    if baseline.full_scale != candidate.full_scale {
        return Err(format!(
            "scale mismatch: baseline full_scale = {}, candidate full_scale = {} \
             (was one of them produced under AIAC_FULL=1?)",
            baseline.full_scale, candidate.full_scale
        ));
    }
    let base_metrics = baseline.gateable_metrics();
    let cand_metrics = candidate.gateable_metrics();
    let mut deltas = Vec::new();
    for (key, &(base, direction)) in &base_metrics {
        match cand_metrics.get(key) {
            None => deltas.push(MetricDelta {
                key: key.clone(),
                baseline: Some(base),
                candidate: None,
                worsening: None,
                status: DeltaStatus::MissingInCandidate,
            }),
            Some(&(cand, _)) => {
                // The worsening is measured along the metric's bad
                // direction: positive = worse, negative = better.
                let bad_move = match direction {
                    MetricDirection::LowerIsBetter => cand - base,
                    MetricDirection::HigherIsBetter => base - cand,
                    MetricDirection::Informational => {
                        unreachable!("informational metrics are not gateable")
                    }
                };
                let headroom = tolerance.headroom(base);
                let status = if bad_move > headroom {
                    DeltaStatus::Regressed
                } else if -bad_move > headroom {
                    DeltaStatus::Improved
                } else {
                    DeltaStatus::Within
                };
                let worsening = if base != 0.0 {
                    Some(bad_move / base.abs())
                } else {
                    None
                };
                deltas.push(MetricDelta {
                    key: key.clone(),
                    baseline: Some(base),
                    candidate: Some(cand),
                    worsening,
                    status,
                });
            }
        }
    }
    for (key, &(cand, _)) in &cand_metrics {
        if !base_metrics.contains_key(key) {
            deltas.push(MetricDelta {
                key: key.clone(),
                baseline: None,
                candidate: Some(cand),
                worsening: None,
                status: DeltaStatus::NewInCandidate,
            });
        }
    }
    Ok(GateReport { tolerance, deltas })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::record::{
        BenchRecord, CellRecord, ExperimentRecord, MetricSample, SCHEMA_VERSION,
    };

    fn record_with(values: &[(&str, f64)]) -> BenchRecord {
        BenchRecord {
            schema_version: SCHEMA_VERSION,
            suite: "smoke".to_string(),
            full_scale: false,
            experiments: vec![ExperimentRecord {
                experiment: "exp".to_string(),
                cells: vec![CellRecord {
                    cell: "cell".to_string(),
                    env: "sync-mpi".to_string(),
                    blocks: 4,
                    metrics: values
                        .iter()
                        .map(|(name, v)| MetricSample::gauge(name, *v))
                        .collect(),
                    check_failures: Vec::new(),
                }],
            }],
        }
    }

    #[test]
    fn identical_records_pass() {
        let base = record_with(&[("t", 10.0), ("q", 0.0)]);
        let report = compare(&base, &base.clone(), Tolerance::default()).unwrap();
        assert!(report.passed());
        assert!(report
            .deltas
            .iter()
            .all(|d| d.status == DeltaStatus::Within));
    }

    #[test]
    fn a_2x_slowdown_fails_the_gate() {
        let base = record_with(&[("t", 10.0)]);
        let cand = record_with(&[("t", 20.0)]);
        let report = compare(&base, &cand, Tolerance::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures().len(), 1);
        assert_eq!(report.deltas[0].status, DeltaStatus::Regressed);
        assert!((report.deltas[0].worsening.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn improvements_beyond_tolerance_do_not_fail() {
        let base = record_with(&[("t", 10.0)]);
        let cand = record_with(&[("t", 5.0)]);
        let report = compare(&base, &cand, Tolerance::default()).unwrap();
        assert!(report.passed());
        assert_eq!(report.deltas[0].status, DeltaStatus::Improved);
    }

    #[test]
    fn higher_is_better_metrics_fail_on_shrinkage() {
        let mk = |v: f64| {
            let mut r = record_with(&[]);
            r.experiments[0].cells[0]
                .metrics
                .push(MetricSample::gauge("ratio", v).higher_is_better());
            r
        };
        let report = compare(&mk(2.0), &mk(1.0), Tolerance::default()).unwrap();
        assert!(!report.passed());
        let report = compare(&mk(2.0), &mk(3.0), Tolerance::default()).unwrap();
        assert!(report.passed());
    }

    #[test]
    fn missing_metrics_fail_but_new_metrics_pass() {
        let base = record_with(&[("t", 10.0)]);
        let cand = record_with(&[("u", 10.0)]);
        let report = compare(&base, &cand, Tolerance::default()).unwrap();
        assert!(!report.passed());
        let statuses: Vec<DeltaStatus> = report.deltas.iter().map(|d| d.status).collect();
        assert!(statuses.contains(&DeltaStatus::MissingInCandidate));
        assert!(statuses.contains(&DeltaStatus::NewInCandidate));
    }

    #[test]
    fn zero_baselines_use_the_absolute_headroom() {
        let base = record_with(&[("q", 0.0)]);
        let ok = record_with(&[("q", 1e-7)]);
        let bad = record_with(&[("q", 0.5)]);
        let tol = Tolerance::default();
        assert!(compare(&base, &ok, tol).unwrap().passed());
        assert!(!compare(&base, &bad, tol).unwrap().passed());
    }

    #[test]
    fn suite_mismatch_is_an_error() {
        let base = record_with(&[("t", 1.0)]);
        let mut cand = record_with(&[("t", 1.0)]);
        cand.suite = "full".to_string();
        assert!(compare(&base, &cand, Tolerance::default()).is_err());
    }

    #[test]
    fn summary_lines_lead_with_failures() {
        let base = record_with(&[("a", 1.0), ("t", 10.0)]);
        let cand = record_with(&[("a", 1.0), ("t", 30.0)]);
        let report = compare(&base, &cand, Tolerance::default()).unwrap();
        let lines = report.summary_lines();
        assert!(lines[0].starts_with("REGRESSED"), "{lines:?}");
    }

    #[test]
    #[should_panic(expected = "rel tolerance")]
    fn negative_tolerance_is_rejected() {
        Tolerance::new(-0.1, 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// A delta within tolerance never fails the gate, for either
            /// gate direction.
            #[test]
            fn prop_within_tolerance_never_fails(
                base in 0.1f64..1e4,
                frac in 0.0f64..0.99,
                rel in 0.01f64..0.5,
                worse in 0u32..2
            ) {
                let tol = Tolerance::new(rel, 1e-9);
                // Drift strictly inside the relative headroom, worsening
                // or improving depending on `worse`.
                let drift = base * rel * frac * if worse == 0 { 1.0 } else { -1.0 };
                let baseline = record_with(&[("t", base)]);
                let cand = record_with(&[("t", base + drift)]);
                let report = compare(&baseline, &cand, tol).unwrap();
                prop_assert!(
                    report.passed(),
                    "drift {drift} within rel {rel} of {base} must pass"
                );
            }

            /// Worsening beyond tolerance always fails, and worsening
            /// further never un-fails the gate (monotonicity).
            #[test]
            fn prop_monotone_worsening_beyond_tolerance_always_fails(
                base in 0.1f64..1e4,
                rel in 0.01f64..0.5,
                excess in 1.05f64..4.0,
                further in 1.0f64..4.0
            ) {
                let tol = Tolerance::new(rel, 1e-9);
                // A worsening of base·rel·excess, strictly beyond the
                // headroom, in the bad direction of each gate kind.
                let worsening = base * rel * excess;
                let lower = |v: f64| record_with(&[("t", v)]);
                let report =
                    compare(&lower(base), &lower(base + worsening), tol).unwrap();
                prop_assert!(!report.passed(), "worsening {worsening} must fail");
                let worse_still =
                    compare(&lower(base), &lower(base + worsening * further), tol)
                        .unwrap();
                prop_assert!(!worse_still.passed(), "worsening further must keep failing");

                let higher = |v: f64| {
                    let mut r = record_with(&[]);
                    r.experiments[0].cells[0]
                        .metrics
                        .push(MetricSample::gauge("ratio", v).higher_is_better());
                    r
                };
                // The higher-is-better mirror: shrink beyond the baseline's
                // own headroom (headroom is computed on the baseline value).
                let report =
                    compare(&higher(base), &higher(base - worsening), tol).unwrap();
                prop_assert!(!report.passed(), "shrinkage of a ratio must fail");
            }

            /// Records survive the JSON round trip bit for bit, so a
            /// committed baseline re-read months later gates exactly what
            /// was measured.
            #[test]
            fn prop_record_round_trips_through_json(
                values in proptest::collection::vec(0.0f64..1e6, 1..8),
                blocks in 1usize..2048
            ) {
                let mut record = record_with(&[]);
                record.experiments[0].cells[0].blocks = blocks;
                for (i, v) in values.iter().enumerate() {
                    let sample = match i % 3 {
                        0 => MetricSample::gauge(&format!("m{i}"), *v),
                        1 => MetricSample::wall(&format!("m{i}"), *v),
                        _ => MetricSample::info(&format!("m{i}"), *v),
                    };
                    record.experiments[0].cells[0].metrics.push(sample);
                }
                let text = record.to_json_pretty();
                let back = BenchRecord::from_json(&text).unwrap();
                prop_assert_eq!(back, record);
            }
        }
    }
}
