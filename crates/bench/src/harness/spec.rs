//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] is pure data: which problem, which platform, which
//! environment profiles, which placements and block counts to sweep, how
//! many warmup and measured repetitions to run, and which invariants
//! ([`Check`]) the results must satisfy. The
//! [`runner`](crate::harness::runner) turns a spec into an
//! [`ExperimentRecord`](crate::harness::record::ExperimentRecord); the table
//! and scale binaries are thin wrappers that build one spec and print its
//! record.
//!
//! [`registry`] returns the five standing experiments — the ports of the
//! historical `table1`, `table2`, `scale_pool` and `oversub` binaries plus
//! the `service_load` multi-tenant load test — at either
//! [`Fidelity::Smoke`] (seconds, run on every PR by the CI gate) or
//! [`Fidelity::Full`] (the binaries' historical default sizes).

use crate::scale::ExperimentScale;
use aiac_core::placement::PlacementPolicy;
use aiac_envs::profile::EnvProfile;
use aiac_service::{LoadSpec, ServiceConfig, TrafficSpec};
use serde::{Deserialize, Serialize};

/// Which benchmark problem an experiment runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProblemSpec {
    /// The banded sparse linear system (Table 2): `n` unknowns cut into
    /// `blocks` blocks.
    SparseLinear {
        /// Matrix dimension.
        n: usize,
        /// Number of blocks (= emulated processors).
        blocks: usize,
    },
    /// The advection–diffusion chemical problem (Table 3): a `grid`×`grid`
    /// discretisation over `t_end` simulated seconds.
    Chemical {
        /// Grid points per axis.
        grid: usize,
        /// Number of blocks.
        blocks: usize,
        /// Simulated time interval in seconds.
        t_end: f64,
    },
    /// The ring-coupled scalar contraction used by the executor-scale
    /// experiments (`scale_pool`, `oversub`): one unknown per block, known
    /// fixed point.
    Ring {
        /// Number of blocks.
        blocks: usize,
        /// Reference-machine cost of one local iteration, in seconds.
        cost_secs: f64,
    },
}

impl ProblemSpec {
    /// The block count of the base problem (the sweep may override it).
    pub fn blocks(&self) -> usize {
        match self {
            ProblemSpec::SparseLinear { blocks, .. }
            | ProblemSpec::Chemical { blocks, .. }
            | ProblemSpec::Ring { blocks, .. } => *blocks,
        }
    }

    /// Short label used in records and tables.
    pub fn label(&self) -> &'static str {
        match self {
            ProblemSpec::SparseLinear { .. } => "sparse-linear",
            ProblemSpec::Chemical { .. } => "chemical",
            ProblemSpec::Ring { .. } => "ring",
        }
    }
}

/// Which simulated platform an experiment runs on (the paper's testbeds),
/// or the local SMP machine for the real threaded back-end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlatformSpec {
    /// Three distant sites over 10 Mb Ethernet (first series of tests).
    Ethernet3Sites {
        /// Number of hosts.
        hosts: usize,
    },
    /// Four sites with the fourth behind consumer ADSL (second series).
    EthernetAdsl4Sites {
        /// Number of hosts.
        hosts: usize,
    },
    /// The local 100 Mb heterogeneous cluster (Figure 3).
    LocalHeteroCluster {
        /// Number of hosts.
        hosts: usize,
    },
    /// A homogeneous control cluster of reference machines.
    HomogeneousCluster {
        /// Number of hosts.
        hosts: usize,
    },
    /// No simulated platform: the experiment runs on this machine's real
    /// threads (the [`EnvProfile::LocalThreads`] profile).
    Smp,
}

impl PlatformSpec {
    /// Builds the grid topology, or `None` for the SMP platform.
    pub fn topology(&self) -> Option<aiac_netsim::topology::GridTopology> {
        use aiac_netsim::topology::GridTopology;
        match *self {
            PlatformSpec::Ethernet3Sites { hosts } => Some(GridTopology::ethernet_3_sites(hosts)),
            PlatformSpec::EthernetAdsl4Sites { hosts } => {
                Some(GridTopology::ethernet_adsl_4_sites(hosts))
            }
            PlatformSpec::LocalHeteroCluster { hosts } => {
                Some(GridTopology::local_hetero_cluster(hosts))
            }
            PlatformSpec::HomogeneousCluster { hosts } => {
                Some(GridTopology::homogeneous_cluster(hosts))
            }
            PlatformSpec::Smp => None,
        }
    }

    /// The platform's display name.
    pub fn label(&self) -> String {
        match self.topology() {
            Some(t) => t.name().to_string(),
            None => "smp".to_string(),
        }
    }
}

/// The shape of an experiment — what the runner sweeps and records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// No runs: the record carries the problem parameters themselves
    /// (the Table 1 listing).
    Parameters,
    /// One cell per environment profile on a fixed platform, speed ratios
    /// against the synchronous baseline (the Table 2 comparison).
    EnvComparison,
    /// Sync and async runs of the real threaded executor over a fixed
    /// worker pool (the `scale_pool` experiment).
    PoolScale,
    /// Block-count × placement-policy sweep on the simulated platform
    /// (the `oversub` experiment).
    PlacementSweep,
    /// The multi-tenant service load test: one deterministic virtual-clock
    /// cell (gateable metrics) and one real-pool cell (wall-clock metrics),
    /// both replaying the spec's traffic stream.
    ServiceLoad,
}

/// An invariant the runner verifies on a cell's results. Failures land in
/// the cell's `check_failures` and make the driving binary exit non-zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Check {
    /// The run must report convergence (and no premature stop).
    Converged,
    /// Every solution component must be within `tolerance` of the ring
    /// kernel's known fixed point (ring problems only).
    FixedPoint {
        /// Largest allowed absolute error.
        tolerance: f64,
    },
    /// The sparse problem's solution error against the exact solution must
    /// stay under `tolerance` (sparse problems only).
    SolutionError {
        /// Largest allowed error.
        tolerance: f64,
    },
    /// Peak mailbox occupancy must not exceed the dependency-edge count
    /// (threaded runs only).
    MailboxBound,
    /// The run must not copy a single payload: every block update must go
    /// through the kernel's native `update_block_into` straight into the
    /// double-buffered block state (`payload_clones == 0`). Structural, so
    /// it holds deterministically even on the wall-clock executor.
    ZeroCopy,
    /// Every asynchronous profile must beat the synchronous baseline's
    /// virtual time (the paper's headline result).
    AsyncBeatsSync,
    /// Speed-weighted placement must beat round-robin at every block count
    /// of a placement sweep.
    SpeedWeightedBeatsRoundRobin,
    /// The asynchronous work-stealing cell of a pool-scale experiment must
    /// report at least one successful steal when the pool is oversubscribed
    /// (more blocks than workers, and more than one worker) — an idle-worker
    /// pool that never steals is a scheduler regression.
    StealsObserved,
    /// The asynchronous work-stealing cell must not be slower than the
    /// shared-FIFO baseline cell: its best wall-clock time may exceed the
    /// FIFO cell's by at most `tolerance` (relative) — and small absolute
    /// differences are forgiven entirely, so millisecond-scale smoke cells
    /// cannot flake on scheduler noise.
    StealingNotSlower {
        /// Allowed relative slowdown (0.5 = up to 1.5× the FIFO time).
        tolerance: f64,
    },
    /// A service load cell must account for every generated job: completed
    /// plus rejected must equal generated (nothing silently dropped).
    NoLostJobs,
    /// A service load cell's peak in-flight count must respect the
    /// configured admission bound.
    InFlightBounded,
    /// A service load cell must actually reach `jobs` concurrent in-flight
    /// jobs — the "thousands of concurrent solves" claim, asserted.
    MinPeakInFlight {
        /// Minimum peak in-flight jobs the cell must observe.
        jobs: u64,
    },
    /// A service load cell's max/min per-tenant goodput ratio must stay
    /// under `max_ratio` (no tenant starves).
    FairnessBounded {
        /// Largest allowed goodput ratio.
        max_ratio: f64,
    },
}

/// A declarative description of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Stable name, used as the record key (`"table2"`, `"oversub"`, ...).
    pub name: String,
    /// What the runner does with this spec.
    pub kind: ExperimentKind,
    /// The problem to solve.
    pub problem: ProblemSpec,
    /// The platform to solve it on.
    pub platform: PlatformSpec,
    /// Environment profiles to sweep (cells of an
    /// [`ExperimentKind::EnvComparison`]; the single execution environment
    /// otherwise).
    pub profiles: Vec<EnvProfile>,
    /// Placement policies to sweep (placement sweeps only).
    pub placements: Vec<PlacementPolicy>,
    /// Block counts to sweep; empty means "use the problem's own count".
    pub block_sweep: Vec<usize>,
    /// Worker-pool size for threaded runs (`None` = available parallelism).
    pub workers: Option<usize>,
    /// Residual threshold ε.
    pub epsilon: f64,
    /// Local-convergence streak of the asynchronous runs.
    pub streak: usize,
    /// Unrecorded warmup repetitions per cell.
    pub warmup: usize,
    /// Recorded repetitions per cell (wall-clock statistics).
    pub repeats: usize,
    /// Invariants to verify.
    pub checks: Vec<Check>,
    /// The service load to replay ([`ExperimentKind::ServiceLoad`] only).
    pub service: Option<LoadSpec>,
}

/// Which rendition of the standing registry to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Seconds-scale sizes for the PR-time CI gate.
    Smoke,
    /// The historical default sizes of the standalone binaries.
    Full,
}

impl Fidelity {
    /// The suite name recorded in benchmark records.
    pub fn suite(self) -> &'static str {
        match self {
            Fidelity::Smoke => "smoke",
            Fidelity::Full => "full",
        }
    }
}

/// The Table 1 parameter listing, as (section title, key/value rows) pairs —
/// the paper's published values next to the ones `scale` actually runs.
pub fn parameter_listing(scale: &ExperimentScale) -> Vec<(String, Vec<(String, String)>)> {
    let sparse = vec![
        (
            "matrix size (paper)".to_string(),
            "2000000 x 2000000".to_string(),
        ),
        (
            "matrix size (this run)".to_string(),
            format!("{n} x {n}", n = scale.sparse_n),
        ),
        (
            "repartition of non-zero values".to_string(),
            "30 sub-diagonals (scattered)".to_string(),
        ),
        (
            "Jacobi contraction bound".to_string(),
            "0.9 (spectral radius < 1)".to_string(),
        ),
        ("processors".to_string(), format!("{}", scale.sparse_blocks)),
    ];
    let chemical = vec![
        (
            "discretization grid (paper)".to_string(),
            "600 x 600".to_string(),
        ),
        (
            "discretization grid (this run)".to_string(),
            format!("{g} x {g}", g = scale.chem_grid),
        ),
        (
            "time interval".to_string(),
            format!("{} s", scale.chem_t_end),
        ),
        ("time step".to_string(), "180 s".to_string()),
        ("processors".to_string(), format!("{}", scale.chem_blocks)),
    ];
    vec![
        ("Table 1a - Sparse linear system".to_string(), sparse),
        ("Table 1b - Non-linear problem".to_string(), chemical),
    ]
}

/// The `table1` spec: the parameter listing, no runs.
pub fn table1_spec(scale: &ExperimentScale) -> ExperimentSpec {
    ExperimentSpec {
        name: "table1".to_string(),
        kind: ExperimentKind::Parameters,
        problem: ProblemSpec::SparseLinear {
            n: scale.sparse_n,
            blocks: scale.sparse_blocks,
        },
        platform: PlatformSpec::Ethernet3Sites {
            hosts: scale.sparse_blocks,
        },
        profiles: Vec::new(),
        placements: Vec::new(),
        block_sweep: Vec::new(),
        workers: None,
        epsilon: scale.epsilon,
        streak: scale.streak,
        warmup: 0,
        repeats: 1,
        checks: Vec::new(),
        service: None,
    }
}

/// The `table2` spec: the sparse linear problem on the three-site Ethernet
/// grid across the four simulated environment profiles. `n` and `blocks`
/// override the scale's sizes (the smoke registry shrinks them).
pub fn table2_spec(n: usize, blocks: usize, scale: &ExperimentScale) -> ExperimentSpec {
    ExperimentSpec {
        name: "table2".to_string(),
        kind: ExperimentKind::EnvComparison,
        problem: ProblemSpec::SparseLinear { n, blocks },
        platform: PlatformSpec::Ethernet3Sites { hosts: blocks },
        profiles: EnvProfile::SIMULATED.to_vec(),
        placements: Vec::new(),
        block_sweep: Vec::new(),
        workers: None,
        epsilon: scale.epsilon,
        streak: scale.streak,
        warmup: 0,
        repeats: 1,
        checks: vec![
            Check::Converged,
            Check::AsyncBeatsSync,
            Check::SolutionError { tolerance: 1e-4 },
        ],
        service: None,
    }
}

/// The `scale_pool` spec: the ring contraction over the real worker-pool
/// executor — synchronous supersteps, the asynchronous work-stealing pool
/// and the shared-FIFO baseline — asserting the fixed point, the O(edges)
/// in-flight-data bound, and the two scheduler invariants: an oversubscribed
/// stealing pool actually steals, and stealing is not slower than the FIFO
/// queue it replaced. Three repeats so the wall-clock comparison uses a
/// minimum over runs rather than a single noisy sample.
pub fn scale_pool_spec(blocks: usize, workers: Option<usize>) -> ExperimentSpec {
    ExperimentSpec {
        name: "scale_pool".to_string(),
        kind: ExperimentKind::PoolScale,
        problem: ProblemSpec::Ring {
            blocks,
            cost_secs: 1e-6,
        },
        platform: PlatformSpec::Smp,
        profiles: vec![EnvProfile::LocalThreads],
        placements: Vec::new(),
        block_sweep: Vec::new(),
        workers,
        epsilon: 1e-8,
        streak: 3,
        warmup: 0,
        repeats: 3,
        checks: vec![
            Check::Converged,
            Check::FixedPoint { tolerance: 1e-5 },
            Check::MailboxBound,
            Check::ZeroCopy,
            Check::StealsObserved,
            Check::StealingNotSlower { tolerance: 0.5 },
        ],
        service: None,
    }
}

/// The `oversub` spec: the ring contraction oversubscribed onto the
/// 40-host heterogeneous cluster across all three placement policies, one
/// sweep row per entry of `block_counts`.
pub fn oversub_spec(block_counts: &[usize]) -> ExperimentSpec {
    ExperimentSpec {
        name: "oversub".to_string(),
        kind: ExperimentKind::PlacementSweep,
        problem: ProblemSpec::Ring {
            blocks: block_counts.first().copied().unwrap_or(64),
            // 2 ms: compute, not LAN latency, dominates — the regime of the
            // paper's problems.
            cost_secs: 2e-3,
        },
        platform: PlatformSpec::LocalHeteroCluster { hosts: 40 },
        profiles: vec![EnvProfile::AsyncMpiMad],
        placements: PlacementPolicy::ALL.to_vec(),
        block_sweep: block_counts.to_vec(),
        workers: None,
        epsilon: 1e-8,
        streak: 3,
        warmup: 0,
        repeats: 1,
        checks: vec![Check::Converged, Check::SpeedWeightedBeatsRoundRobin],
        service: None,
    }
}

/// The `service_load` spec: thousands of concurrent jobs from weighted
/// tenants through admission, DRR fairness and the result cache over the
/// shared pool. The runner produces a deterministic virtual-clock cell
/// (latency percentiles, throughput, fairness ratio, hit rate — all
/// gateable) and a real-pool cell (wall-clock, informational).
pub fn service_load_spec(fidelity: Fidelity) -> ExperimentSpec {
    let traffic = match fidelity {
        Fidelity::Smoke => TrafficSpec::smoke(),
        Fidelity::Full => TrafficSpec::sustained(),
    };
    // The smoke stream's tenants offer equal load, so near-equal goodput
    // is a hard requirement. The sustained stream skews its tenant
    // weights 8x on purpose; DRR pulls the goodput ratio well below the
    // offered 8x, and the bound only has to catch true starvation.
    let max_fairness_ratio = match fidelity {
        Fidelity::Smoke => 3.0,
        Fidelity::Full => 8.0,
    };
    ExperimentSpec {
        name: "service_load".to_string(),
        kind: ExperimentKind::ServiceLoad,
        problem: ProblemSpec::Ring {
            blocks: 6,
            cost_secs: 1e-6,
        },
        platform: PlatformSpec::Smp,
        profiles: vec![EnvProfile::LocalThreads],
        placements: Vec::new(),
        block_sweep: Vec::new(),
        workers: None,
        epsilon: 1e-8,
        streak: 3,
        warmup: 0,
        repeats: 1,
        checks: vec![
            Check::NoLostJobs,
            Check::InFlightBounded,
            Check::MinPeakInFlight { jobs: 1_000 },
            Check::FairnessBounded {
                max_ratio: max_fairness_ratio,
            },
        ],
        service: Some(LoadSpec {
            service: ServiceConfig::from_profile(EnvProfile::LocalThreads),
            traffic,
            cache_hit_cost_secs: 1e-6,
        }),
    }
}

/// The five standing experiments at the requested fidelity.
///
/// Smoke keeps every run in the seconds range so the CI gate stays cheap:
/// a 1500-unknown sparse system, a 256-block pool, a 64/128-block
/// oversubscription sweep and a ~1.8 k-job service stream. Full restores
/// the historical binary defaults — except `scale_pool`, which grew to a
/// steal-heavy 4096-block / 8-worker cell when the executor moved to
/// per-worker deques (512 blocks per worker keeps the pool oversubscribed
/// enough that the steal path is exercised, not just reachable).
///
/// `service_load` stays last: older records indexed the first four by
/// position, and appending preserves those offsets.
pub fn registry(scale: &ExperimentScale, fidelity: Fidelity) -> Vec<ExperimentSpec> {
    match fidelity {
        Fidelity::Smoke => vec![
            table1_spec(scale),
            table2_spec(1_500, 6, scale),
            scale_pool_spec(256, Some(4)),
            oversub_spec(&[64, 128]),
            service_load_spec(Fidelity::Smoke),
        ],
        Fidelity::Full => vec![
            table1_spec(scale),
            table2_spec(scale.sparse_n, scale.sparse_blocks, scale),
            scale_pool_spec(4096, Some(8)),
            oversub_spec(&[64, 128, 256, 512, 1024]),
            service_load_spec(Fidelity::Full),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_the_five_standing_experiments() {
        let scale = ExperimentScale::scaled();
        for fidelity in [Fidelity::Smoke, Fidelity::Full] {
            let specs = registry(&scale, fidelity);
            let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(
                names,
                ["table1", "table2", "scale_pool", "oversub", "service_load"]
            );
        }
    }

    #[test]
    fn registry_covers_all_five_environment_profiles() {
        let scale = ExperimentScale::scaled();
        let specs = registry(&scale, Fidelity::Smoke);
        let mut covered: Vec<EnvProfile> = specs.iter().flat_map(|s| s.profiles.clone()).collect();
        covered.sort_by_key(|p| p.slug());
        covered.dedup();
        assert_eq!(covered.len(), EnvProfile::ALL.len());
    }

    #[test]
    fn smoke_sizes_stay_small() {
        let scale = ExperimentScale::scaled();
        for spec in registry(&scale, Fidelity::Smoke) {
            if spec.kind == ExperimentKind::Parameters {
                continue; // listing only, nothing runs
            }
            match spec.problem {
                ProblemSpec::SparseLinear { n, .. } => assert!(n <= 2_000),
                ProblemSpec::Ring { blocks, .. } => assert!(blocks <= 256),
                ProblemSpec::Chemical { grid, .. } => assert!(grid <= 30),
            }
            assert!(spec.block_sweep.iter().all(|&b| b <= 256));
        }
    }

    #[test]
    fn full_fidelity_matches_the_historical_binary_defaults() {
        let scale = ExperimentScale::scaled();
        let specs = registry(&scale, Fidelity::Full);
        // scale_pool deliberately outgrew its historical 1024-block default:
        // the steal-heavy cell is 4096 blocks over an 8-worker pool.
        assert_eq!(
            specs[2].problem,
            ProblemSpec::Ring {
                blocks: 4096,
                cost_secs: 1e-6
            }
        );
        assert_eq!(specs[2].workers, Some(8));
        assert_eq!(specs[3].block_sweep, vec![64, 128, 256, 512, 1024]);
    }

    #[test]
    fn scale_pool_carries_the_scheduler_checks() {
        let spec = scale_pool_spec(256, Some(4));
        assert!(spec.checks.contains(&Check::StealsObserved));
        assert!(spec
            .checks
            .iter()
            .any(|c| matches!(c, Check::StealingNotSlower { tolerance } if *tolerance > 0.0)));
        assert!(
            spec.repeats >= 3,
            "the wall comparison needs a min over runs"
        );
    }

    #[test]
    fn service_load_carries_its_invariants_and_traffic() {
        for fidelity in [Fidelity::Smoke, Fidelity::Full] {
            let spec = service_load_spec(fidelity);
            assert_eq!(spec.kind, ExperimentKind::ServiceLoad);
            let load = spec.service.as_ref().expect("service load spec");
            assert!(load.service.validate().is_ok());
            assert!(
                load.traffic.initial_burst > 1_000,
                "the opening burst is what guarantees MinPeakInFlight"
            );
            assert!(spec
                .checks
                .iter()
                .any(|c| matches!(c, Check::MinPeakInFlight { jobs } if *jobs >= 1_000)));
            assert!(spec.checks.contains(&Check::NoLostJobs));
            assert!(spec.checks.contains(&Check::InFlightBounded));
            assert!(spec
                .checks
                .iter()
                .any(|c| matches!(c, Check::FairnessBounded { max_ratio } if *max_ratio > 1.0)));
        }
    }

    #[test]
    fn parameter_listing_names_paper_and_run_sizes() {
        let listing = parameter_listing(&ExperimentScale::scaled());
        assert_eq!(listing.len(), 2);
        assert!(listing[0].0.contains("Sparse"));
        assert!(listing[0]
            .1
            .iter()
            .any(|(k, v)| k.contains("paper") && v.contains("2000000")));
    }

    #[test]
    fn specs_round_trip_through_json() {
        let scale = ExperimentScale::scaled();
        for spec in registry(&scale, Fidelity::Smoke) {
            let text = serde_json::to_string(&spec).unwrap();
            let back: ExperimentSpec = serde_json::from_str(&text).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn platform_specs_build_their_topologies() {
        assert_eq!(
            PlatformSpec::Ethernet3Sites { hosts: 6 }.label(),
            "ethernet-3-sites"
        );
        assert_eq!(PlatformSpec::Smp.topology(), None);
        assert_eq!(PlatformSpec::Smp.label(), "smp");
        let topo = PlatformSpec::LocalHeteroCluster { hosts: 5 }
            .topology()
            .unwrap();
        assert_eq!(topo.num_hosts(), 5);
    }
}
