//! The unified experiment harness.
//!
//! The paper's contribution is a *measured comparison*, so the reproduction
//! treats its performance numbers as first-class, continuously verified
//! artifacts. This subsystem turns the historical pile of ad-hoc bench
//! binaries into one pipeline:
//!
//! ```text
//! spec::registry ──> runner::run_registry ──> record::BenchRecord (JSON)
//!                                                      │
//!                        baseline::compare <── BENCH_baseline.json
//! ```
//!
//! * [`spec`] — declarative [`spec::ExperimentSpec`]s: problem, platform,
//!   environment-profile sweep, placement sweep, warmup/repeat counts and
//!   the invariants ([`spec::Check`]) a run must satisfy. The standing
//!   registry holds the five standing experiments (`table1`, `table2`,
//!   `scale_pool`, `oversub`, `service_load`).
//! * [`runner`] — executes specs against the simulated (virtual-time) and
//!   threaded (real worker-pool) runtimes and collects the results.
//! * [`stats`] — min/median/p95/p99 reduction of repeated wall-clock and
//!   latency samples, with NaN rejection.
//! * [`record`] — the versioned, machine-readable [`record::BenchRecord`]
//!   schema; deterministic simulated-clock metrics are flagged as gateable.
//! * [`baseline`] — compares a candidate record against the committed
//!   `BENCH_baseline.json` under a configurable [`baseline::Tolerance`] and
//!   renders the regression verdict CI acts on.
//!
//! The `bench_all` binary drives the registry (`--smoke`/`--full`,
//! `--json`); the `bench_gate` binary exits non-zero when [`baseline`]
//! reports a regression.

pub mod baseline;
pub mod record;
pub mod runner;
pub mod spec;
pub mod stats;

pub use baseline::{compare, DeltaStatus, GateReport, MetricDelta, Tolerance};
pub use record::{
    BenchRecord, CellRecord, ExperimentRecord, MetricDirection, MetricSample, SCHEMA_VERSION,
};
pub use runner::{run_registry, run_spec, run_specs};
pub use spec::{
    registry, Check, ExperimentKind, ExperimentSpec, Fidelity, PlatformSpec, ProblemSpec,
};
pub use stats::{percentile, Summary};
